//! Run-level checkpoints: everything needed to resume a continual run at
//! an increment boundary.
//!
//! One snapshot file is written after each completed increment, wrapped
//! in the same length+CRC32 envelope as weight checkpoints (magic
//! `EDSRRS01`), so a write interrupted mid-increment is *detected* at
//! load time and resume falls back to the previous valid snapshot.
//!
//! A snapshot records: model weights, optimizer moments, the exact RNG
//! position, the method's internal state (episodic memory, …), the
//! completed-increment index, the partial accuracy matrix, and the
//! divergence guard's LR scale — enough for a resumed run to be
//! bit-identical to an uninterrupted one.

use std::path::{Path, PathBuf};

use edsr_nn::io::{
    put_bytes, put_f32, put_f64, put_u64, read_envelope, write_envelope, ByteReader,
};
use edsr_nn::CheckpointError;

/// Magic of a run-state snapshot file.
pub const RUN_STATE_MAGIC: &[u8; 8] = b"EDSRRS01";

/// Where and how often to snapshot a run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory that receives snapshot files (created on demand).
    pub dir: PathBuf,
    /// Filename stem — one run per stem; resume scans this stem only.
    pub run_id: String,
    /// Completed snapshots to retain (older ones are pruned); 0 = all.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Snapshots under `dir` with filenames starting `run_id`, keeping
    /// the last two (so one corrupt tail still leaves a fallback).
    pub fn new(dir: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            run_id: run_id.into(),
            keep: 2,
        }
    }

    /// Path of the snapshot taken after `completed` increments.
    pub fn snapshot_path(&self, completed: usize) -> PathBuf {
        self.dir
            .join(format!("{}.task{completed:04}.runstate", self.run_id))
    }
}

/// A resumable picture of a run at an increment boundary.
#[derive(Debug, Clone)]
pub struct RunState {
    /// Increments fully trained and evaluated.
    pub completed_tasks: usize,
    /// Method display name (sanity-checked on resume by callers).
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Accuracy-matrix rows evaluated so far.
    pub matrix_rows: Vec<Vec<f32>>,
    /// Wall-clock seconds per completed increment.
    pub task_seconds: Vec<f64>,
    /// Mean loss per completed increment.
    pub task_losses: Vec<f32>,
    /// Model weights (payload of `params_to_bytes`).
    pub params_payload: Vec<u8>,
    /// Optimizer moments (payload of `optim_state_to_bytes`).
    pub optim_payload: Vec<u8>,
    /// Exact RNG position at the boundary.
    pub rng_state: [u64; 4],
    /// Method-internal state (payload of `Method::save_state`).
    pub method_state: Vec<u8>,
    /// Divergence-guard LR scale in effect at the boundary.
    pub lr_scale: f32,
}

/// Serializes a run state into an (un-enveloped) payload.
pub fn encode_run_state(s: &RunState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, s.completed_tasks as u64);
    put_bytes(&mut buf, s.method.as_bytes());
    put_bytes(&mut buf, s.benchmark.as_bytes());
    put_u64(&mut buf, s.matrix_rows.len() as u64);
    for row in &s.matrix_rows {
        put_u64(&mut buf, row.len() as u64);
        for &v in row {
            put_f32(&mut buf, v);
        }
    }
    put_u64(&mut buf, s.task_seconds.len() as u64);
    for &v in &s.task_seconds {
        put_f64(&mut buf, v);
    }
    put_u64(&mut buf, s.task_losses.len() as u64);
    for &v in &s.task_losses {
        put_f32(&mut buf, v);
    }
    put_bytes(&mut buf, &s.params_payload);
    put_bytes(&mut buf, &s.optim_payload);
    for &w in &s.rng_state {
        put_u64(&mut buf, w);
    }
    put_bytes(&mut buf, &s.method_state);
    put_f32(&mut buf, s.lr_scale);
    buf
}

fn utf8(bytes: &[u8]) -> Result<String, CheckpointError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| CheckpointError::Mismatch("run-state string is not UTF-8".into()))
}

/// Parses a payload produced by [`encode_run_state`].
pub fn decode_run_state(payload: &[u8]) -> Result<RunState, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let completed_tasks = r.u64()? as usize;
    let method = utf8(r.bytes()?)?;
    let benchmark = utf8(r.bytes()?)?;
    let n_rows = r.u64()? as usize;
    let mut matrix_rows = Vec::with_capacity(n_rows.min(1024));
    for _ in 0..n_rows {
        let len = r.u64()? as usize;
        let mut row = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            row.push(r.f32()?);
        }
        matrix_rows.push(row);
    }
    let n_secs = r.u64()? as usize;
    let mut task_seconds = Vec::with_capacity(n_secs.min(4096));
    for _ in 0..n_secs {
        task_seconds.push(r.f64()?);
    }
    let n_losses = r.u64()? as usize;
    let mut task_losses = Vec::with_capacity(n_losses.min(4096));
    for _ in 0..n_losses {
        task_losses.push(r.f32()?);
    }
    let params_payload = r.bytes()?.to_vec();
    let optim_payload = r.bytes()?.to_vec();
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = r.u64()?;
    }
    let method_state = r.bytes()?.to_vec();
    let lr_scale = r.f32()?;
    if !r.is_exhausted() {
        return Err(CheckpointError::Mismatch(
            "run-state payload has trailing bytes".into(),
        ));
    }
    Ok(RunState {
        completed_tasks,
        method,
        benchmark,
        matrix_rows,
        task_seconds,
        task_losses,
        params_payload,
        optim_payload,
        rng_state,
        method_state,
        lr_scale,
    })
}

/// Writes the snapshot for `state.completed_tasks` increments and prunes
/// snapshots older than `cfg.keep`. Returns the snapshot's path.
pub fn save_run_state(
    cfg: &CheckpointConfig,
    state: &RunState,
) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let path = cfg.snapshot_path(state.completed_tasks);
    write_envelope(&path, RUN_STATE_MAGIC, &encode_run_state(state))?;
    if cfg.keep > 0 {
        for (_, old) in list_snapshots(cfg).iter().rev().skip(cfg.keep) {
            let _ = std::fs::remove_file(old);
        }
    }
    Ok(path)
}

/// Loads and validates one snapshot file.
pub fn load_run_state(path: impl AsRef<Path>) -> Result<RunState, CheckpointError> {
    decode_run_state(&read_envelope(path, RUN_STATE_MAGIC)?)
}

/// All snapshot files of this run, sorted by completed-increment count
/// (ascending). Existence only — validity is checked at load time.
pub fn list_snapshots(cfg: &CheckpointConfig) -> Vec<(usize, PathBuf)> {
    let prefix = format!("{}.task", cfg.run_id);
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(&cfg.dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".runstate") else {
            continue;
        };
        if let Ok(completed) = digits.parse::<usize>() {
            found.push((completed, entry.path()));
        }
    }
    found.sort();
    found
}

/// Finds the newest snapshot that loads cleanly, skipping truncated or
/// corrupt files (e.g. a write cut short by a crash). Returns `None`
/// when no valid snapshot exists.
pub fn latest_valid_run_state(cfg: &CheckpointConfig) -> Option<(PathBuf, RunState)> {
    for (_, path) in list_snapshots(cfg).into_iter().rev() {
        if let Ok(state) = load_run_state(&path) {
            return Some((path, state));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(completed: usize) -> RunState {
        RunState {
            completed_tasks: completed,
            method: "Finetune".into(),
            benchmark: "bench".into(),
            matrix_rows: vec![vec![0.5], vec![0.25, 0.75]],
            task_seconds: vec![1.5, 2.5],
            task_losses: vec![0.9, 0.8],
            params_payload: vec![1, 2, 3, 4],
            optim_payload: vec![5, 6],
            rng_state: [10, 20, 30, 40],
            method_state: vec![7, 8, 9],
            lr_scale: 0.5,
        }
    }

    fn temp_cfg(tag: &str) -> CheckpointConfig {
        let dir = std::env::temp_dir().join(format!("edsr-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointConfig::new(dir, "run")
    }

    #[test]
    fn encode_decode_roundtrip() {
        let state = sample_state(2);
        let decoded = decode_run_state(&encode_run_state(&state)).expect("decode");
        assert_eq!(decoded.completed_tasks, 2);
        assert_eq!(decoded.method, "Finetune");
        assert_eq!(decoded.matrix_rows, state.matrix_rows);
        assert_eq!(decoded.task_seconds, state.task_seconds);
        assert_eq!(decoded.rng_state, state.rng_state);
        assert_eq!(decoded.method_state, state.method_state);
        assert_eq!(decoded.lr_scale, 0.5);
    }

    #[test]
    fn save_load_and_scan() {
        let cfg = temp_cfg("scan");
        save_run_state(&cfg, &sample_state(1)).expect("save 1");
        save_run_state(&cfg, &sample_state(2)).expect("save 2");
        let (path, state) = latest_valid_run_state(&cfg).expect("latest");
        assert_eq!(state.completed_tasks, 2);
        assert!(path.to_string_lossy().contains("task0002"));
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn truncated_latest_falls_back_to_previous() {
        let cfg = temp_cfg("fallback");
        save_run_state(&cfg, &sample_state(1)).expect("save 1");
        let p2 = save_run_state(&cfg, &sample_state(2)).expect("save 2");
        // Chop the tail off the newest snapshot, as a crash mid-write would.
        let bytes = std::fs::read(&p2).expect("read");
        std::fs::write(&p2, &bytes[..bytes.len() - 7]).expect("truncate");
        assert!(matches!(
            load_run_state(&p2),
            Err(CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. })
        ));
        let (_, state) = latest_valid_run_state(&cfg).expect("fallback");
        assert_eq!(
            state.completed_tasks, 1,
            "did not fall back to the valid snapshot"
        );
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn pruning_keeps_the_newest() {
        let mut cfg = temp_cfg("prune");
        cfg.keep = 2;
        for completed in 1..=5 {
            save_run_state(&cfg, &sample_state(completed)).expect("save");
        }
        let left = list_snapshots(&cfg);
        let counts: Vec<usize> = left.iter().map(|(c, _)| *c).collect();
        assert_eq!(counts, vec![4, 5]);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let cfg = temp_cfg("magic");
        let path = save_run_state(&cfg, &sample_state(1)).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[..8].copy_from_slice(b"NOTAMAGI");
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            load_run_state(&path),
            Err(CheckpointError::BadMagic)
        ));
        assert!(latest_valid_run_state(&cfg).is_none());
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}
