//! Run-level checkpoints: everything needed to resume a continual run at
//! an increment boundary.
//!
//! One snapshot file is written after each completed increment, wrapped
//! in the same length+CRC32 envelope as weight checkpoints (magic
//! `EDSRRS01`), so a write interrupted mid-increment is *detected* at
//! load time and resume falls back to the previous valid snapshot.
//!
//! A snapshot records: model weights, optimizer moments, the exact RNG
//! position, the method's internal state (episodic memory, …), the
//! completed-increment index, the partial accuracy matrix, and the
//! divergence guard's LR scale — enough for a resumed run to be
//! bit-identical to an uninterrupted one.

use std::path::{Path, PathBuf};

use edsr_nn::io::{
    crc32, params_from_bytes, params_to_bytes, put_bytes, put_f32, put_f64, put_matrix, put_u32,
    put_u64, read_envelope, write_envelope, ByteReader,
};
use edsr_nn::CheckpointError;
use edsr_quant::{knn_gate, QuantEncoder, QuantLinear, QuantMemory, QuantSnapshot};
use edsr_ssl::SslVariant;
use edsr_tensor::Matrix;

use crate::memory::MemoryBuffer;
use crate::model::{ContinualModel, ModelConfig};

/// Magic of a run-state snapshot file.
pub const RUN_STATE_MAGIC: &[u8; 8] = b"EDSRRS01";

/// Magic of a serve snapshot file (model + replay-memory representations).
pub const SERVE_SNAPSHOT_MAGIC: &[u8; 8] = b"EDSRSS01";

/// Where and how often to snapshot a run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory that receives snapshot files (created on demand).
    pub dir: PathBuf,
    /// Filename stem — one run per stem; resume scans this stem only.
    pub run_id: String,
    /// Completed snapshots to retain (older ones are pruned); 0 = all.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Snapshots under `dir` with filenames starting `run_id`, keeping
    /// the last two (so one corrupt tail still leaves a fallback).
    pub fn new(dir: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            run_id: run_id.into(),
            keep: 2,
        }
    }

    /// Path of the snapshot taken after `completed` increments.
    pub fn snapshot_path(&self, completed: usize) -> PathBuf {
        self.dir
            .join(format!("{}.task{completed:04}.runstate", self.run_id))
    }
}

/// A resumable picture of a run at an increment boundary.
#[derive(Debug, Clone)]
pub struct RunState {
    /// Increments fully trained and evaluated.
    pub completed_tasks: usize,
    /// Method display name (sanity-checked on resume by callers).
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Accuracy-matrix rows evaluated so far.
    pub matrix_rows: Vec<Vec<f32>>,
    /// Wall-clock seconds per completed increment.
    pub task_seconds: Vec<f64>,
    /// Mean loss per completed increment.
    pub task_losses: Vec<f32>,
    /// Model weights (payload of `params_to_bytes`).
    pub params_payload: Vec<u8>,
    /// Optimizer moments (payload of `optim_state_to_bytes`).
    pub optim_payload: Vec<u8>,
    /// Exact RNG position at the boundary.
    pub rng_state: [u64; 4],
    /// Method-internal state (payload of `Method::save_state`).
    pub method_state: Vec<u8>,
    /// Divergence-guard LR scale in effect at the boundary.
    pub lr_scale: f32,
}

/// Serializes a run state into an (un-enveloped) payload.
pub fn encode_run_state(s: &RunState) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, s.completed_tasks as u64);
    put_bytes(&mut buf, s.method.as_bytes());
    put_bytes(&mut buf, s.benchmark.as_bytes());
    put_u64(&mut buf, s.matrix_rows.len() as u64);
    for row in &s.matrix_rows {
        put_u64(&mut buf, row.len() as u64);
        for &v in row {
            put_f32(&mut buf, v);
        }
    }
    put_u64(&mut buf, s.task_seconds.len() as u64);
    for &v in &s.task_seconds {
        put_f64(&mut buf, v);
    }
    put_u64(&mut buf, s.task_losses.len() as u64);
    for &v in &s.task_losses {
        put_f32(&mut buf, v);
    }
    put_bytes(&mut buf, &s.params_payload);
    put_bytes(&mut buf, &s.optim_payload);
    for &w in &s.rng_state {
        put_u64(&mut buf, w);
    }
    put_bytes(&mut buf, &s.method_state);
    put_f32(&mut buf, s.lr_scale);
    buf
}

fn utf8(bytes: &[u8]) -> Result<String, CheckpointError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| CheckpointError::Mismatch("run-state string is not UTF-8".into()))
}

/// Parses a payload produced by [`encode_run_state`].
pub fn decode_run_state(payload: &[u8]) -> Result<RunState, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let completed_tasks = r.u64()? as usize;
    let method = utf8(r.bytes()?)?;
    let benchmark = utf8(r.bytes()?)?;
    let n_rows = r.u64()? as usize;
    let mut matrix_rows = Vec::with_capacity(n_rows.min(1024));
    for _ in 0..n_rows {
        let len = r.u64()? as usize;
        let mut row = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            row.push(r.f32()?);
        }
        matrix_rows.push(row);
    }
    let n_secs = r.u64()? as usize;
    let mut task_seconds = Vec::with_capacity(n_secs.min(4096));
    for _ in 0..n_secs {
        task_seconds.push(r.f64()?);
    }
    let n_losses = r.u64()? as usize;
    let mut task_losses = Vec::with_capacity(n_losses.min(4096));
    for _ in 0..n_losses {
        task_losses.push(r.f32()?);
    }
    let params_payload = r.bytes()?.to_vec();
    let optim_payload = r.bytes()?.to_vec();
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = r.u64()?;
    }
    let method_state = r.bytes()?.to_vec();
    let lr_scale = r.f32()?;
    if !r.is_exhausted() {
        return Err(CheckpointError::Mismatch(
            "run-state payload has trailing bytes".into(),
        ));
    }
    Ok(RunState {
        completed_tasks,
        method,
        benchmark,
        matrix_rows,
        task_seconds,
        task_losses,
        params_payload,
        optim_payload,
        rng_state,
        method_state,
        lr_scale,
    })
}

/// Writes the snapshot for `state.completed_tasks` increments and prunes
/// snapshots older than `cfg.keep`. Returns the snapshot's path.
///
/// Inherits `write_envelope`'s durability contract: the payload is
/// fsynced before the atomic rename, so a crash or power loss mid-save
/// can never publish a torn or unflushed snapshot under the final name.
pub fn save_run_state(
    cfg: &CheckpointConfig,
    state: &RunState,
) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let path = cfg.snapshot_path(state.completed_tasks);
    write_envelope(&path, RUN_STATE_MAGIC, &encode_run_state(state))?;
    if cfg.keep > 0 {
        for (_, old) in list_snapshots(cfg).iter().rev().skip(cfg.keep) {
            let _ = std::fs::remove_file(old);
        }
    }
    Ok(path)
}

/// Loads and validates one snapshot file.
pub fn load_run_state(path: impl AsRef<Path>) -> Result<RunState, CheckpointError> {
    decode_run_state(&read_envelope(path, RUN_STATE_MAGIC)?)
}

/// All snapshot files of this run, sorted by completed-increment count
/// (ascending). Existence only — validity is checked at load time.
pub fn list_snapshots(cfg: &CheckpointConfig) -> Vec<(usize, PathBuf)> {
    let prefix = format!("{}.task", cfg.run_id);
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(&cfg.dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".runstate") else {
            continue;
        };
        if let Ok(completed) = digits.parse::<usize>() {
            found.push((completed, entry.path()));
        }
    }
    found.sort();
    found
}

/// Finds the newest snapshot that loads cleanly, skipping truncated or
/// corrupt files (e.g. a write cut short by a crash). Returns `None`
/// when no valid snapshot exists.
pub fn latest_valid_run_state(cfg: &CheckpointConfig) -> Option<(PathBuf, RunState)> {
    for (_, path) in list_snapshots(cfg).into_iter().rev() {
        if let Ok(state) = load_run_state(&path) {
            return Some((path, state));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Serve snapshots: the read-only artifact `edsr-serve` loads.
// ---------------------------------------------------------------------------

/// Everything an embedding server needs, in one self-describing,
/// CRC-checked file: the model architecture ([`ModelConfig`]), the
/// trained weights, and the replay-memory representations the retrieval
/// API answers kNN queries against.
///
/// Written by the trainer after each completed increment (see
/// `RunBuilder::serve_snapshots`) and loaded read-only by `edsr-serve`.
/// The envelope (magic [`SERVE_SNAPSHOT_MAGIC`], length + CRC32 trailer,
/// atomic rename) is shared with every other persisted artifact, so a
/// snapshot interrupted mid-write is detected before any parsing.
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// Increments fully trained when the snapshot was taken.
    pub completed_tasks: usize,
    /// Benchmark / run label (informational).
    pub benchmark: String,
    /// Architecture + objective the weights belong to.
    pub config: ModelConfig,
    /// Model weights (payload of `params_to_bytes`).
    pub params_payload: Vec<u8>,
    /// Replay-memory representations, one row per stored sample
    /// (`repr_dim` columns; may have zero rows for memory-free methods).
    pub memory_reprs: Matrix,
    /// Source increment of each memory row (`memory_reprs.rows()` long).
    pub memory_tasks: Vec<u64>,
}

fn put_model_config(buf: &mut Vec<u8>, cfg: &ModelConfig) {
    put_u64(buf, cfg.input_dims.len() as u64);
    for &d in &cfg.input_dims {
        put_u64(buf, d as u64);
    }
    put_u64(buf, cfg.hidden_dim as u64);
    put_u64(buf, cfg.repr_dim as u64);
    put_u64(buf, cfg.backbone_layers as u64);
    match cfg.variant {
        SslVariant::SimSiam => put_u32(buf, 1),
        SslVariant::BarlowTwins { lambda } => {
            put_u32(buf, 2);
            put_f32(buf, lambda);
        }
    }
    match cfg.conv_stem {
        None => put_u32(buf, 0),
        Some((shape, kernel, filters)) => {
            put_u32(buf, 1);
            put_u64(buf, shape.channels as u64);
            put_u64(buf, shape.height as u64);
            put_u64(buf, shape.width as u64);
            put_u64(buf, kernel as u64);
            put_u64(buf, filters as u64);
        }
    }
}

fn read_model_config(r: &mut ByteReader<'_>) -> Result<ModelConfig, CheckpointError> {
    let n_dims = r.u64()? as usize;
    let mut input_dims = Vec::with_capacity(n_dims.min(1024));
    for _ in 0..n_dims {
        input_dims.push(r.u64()? as usize);
    }
    let hidden_dim = r.u64()? as usize;
    let repr_dim = r.u64()? as usize;
    let backbone_layers = r.u64()? as usize;
    let variant = match r.u32()? {
        1 => SslVariant::SimSiam,
        2 => SslVariant::BarlowTwins { lambda: r.f32()? },
        tag => {
            return Err(CheckpointError::Mismatch(format!(
                "serve snapshot: unknown SSL variant tag {tag}"
            )))
        }
    };
    let conv_stem = match r.u32()? {
        0 => None,
        1 => {
            let shape = edsr_nn::ConvShape {
                channels: r.u64()? as usize,
                height: r.u64()? as usize,
                width: r.u64()? as usize,
            };
            let kernel = r.u64()? as usize;
            let filters = r.u64()? as usize;
            Some((shape, kernel, filters))
        }
        tag => {
            return Err(CheckpointError::Mismatch(format!(
                "serve snapshot: unknown conv-stem tag {tag}"
            )))
        }
    };
    Ok(ModelConfig {
        input_dims,
        hidden_dim,
        repr_dim,
        backbone_layers,
        variant,
        conv_stem,
    })
}

impl ServeSnapshot {
    /// Captures a snapshot of `model` plus explicit replay-memory
    /// representations (`reprs` rows × `repr_dim` columns, one source
    /// task per row).
    ///
    /// Fails with [`CheckpointError::Mismatch`] when the representation
    /// matrix disagrees with the model's `repr_dim` or the task list.
    pub fn capture(
        model: &ContinualModel,
        reprs: Matrix,
        tasks: Vec<u64>,
        benchmark: impl Into<String>,
        completed_tasks: usize,
    ) -> Result<Self, CheckpointError> {
        if reprs.rows() != tasks.len() {
            return Err(CheckpointError::Mismatch(format!(
                "serve snapshot: {} memory rows but {} task labels",
                reprs.rows(),
                tasks.len()
            )));
        }
        if reprs.rows() > 0 && reprs.cols() != model.repr_dim() {
            return Err(CheckpointError::Mismatch(format!(
                "serve snapshot: memory representations are {}-d, model repr_dim is {}",
                reprs.cols(),
                model.repr_dim()
            )));
        }
        Ok(Self {
            completed_tasks,
            benchmark: benchmark.into(),
            config: model.config().clone(),
            params_payload: params_to_bytes(&model.params),
            memory_reprs: reprs,
            memory_tasks: tasks,
        })
    }

    /// [`capture`](Self::capture) taking the representations straight
    /// from an episodic [`MemoryBuffer`]: every item whose
    /// `stored_features` match the model's `repr_dim` contributes one
    /// row. Items without stored features (or with features of another
    /// dimensionality, e.g. DER's backbone features) are skipped.
    pub fn capture_from_memory(
        model: &ContinualModel,
        memory: &MemoryBuffer,
        benchmark: impl Into<String>,
        completed_tasks: usize,
    ) -> Result<Self, CheckpointError> {
        let (reprs, tasks) = memory_representations(memory, model.repr_dim());
        Self::capture(model, reprs, tasks, benchmark, completed_tasks)
    }

    /// Rebuilds a structurally identical model and restores the
    /// snapshot's weights into it. Deterministic: the snapshot is
    /// self-describing, so no external configuration is consulted.
    pub fn restore_model(&self) -> Result<ContinualModel, CheckpointError> {
        // The init RNG is irrelevant — every parameter is overwritten by
        // the payload — but construction registers parameters in the
        // model's canonical order, which is what the payload validates
        // names and shapes against.
        let mut rng = edsr_tensor::rng::seeded(0);
        let mut model = ContinualModel::new(&self.config, &mut rng);
        params_from_bytes(&mut model.params, &self.params_payload)?;
        Ok(model)
    }

    /// Serializes into an (un-enveloped) payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.completed_tasks as u64);
        put_bytes(&mut buf, self.benchmark.as_bytes());
        put_model_config(&mut buf, &self.config);
        put_bytes(&mut buf, &self.params_payload);
        put_matrix(&mut buf, &self.memory_reprs);
        put_u64(&mut buf, self.memory_tasks.len() as u64);
        for &t in &self.memory_tasks {
            put_u64(&mut buf, t);
        }
        buf
    }

    /// Parses a payload produced by [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(payload);
        let completed_tasks = r.u64()? as usize;
        let benchmark = utf8(r.bytes()?)?;
        let config = read_model_config(&mut r)?;
        let params_payload = r.bytes()?.to_vec();
        let memory_reprs = r.matrix()?;
        let n_tasks = r.u64()? as usize;
        let mut memory_tasks = Vec::with_capacity(n_tasks.min(1 << 20));
        for _ in 0..n_tasks {
            memory_tasks.push(r.u64()?);
        }
        if !r.is_exhausted() {
            return Err(CheckpointError::Mismatch(
                "serve snapshot payload has trailing bytes".into(),
            ));
        }
        if memory_tasks.len() != memory_reprs.rows() {
            return Err(CheckpointError::Mismatch(format!(
                "serve snapshot: {} memory rows but {} task labels",
                memory_reprs.rows(),
                memory_tasks.len()
            )));
        }
        Ok(Self {
            completed_tasks,
            benchmark,
            config,
            params_payload,
            memory_reprs,
            memory_tasks,
        })
    }

    /// Writes the snapshot to `path` (fsync, then atomic rename, CRC32
    /// trailer — see `write_envelope`'s durability contract). The serve
    /// rotation watcher relies on this: a `.snapshot` file that is
    /// *visible* in the export directory is always *complete*, so the
    /// watcher only ever has to defend against corruption, not tearing.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        write_envelope(path, SERVE_SNAPSHOT_MAGIC, &self.encode())
    }

    /// Loads and validates a snapshot written by [`save`](Self::save).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::decode(&read_envelope(path, SERVE_SNAPSHOT_MAGIC)?)
    }
}

/// Extracts the replay representations a serve snapshot stores: one row
/// per memory item whose `stored_features` are exactly `repr_dim`-d,
/// paired with the item's source task.
pub fn memory_representations(memory: &MemoryBuffer, repr_dim: usize) -> (Matrix, Vec<u64>) {
    let rows: Vec<(&[f32], u64)> = memory
        .items()
        .iter()
        .filter_map(|item| {
            item.stored_features
                .as_deref()
                .filter(|f| f.len() == repr_dim)
                .map(|f| (f, item.task as u64))
        })
        .collect();
    let mut reprs = Matrix::zeros(rows.len(), repr_dim);
    let mut tasks = Vec::with_capacity(rows.len());
    for (i, (features, task)) in rows.into_iter().enumerate() {
        reprs.row_mut(i).copy_from_slice(features);
        tasks.push(task);
    }
    (reprs, tasks)
}

/// Path of the serve snapshot taken after `completed` increments, under
/// the same dir/run-id convention as run-state checkpoints.
pub fn serve_snapshot_path(cfg: &CheckpointConfig, completed: usize) -> PathBuf {
    cfg.dir
        .join(format!("{}.task{completed:04}.snapshot", cfg.run_id))
}

/// Writes the serve snapshot for `snapshot.completed_tasks` increments
/// and prunes snapshots older than `cfg.keep`. Returns the written path.
pub fn save_serve_snapshot(
    cfg: &CheckpointConfig,
    snapshot: &ServeSnapshot,
) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let path = serve_snapshot_path(cfg, snapshot.completed_tasks);
    snapshot.save(&path)?;
    if cfg.keep > 0 {
        for (_, old) in list_serve_snapshots(cfg).iter().rev().skip(cfg.keep) {
            let _ = std::fs::remove_file(old);
        }
    }
    Ok(path)
}

/// All serve-snapshot files of this run, sorted by completed-increment
/// count (ascending). Existence only — validity is checked at load time.
pub fn list_serve_snapshots(cfg: &CheckpointConfig) -> Vec<(usize, PathBuf)> {
    let prefix = format!("{}.task", cfg.run_id);
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(&cfg.dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(digits) = rest.strip_suffix(".snapshot") else {
            continue;
        };
        if let Ok(completed) = digits.parse::<usize>() {
            found.push((completed, entry.path()));
        }
    }
    found.sort();
    found
}

/// Quantizes a v1 serve snapshot into the EDSRSS02 format: restores the
/// f32 model, flattens its eval-mode linear chain (adapter → backbone →
/// projector) into per-layer symmetric int8 weights (per-output-channel
/// scales on the final projector layer), quantizes the memory grid with
/// one per-tensor scale calibrated over the snapshot's own
/// representations, and runs the leave-one-out accuracy gate.
///
/// Fails with [`CheckpointError::Mismatch`] for conv-stem models, whose
/// first stage is not a single linear map.
pub fn quantize_serve_snapshot(snapshot: &ServeSnapshot) -> Result<QuantSnapshot, CheckpointError> {
    let model = snapshot.restore_model()?;
    let quant_layer = |w: edsr_nn::ParamId, b: edsr_nn::ParamId, relu: bool, per_channel: bool| {
        QuantLinear::from_f32(
            model.params.value(w),
            model.params.value(b).row(0),
            relu,
            per_channel,
        )
    };
    let chain0 = model.encoder.eval_linear_chain(0).ok_or_else(|| {
        CheckpointError::Mismatch(
            "quantization supports linear input stems only (conv stems are unsupported)".into(),
        )
    })?;
    let mut adapters = Vec::with_capacity(model.encoder.num_adapters());
    for a in 0..model.encoder.num_adapters() {
        let (w, b, relu) = model.encoder.eval_linear_chain(a).expect("linear stem")[0];
        adapters.push(quant_layer(w, b, relu, false));
    }
    let shared = &chain0[1..];
    let mut chain = Vec::with_capacity(shared.len());
    for (i, &(w, b, relu)) in shared.iter().enumerate() {
        // Per-output-channel scales on the final layer only: its outputs
        // feed the kNN distance directly, where channel-wise precision
        // matters most and no further int8 re-quantization follows.
        chain.push(quant_layer(w, b, relu, i + 1 == shared.len()));
    }
    let encoder = QuantEncoder::new(
        snapshot.config.input_dims.clone(),
        snapshot.config.repr_dim,
        adapters,
        chain,
    )
    .map_err(CheckpointError::Mismatch)?;
    let memory = QuantMemory::from_matrix(&snapshot.memory_reprs);
    let gate = knn_gate(&snapshot.memory_reprs, &snapshot.memory_tasks, &memory);
    let mut memory_bytes = Vec::new();
    put_matrix(&mut memory_bytes, &snapshot.memory_reprs);
    Ok(QuantSnapshot {
        completed_tasks: snapshot.completed_tasks,
        benchmark: snapshot.benchmark.clone(),
        encoder,
        memory,
        memory_tasks: snapshot.memory_tasks.clone(),
        f32_params_crc: crc32(&snapshot.params_payload),
        f32_memory_crc: crc32(&memory_bytes),
        gate,
    })
}

/// Writes a v2 (quantized) serve snapshot under the same filename
/// convention as [`save_serve_snapshot`] — v1 and v2 files share one
/// rotation namespace, which is what lets the serve watcher hot-swap
/// across format versions — and prunes beyond `cfg.keep`.
pub fn save_quant_serve_snapshot(
    cfg: &CheckpointConfig,
    snapshot: &QuantSnapshot,
) -> Result<PathBuf, CheckpointError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let path = serve_snapshot_path(cfg, snapshot.completed_tasks);
    snapshot.save(&path)?;
    if cfg.keep > 0 {
        for (_, old) in list_serve_snapshots(cfg).iter().rev().skip(cfg.keep) {
            let _ = std::fs::remove_file(old);
        }
    }
    Ok(path)
}

/// A serve snapshot in either on-disk format.
#[derive(Debug, Clone)]
pub enum AnyServeSnapshot {
    /// v1 `EDSRSS01`: f32 model + f32 memory representations.
    V1(Box<ServeSnapshot>),
    /// v2 `EDSRSS02`: quantized encoder + int8 memory grid.
    V2(Box<QuantSnapshot>),
}

impl AnyServeSnapshot {
    /// Tasks completed when the snapshot was exported.
    pub fn completed_tasks(&self) -> usize {
        match self {
            AnyServeSnapshot::V1(s) => s.completed_tasks,
            AnyServeSnapshot::V2(s) => s.completed_tasks,
        }
    }

    /// Benchmark name.
    pub fn benchmark(&self) -> &str {
        match self {
            AnyServeSnapshot::V1(s) => &s.benchmark,
            AnyServeSnapshot::V2(s) => &s.benchmark,
        }
    }
}

/// Loads a serve snapshot of either format: the v2 magic is tried first;
/// a clean magic mismatch falls through to v1. Every other failure
/// (truncation, corruption, I/O) propagates unchanged.
pub fn load_any_serve_snapshot(
    path: impl AsRef<Path>,
) -> Result<AnyServeSnapshot, CheckpointError> {
    match QuantSnapshot::load(path.as_ref()) {
        Ok(s) => Ok(AnyServeSnapshot::V2(Box::new(s))),
        Err(CheckpointError::BadMagic) => {
            ServeSnapshot::load(path.as_ref()).map(|s| AnyServeSnapshot::V1(Box::new(s)))
        }
        Err(e) => Err(e),
    }
}

/// A snapshot candidate (or the scan directory itself) that could not be
/// *read* — an I/O failure such as permission-denied, as opposed to a
/// file that read fine but failed validation. Carries the offending path
/// so operators know exactly which file to fix.
#[derive(Debug)]
pub struct UnreadableSnapshot {
    /// The file (or directory) the I/O failure occurred on.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for UnreadableSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unreadable serve snapshot {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for UnreadableSnapshot {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Finds the newest serve snapshot under `dir` (any run id, either
/// format) that loads cleanly. Candidates that read fine but fail
/// validation — truncated, corrupt, foreign magic — are *skipped*, which
/// is what lets rotation survive a torn decoy. Candidates that cannot
/// even be read (e.g. permission denied) abort the scan with a
/// [`UnreadableSnapshot`] naming the offending file instead of silently
/// falling back to stale data; not-found races with concurrent pruning
/// are still skipped. The scan is newest-first and stops at the first
/// valid snapshot, so only an unreadable candidate newer than every
/// valid one triggers the error. `Ok(None)` when the directory is
/// missing or holds no valid snapshot.
pub fn latest_valid_serve_snapshot(
    dir: impl AsRef<Path>,
) -> Result<Option<(PathBuf, AnyServeSnapshot)>, UnreadableSnapshot> {
    let entries = match std::fs::read_dir(dir.as_ref()) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(UnreadableSnapshot {
                path: dir.as_ref().to_path_buf(),
                source: e,
            })
        }
    };
    let mut candidates: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "snapshot"))
        .collect();
    candidates.sort();
    for path in candidates.into_iter().rev() {
        match load_any_serve_snapshot(&path) {
            Ok(snapshot) => return Ok(Some((path, snapshot))),
            Err(CheckpointError::Io(e)) if e.kind() != std::io::ErrorKind::NotFound => {
                return Err(UnreadableSnapshot { path, source: e })
            }
            Err(_) => continue,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state(completed: usize) -> RunState {
        RunState {
            completed_tasks: completed,
            method: "Finetune".into(),
            benchmark: "bench".into(),
            matrix_rows: vec![vec![0.5], vec![0.25, 0.75]],
            task_seconds: vec![1.5, 2.5],
            task_losses: vec![0.9, 0.8],
            params_payload: vec![1, 2, 3, 4],
            optim_payload: vec![5, 6],
            rng_state: [10, 20, 30, 40],
            method_state: vec![7, 8, 9],
            lr_scale: 0.5,
        }
    }

    fn temp_cfg(tag: &str) -> CheckpointConfig {
        let dir = std::env::temp_dir().join(format!("edsr-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointConfig::new(dir, "run")
    }

    #[test]
    fn encode_decode_roundtrip() {
        let state = sample_state(2);
        let decoded = decode_run_state(&encode_run_state(&state)).expect("decode");
        assert_eq!(decoded.completed_tasks, 2);
        assert_eq!(decoded.method, "Finetune");
        assert_eq!(decoded.matrix_rows, state.matrix_rows);
        assert_eq!(decoded.task_seconds, state.task_seconds);
        assert_eq!(decoded.rng_state, state.rng_state);
        assert_eq!(decoded.method_state, state.method_state);
        assert_eq!(decoded.lr_scale, 0.5);
    }

    #[test]
    fn save_load_and_scan() {
        let cfg = temp_cfg("scan");
        save_run_state(&cfg, &sample_state(1)).expect("save 1");
        save_run_state(&cfg, &sample_state(2)).expect("save 2");
        let (path, state) = latest_valid_run_state(&cfg).expect("latest");
        assert_eq!(state.completed_tasks, 2);
        assert!(path.to_string_lossy().contains("task0002"));
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn truncated_latest_falls_back_to_previous() {
        let cfg = temp_cfg("fallback");
        save_run_state(&cfg, &sample_state(1)).expect("save 1");
        let p2 = save_run_state(&cfg, &sample_state(2)).expect("save 2");
        // Chop the tail off the newest snapshot, as a crash mid-write would.
        let bytes = std::fs::read(&p2).expect("read");
        std::fs::write(&p2, &bytes[..bytes.len() - 7]).expect("truncate");
        assert!(matches!(
            load_run_state(&p2),
            Err(CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. })
        ));
        let (_, state) = latest_valid_run_state(&cfg).expect("fallback");
        assert_eq!(
            state.completed_tasks, 1,
            "did not fall back to the valid snapshot"
        );
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn pruning_keeps_the_newest() {
        let mut cfg = temp_cfg("prune");
        cfg.keep = 2;
        for completed in 1..=5 {
            save_run_state(&cfg, &sample_state(completed)).expect("save");
        }
        let left = list_snapshots(&cfg);
        let counts: Vec<usize> = left.iter().map(|(c, _)| *c).collect();
        assert_eq!(counts, vec![4, 5]);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let cfg = temp_cfg("magic");
        let path = save_run_state(&cfg, &sample_state(1)).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[..8].copy_from_slice(b"NOTAMAGI");
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            load_run_state(&path),
            Err(CheckpointError::BadMagic)
        ));
        assert!(latest_valid_run_state(&cfg).is_none());
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    // -- serve snapshots ---------------------------------------------------

    use crate::memory::MemoryItem;
    use edsr_tensor::rng::seeded;

    fn serve_fixture(seed: u64) -> (ContinualModel, Matrix, Vec<u64>) {
        let mut rng = seeded(seed);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let reprs = Matrix::randn(5, model.repr_dim(), 1.0, &mut rng);
        let tasks = vec![0, 0, 1, 1, 2];
        (model, reprs, tasks)
    }

    #[test]
    fn serve_snapshot_roundtrips_and_restores_bit_identical() {
        let (model, reprs, tasks) = serve_fixture(700);
        let snap =
            ServeSnapshot::capture(&model, reprs.clone(), tasks.clone(), "bench", 3).expect("cap");
        let path = temp_cfg("serve-rt").dir.join("one.snapshot");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        snap.save(&path).expect("save");
        let loaded = ServeSnapshot::load(&path).expect("load");
        assert_eq!(loaded.completed_tasks, 3);
        assert_eq!(loaded.benchmark, "bench");
        assert_eq!(loaded.memory_reprs, reprs);
        assert_eq!(loaded.memory_tasks, tasks);
        let restored = loaded.restore_model().expect("restore");
        let mut rng = seeded(701);
        let x = Matrix::randn(4, 16, 1.0, &mut rng);
        assert_eq!(
            restored.represent(&x, 0),
            model.represent(&x, 0),
            "restored model is not bit-identical"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn serve_snapshot_conv_and_simsiam_configs_roundtrip() {
        let mut rng = seeded(702);
        let shape = edsr_nn::ConvShape {
            channels: 1,
            height: 4,
            width: 4,
        };
        for cfg in [
            ModelConfig::conv_image(shape, 3),
            ModelConfig::tabular(vec![16, 9, 12]),
        ] {
            let model = ContinualModel::new(&cfg, &mut rng);
            let snap = ServeSnapshot::capture(
                &model,
                Matrix::zeros(0, model.repr_dim()),
                Vec::new(),
                "t",
                1,
            )
            .expect("capture");
            let decoded = ServeSnapshot::decode(&snap.encode()).expect("decode");
            let restored = decoded.restore_model().expect("restore");
            let x = Matrix::randn(2, cfg.input_dims[0], 1.0, &mut rng);
            assert_eq!(restored.represent(&x, 0), model.represent(&x, 0));
        }
    }

    #[test]
    fn serve_snapshot_capture_validates_shapes() {
        let (model, reprs, _) = serve_fixture(703);
        // Task-label count mismatch.
        assert!(matches!(
            ServeSnapshot::capture(&model, reprs.clone(), vec![0; 3], "b", 1),
            Err(CheckpointError::Mismatch(_))
        ));
        // Wrong representation dimensionality.
        let bad = Matrix::zeros(2, model.repr_dim() + 1);
        assert!(matches!(
            ServeSnapshot::capture(&model, bad, vec![0, 0], "b", 1),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn serve_snapshot_truncation_and_corruption_detected() {
        let (model, reprs, tasks) = serve_fixture(704);
        let snap = ServeSnapshot::capture(&model, reprs, tasks, "b", 2).expect("capture");
        let cfg = temp_cfg("serve-corrupt");
        std::fs::create_dir_all(&cfg.dir).unwrap();
        let path = cfg.dir.join("x.snapshot");
        snap.save(&path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(matches!(
            ServeSnapshot::load(&path),
            Err(CheckpointError::Truncated { .. } | CheckpointError::Corrupt { .. })
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).expect("flip");
        assert!(matches!(
            ServeSnapshot::load(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn memory_representations_skip_foreign_features() {
        let mut memory = MemoryBuffer::new();
        memory.extend([
            MemoryItem {
                input: vec![0.0; 4],
                task: 0,
                noise_scale: 0.0,
                stored_features: Some(vec![1.0, 2.0]),
            },
            MemoryItem {
                input: vec![0.0; 4],
                task: 1,
                noise_scale: 0.0,
                // Wrong dimensionality (e.g. DER backbone features).
                stored_features: Some(vec![9.0; 5]),
            },
            MemoryItem {
                input: vec![0.0; 4],
                task: 2,
                noise_scale: 0.0,
                stored_features: None,
            },
            MemoryItem {
                input: vec![0.0; 4],
                task: 3,
                noise_scale: 0.0,
                stored_features: Some(vec![3.0, 4.0]),
            },
        ]);
        let (reprs, tasks) = memory_representations(&memory, 2);
        assert_eq!(reprs.shape(), (2, 2));
        assert_eq!(tasks, vec![0, 3]);
        assert_eq!(reprs.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn serve_snapshot_save_prunes_and_latest_skips_corrupt() {
        let (model, reprs, tasks) = serve_fixture(705);
        let mut cfg = temp_cfg("serve-scan");
        cfg.keep = 2;
        for completed in 1..=4 {
            let snap = ServeSnapshot::capture(&model, reprs.clone(), tasks.clone(), "b", completed)
                .expect("capture");
            save_serve_snapshot(&cfg, &snap).expect("save");
        }
        let counts: Vec<usize> = list_serve_snapshots(&cfg).iter().map(|(c, _)| *c).collect();
        assert_eq!(counts, vec![3, 4]);
        // Corrupt the newest; latest_valid must fall back.
        let newest = serve_snapshot_path(&cfg, 4);
        let bytes = std::fs::read(&newest).expect("read");
        std::fs::write(&newest, &bytes[..bytes.len() - 3]).expect("truncate");
        let (_, snap) = latest_valid_serve_snapshot(&cfg.dir)
            .expect("corrupt files are skipped, not errors")
            .expect("fallback");
        assert_eq!(snap.completed_tasks(), 3);
        assert!(matches!(snap, AnyServeSnapshot::V1(_)));
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn latest_valid_reports_unreadable_candidates_by_path() {
        let (model, reprs, tasks) = serve_fixture(706);
        let cfg = temp_cfg("serve-unreadable");
        let snap = ServeSnapshot::capture(&model, reprs, tasks, "b", 1).expect("capture");
        save_serve_snapshot(&cfg, &snap).expect("save");
        // A *directory* with the snapshot extension, sorting newest: opening
        // it fails with an I/O error (EISDIR) rather than a validation
        // error, which must abort the scan naming the offending path.
        // (chmod-based decoys don't fail under root, so a directory is the
        // portable way to provoke an unreadable candidate.)
        let decoy = cfg.dir.join("zzz.task9999.snapshot");
        std::fs::create_dir_all(&decoy).expect("mk decoy dir");
        let err = latest_valid_serve_snapshot(&cfg.dir)
            .expect_err("unreadable candidate must abort the scan");
        assert_eq!(err.path, decoy);
        assert!(err.to_string().contains("zzz.task9999.snapshot"));
        // Removing the decoy restores the fallback behaviour.
        std::fs::remove_dir(&decoy).expect("rm decoy");
        assert!(latest_valid_serve_snapshot(&cfg.dir)
            .expect("scan")
            .is_some());
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn quantize_serve_snapshot_round_trips_and_gates() {
        let (model, reprs, tasks) = serve_fixture(707);
        let snap = ServeSnapshot::capture(&model, reprs.clone(), tasks.clone(), "bench", 2)
            .expect("capture");
        let qsnap = quantize_serve_snapshot(&snap).expect("quantize");
        assert_eq!(qsnap.completed_tasks, 2);
        assert_eq!(qsnap.benchmark, "bench");
        assert_eq!(qsnap.memory_tasks, tasks);
        assert_eq!(qsnap.memory.rows(), reprs.rows());
        assert_eq!(qsnap.encoder.repr_dim(), model.repr_dim());
        assert_eq!(qsnap.f32_params_crc, crc32(&snap.params_payload));
        assert!(qsnap.gate.f32_accuracy >= 0.0 && qsnap.gate.f32_accuracy <= 100.0);
        // v2 files round-trip through the shared namespace and the
        // any-format loader picks them up as V2.
        let mut cfg = temp_cfg("serve-quant");
        cfg.keep = 2;
        let path = save_quant_serve_snapshot(&cfg, &qsnap).expect("save v2");
        let any = load_any_serve_snapshot(&path).expect("load any");
        let AnyServeSnapshot::V2(loaded) = any else {
            panic!("expected a v2 snapshot");
        };
        assert_eq!(*loaded, qsnap);
        // The v2 file must be at least 3x smaller than its v1 source.
        let v1_path = cfg.dir.join("v1.snapshot-src");
        snap.save(&v1_path).expect("save v1");
        let v1_bytes = std::fs::metadata(&v1_path).unwrap().len();
        let v2_bytes = std::fs::metadata(&path).unwrap().len();
        assert!(
            v2_bytes * 3 <= v1_bytes,
            "v2 {} bytes not 3x smaller than v1 {} bytes",
            v2_bytes,
            v1_bytes
        );
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn quantized_encoder_tracks_f32_representations() {
        let (model, reprs, tasks) = serve_fixture(708);
        let snap = ServeSnapshot::capture(&model, reprs, tasks, "bench", 1).expect("capture");
        let qsnap = quantize_serve_snapshot(&snap).expect("quantize");
        let mut rng = seeded(709);
        let x = Matrix::randn(3, 16, 1.0, &mut rng);
        // Eval mode: the quantized chain mirrors the serve-time eval
        // forward, which skips batch standardization.
        let f32_reprs = model.represent_eval(&x, 0);
        let mut scratch = edsr_quant::QuantScratch::default();
        let mut out = vec![0.0f32; model.repr_dim()];
        for r in 0..x.rows() {
            qsnap
                .encoder
                .represent_into(0, x.row(r), &mut scratch, &mut out);
            let f32_row = f32_reprs.row(r);
            let norm: f32 = f32_row.iter().map(|v| v * v).sum::<f32>().sqrt();
            let err: f32 = out
                .iter()
                .zip(f32_row)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            assert!(
                err <= 0.15 * norm.max(1.0),
                "row {r}: int8 repr drifted {err} from f32 (norm {norm})"
            );
        }
    }
}
