//! Evaluation protocol: the weighted kNN classifier over representations
//! (paper §IV-A5, after Wu et al. \[78\]) — no extra trainable parameters.

use edsr_linalg::{KnnQuery, Metric};
use edsr_tensor::Matrix;

/// Softmax temperature for neighbour weighting (Wu et al. use 0.07).
const KNN_TEMPERATURE: f32 = 0.07;

/// Classifies each row of `test_reps` by temperature-weighted cosine kNN
/// voting over `(train_reps, train_labels)`.
///
/// # Panics
/// Panics if the reference set is empty or label count mismatches.
pub fn knn_classify(
    train_reps: &Matrix,
    train_labels: &[usize],
    test_reps: &Matrix,
    k: usize,
) -> Vec<usize> {
    assert!(train_reps.rows() > 0, "knn_classify: empty reference set");
    assert_eq!(
        train_reps.rows(),
        train_labels.len(),
        "knn_classify: reference labels misaligned"
    );
    let num_classes = train_labels.iter().copied().max().unwrap_or(0) + 1;
    let query = KnnQuery::new(train_reps, k).metric(Metric::Cosine);
    let mut scratch = Vec::with_capacity(train_reps.rows());
    let mut neighbors = Vec::with_capacity(k);
    let mut out = Vec::with_capacity(test_reps.rows());
    for t in 0..test_reps.rows() {
        query.search_into(test_reps.row(t), &mut scratch, &mut neighbors);
        let mut votes = vec![0.0f32; num_classes];
        for n in &neighbors {
            let w = (n.score / KNN_TEMPERATURE).exp();
            votes[train_labels[n.index]] += w;
        }
        let best = votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.push(best);
    }
    out
}

/// Fraction of agreeing entries between predictions and ground truth.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "accuracy: length mismatch");
    assert!(!predictions.is_empty(), "accuracy: empty input");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::{gaussian, seeded};

    /// Two clearly separated clusters in representation space.
    fn clustered(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = seeded(seed);
        let mut reps = Matrix::zeros(2 * n_per, 4);
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let class = i / n_per;
            let center = if class == 0 {
                [3.0, 0.0, 0.0, 0.0]
            } else {
                [0.0, 3.0, 0.0, 0.0]
            };
            for (c, &base) in center.iter().enumerate() {
                reps.set(i, c, base + 0.3 * gaussian(&mut rng));
            }
            labels.push(class);
        }
        (reps, labels)
    }

    #[test]
    fn classifies_separated_clusters() {
        let (train, train_labels) = clustered(20, 320);
        let (test, test_labels) = clustered(10, 321);
        let preds = knn_classify(&train, &train_labels, &test, 5);
        assert!(accuracy(&preds, &test_labels) > 0.95);
    }

    #[test]
    fn k_one_nearest_neighbor() {
        let train = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let labels = vec![7usize, 3];
        let test = Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]);
        let preds = knn_classify(&train, &labels, &test, 1);
        assert_eq!(preds, vec![7, 3]);
    }

    #[test]
    fn temperature_weighting_prefers_close_votes() {
        // 1 very close neighbour of class 0 vs 2 distant of class 1: with
        // temperature weighting the close one dominates at k=3.
        let train = Matrix::from_rows(&[&[1.0, 0.0], &[-0.5, 0.86], &[-0.5, -0.86]]);
        let labels = vec![0usize, 1, 1];
        let test = Matrix::from_rows(&[&[1.0, 0.01]]);
        let preds = knn_classify(&train, &labels, &test, 3);
        assert_eq!(preds, vec![0]);
    }

    #[test]
    fn accuracy_counts() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty reference")]
    fn empty_reference_panics() {
        let _ = knn_classify(&Matrix::zeros(0, 2), &[], &Matrix::zeros(1, 2), 1);
    }
}
