//! Continual-learning metrics: the accuracy matrix `A`, forgetting matrix
//! `F`, and the averages `Acc_i` / `Fgt_i` (paper Eq. 17–18, Fig. 3).

/// Lower-triangular accuracy matrix: `a[i][j]` = test accuracy on `X^j`
/// after learning `X^i` (`j ≤ i`).
///
/// ```
/// use edsr_cl::AccuracyMatrix;
/// let mut a = AccuracyMatrix::new();
/// a.push_row(vec![0.9]);
/// a.push_row(vec![0.8, 0.7]); // task 0 dropped 0.9 → 0.8
/// assert!((a.final_acc() - 0.75).abs() < 1e-6);
/// assert!((a.final_fgt() - 0.1).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct AccuracyMatrix {
    rows: Vec<Vec<f32>>,
}

impl AccuracyMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self { rows: Vec::new() }
    }

    /// Records the evaluation row after learning increment `i`:
    /// accuracies on `X^0..=X^i` in order.
    ///
    /// # Panics
    /// Panics unless exactly `i+1` accuracies are given in sequence order.
    pub fn push_row(&mut self, accuracies: Vec<f32>) {
        assert_eq!(
            accuracies.len(),
            self.rows.len() + 1,
            "push_row: row {} must have {} entries",
            self.rows.len(),
            self.rows.len() + 1
        );
        assert!(
            accuracies.iter().all(|a| (0.0..=1.0).contains(a)),
            "push_row: accuracy out of [0,1]"
        );
        self.rows.push(accuracies);
    }

    /// Number of completed increments.
    pub fn num_increments(&self) -> usize {
        self.rows.len()
    }

    /// All evaluation rows, oldest first (run-state snapshots persist
    /// these verbatim).
    pub fn rows(&self) -> &[Vec<f32>] {
        &self.rows
    }

    /// `A_{i,j}`: accuracy on task `j` after learning task `i`.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(j <= i, "A_(i,j) undefined for j > i");
        self.rows[i][j]
    }

    /// `Acc_i` (Eq. 17): mean accuracy over learned tasks after task `i`.
    pub fn acc_at(&self, i: usize) -> f32 {
        let row = &self.rows[i];
        row.iter().sum::<f32>() / row.len() as f32
    }

    /// Final `Acc` (after the last increment).
    pub fn final_acc(&self) -> f32 {
        self.acc_at(self.rows.len() - 1)
    }

    /// `F_{i,j} = max_{i' ≤ i} (A_{i',j} − A_{i,j})` — the forgetting of
    /// task `j` at time `i`. `F_{i,i} = 0` by construction.
    pub fn forgetting(&self, i: usize, j: usize) -> f32 {
        assert!(j <= i, "F_(i,j) undefined for j > i");
        let current = self.rows[i][j];
        let peak = (j..=i)
            .map(|ip| self.rows[ip][j])
            .fold(f32::NEG_INFINITY, f32::max);
        peak - current
    }

    /// `Fgt_i` (Eq. 18): mean forgetting over *old* tasks (`j < i`).
    /// Defined as 0 at `i = 0` (nothing to forget).
    pub fn fgt_at(&self, i: usize) -> f32 {
        if i == 0 {
            return 0.0;
        }
        let total: f32 = (0..i).map(|j| self.forgetting(i, j)).sum();
        total / i as f32
    }

    /// Final `Fgt`.
    pub fn final_fgt(&self) -> f32 {
        self.fgt_at(self.rows.len().saturating_sub(1))
    }

    /// New-task accuracy `A_{i,i}` per increment (Fig. 5's plasticity
    /// curve).
    pub fn new_task_accuracies(&self) -> Vec<f32> {
        (0..self.rows.len()).map(|i| self.rows[i][i]).collect()
    }

    /// The full forgetting matrix as rows `i` of `F_{i,j}` for `j ≤ i`
    /// (Fig. 4's heat data).
    pub fn forgetting_matrix(&self) -> Vec<Vec<f32>> {
        (0..self.rows.len())
            .map(|i| (0..=i).map(|j| self.forgetting(i, j)).collect())
            .collect()
    }
}

impl Default for AccuracyMatrix {
    fn default() -> Self {
        Self::new()
    }
}

/// Mean and (population) standard deviation of a slice — used to report
/// the paper's `mean ± std` rows over seeds.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> AccuracyMatrix {
        // A = [0.9]
        //     [0.7, 0.8]
        //     [0.6, 0.75, 0.85]
        let mut a = AccuracyMatrix::new();
        a.push_row(vec![0.9]);
        a.push_row(vec![0.7, 0.8]);
        a.push_row(vec![0.6, 0.75, 0.85]);
        a
    }

    #[test]
    fn acc_averages_row() {
        let a = example();
        assert!((a.acc_at(0) - 0.9).abs() < 1e-6);
        assert!((a.acc_at(1) - 0.75).abs() < 1e-6);
        assert!((a.final_acc() - (0.6 + 0.75 + 0.85) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn forgetting_uses_peak() {
        let a = example();
        // Task 0 peaked at 0.9; at i=2 it is 0.6 → F = 0.3.
        assert!((a.forgetting(2, 0) - 0.3).abs() < 1e-6);
        // Task 1 peaked at 0.8; at i=2 it is 0.75 → F = 0.05.
        assert!((a.forgetting(2, 1) - 0.05).abs() < 1e-6);
        // Self-forgetting is zero.
        assert_eq!(a.forgetting(2, 2), 0.0);
        assert_eq!(a.forgetting(0, 0), 0.0);
    }

    #[test]
    fn fgt_excludes_current_task() {
        let a = example();
        assert_eq!(a.fgt_at(0), 0.0);
        assert!((a.fgt_at(2) - (0.3 + 0.05) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn forgetting_nonnegative_even_with_backward_transfer() {
        // Accuracy on task 0 *improves* later; forgetting must clamp at 0
        // via the peak definition (peak is the later, higher value).
        let mut a = AccuracyMatrix::new();
        a.push_row(vec![0.5]);
        a.push_row(vec![0.7, 0.6]);
        assert_eq!(a.forgetting(1, 0), 0.0);
        assert!(a.fgt_at(1) >= 0.0);
    }

    #[test]
    fn new_task_accuracies_diagonal() {
        let a = example();
        assert_eq!(a.new_task_accuracies(), vec![0.9, 0.8, 0.85]);
    }

    #[test]
    fn forgetting_matrix_shape() {
        let a = example();
        let f = a.forgetting_matrix();
        assert_eq!(f.len(), 3);
        assert_eq!(f[2].len(), 3);
        assert_eq!(f[0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "must have")]
    fn wrong_row_length_panics() {
        let mut a = AccuracyMatrix::new();
        a.push_row(vec![0.5, 0.5]);
    }

    #[test]
    fn acc_matrix_properties_on_random_history() {
        // Build a random-but-valid history and verify structural
        // invariants: F_{i,i}=0, F >= 0, Acc within [0,1], Fgt >= 0.
        let mut rng = edsr_tensor::rng::seeded(900);
        for _trial in 0..25 {
            let n = 2 + edsr_tensor::rng::index(&mut rng, 6);
            let mut a = AccuracyMatrix::new();
            for i in 0..n {
                let row: Vec<f32> = (0..=i)
                    .map(|_| edsr_tensor::rng::uniform(&mut rng, 0.0, 1.0))
                    .collect();
                a.push_row(row);
            }
            for i in 0..n {
                assert_eq!(a.forgetting(i, i), 0.0);
                assert!((0.0..=1.0).contains(&a.acc_at(i)));
                assert!(a.fgt_at(i) >= 0.0);
                for j in 0..=i {
                    assert!(a.forgetting(i, j) >= -1e-6);
                }
            }
            assert_eq!(a.new_task_accuracies().len(), n);
        }
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        let (m0, s0) = mean_std(&[]);
        assert_eq!((m0, s0), (0.0, 0.0));
    }
}
