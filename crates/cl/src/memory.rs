//! The episodic memory `{M^i_*}_{i<n}`.
//!
//! Stores raw inputs (the replayable medium), their source increment (so
//! heterogeneous-input streams pick the right adapter), the per-sample
//! replay-noise magnitude `r(x^m)` (EDSR, §III-B), and optionally the
//! frozen backbone features recorded at storage time (DER's medium).

use edsr_tensor::rng::sample_indices;
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

/// One stored sample.
#[derive(Debug, Clone)]
pub struct MemoryItem {
    /// Raw input vector.
    pub input: Vec<f32>,
    /// Source increment index.
    pub task: usize,
    /// Noise magnitude `r(x^m)`; 0 disables the noise term.
    pub noise_scale: f32,
    /// Backbone features at storage time (DER only).
    pub stored_features: Option<Vec<f32>>,
}

/// A batch of memory samples drawn from one source task (uniform input
/// dimensionality, one adapter).
#[derive(Debug)]
pub struct MemoryBatch {
    /// Source increment.
    pub task: usize,
    /// Inputs, one row per drawn item.
    pub inputs: Matrix,
    /// `r(x^m)` per row.
    pub noise_scales: Vec<f32>,
    /// Stored DER features per row (empty matrix if absent).
    pub stored_features: Option<Matrix>,
}

/// Fixed-capacity episodic memory.
#[derive(Debug, Default, Clone)]
pub struct MemoryBuffer {
    items: Vec<MemoryItem>,
}

impl MemoryBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Read access to all items.
    pub fn items(&self) -> &[MemoryItem] {
        &self.items
    }

    /// Appends a selection from one finished increment.
    pub fn extend(&mut self, items: impl IntoIterator<Item = MemoryItem>) {
        self.items.extend(items);
    }

    /// Draws up to `k` items uniformly (without replacement) and groups
    /// them by source task so each group shares an adapter. Returns an
    /// empty vec when the buffer is empty.
    pub fn sample_grouped(&self, k: usize, rng: &mut StdRng) -> Vec<MemoryBatch> {
        if self.items.is_empty() || k == 0 {
            return Vec::new();
        }
        let k = k.min(self.items.len());
        let chosen = sample_indices(rng, self.items.len(), k);
        self.group(&chosen)
    }

    /// Draws up to `k` items with probability proportional to `weights`
    /// (with replacement), grouped by task. Used by the similarity-
    /// weighted replay extension (§IV-F's "potential way").
    ///
    /// # Panics
    /// Panics if `weights.len() != self.len()`.
    pub fn sample_weighted_grouped(
        &self,
        k: usize,
        weights: &[f32],
        rng: &mut StdRng,
    ) -> Vec<MemoryBatch> {
        assert_eq!(
            weights.len(),
            self.items.len(),
            "sample_weighted: weight count mismatch"
        );
        if self.items.is_empty() || k == 0 {
            return Vec::new();
        }
        let chosen: Vec<usize> = (0..k)
            .map(|_| edsr_tensor::rng::weighted_index(rng, weights))
            .collect();
        self.group(&chosen)
    }

    /// Draws up to `k` items uniformly (without replacement) as ONE merged
    /// batch — valid when all items share the encoder adapter (uniform
    /// input dimensionality, e.g. every image benchmark). Batch-statistic
    /// losses (BarlowTwins) need this: per-task groups can be as small as
    /// one row, where batch standardization degenerates.
    ///
    /// The batch's `task` is the first drawn item's source task (with a
    /// shared adapter the value is ignored by the encoder).
    ///
    /// # Panics
    /// Panics if stored items have differing input dimensionality.
    pub fn sample_merged(&self, k: usize, rng: &mut StdRng) -> Option<MemoryBatch> {
        if self.items.is_empty() || k == 0 {
            return None;
        }
        let k = k.min(self.items.len());
        let chosen = sample_indices(rng, self.items.len(), k);
        let dim = self.items[chosen[0]].input.len();
        let mut inputs = Matrix::zeros(k, dim);
        let mut noise_scales = Vec::with_capacity(k);
        for (row, &i) in chosen.iter().enumerate() {
            assert_eq!(
                self.items[i].input.len(),
                dim,
                "sample_merged: heterogeneous input dims; use sample_grouped"
            );
            inputs.row_mut(row).copy_from_slice(&self.items[i].input);
            noise_scales.push(self.items[i].noise_scale);
        }
        Some(MemoryBatch {
            task: self.items[chosen[0]].task,
            inputs,
            noise_scales,
            stored_features: None,
        })
    }

    /// Weighted-with-replacement variant of
    /// [`sample_merged`](Self::sample_merged) (uniform input
    /// dimensionality required). Used by similarity-weighted replay on
    /// shared-adapter encoders.
    ///
    /// # Panics
    /// Panics on weight-count mismatch or heterogeneous input dims.
    pub fn sample_weighted_merged(
        &self,
        k: usize,
        weights: &[f32],
        rng: &mut StdRng,
    ) -> Option<MemoryBatch> {
        assert_eq!(
            weights.len(),
            self.items.len(),
            "sample_weighted_merged: weight count mismatch"
        );
        if self.items.is_empty() || k == 0 {
            return None;
        }
        let chosen: Vec<usize> = (0..k)
            .map(|_| edsr_tensor::rng::weighted_index(rng, weights))
            .collect();
        let dim = self.items[chosen[0]].input.len();
        let mut inputs = Matrix::zeros(chosen.len(), dim);
        let mut noise_scales = Vec::with_capacity(chosen.len());
        for (row, &i) in chosen.iter().enumerate() {
            assert_eq!(
                self.items[i].input.len(),
                dim,
                "sample_weighted_merged: heterogeneous input dims; use sample_weighted_grouped"
            );
            inputs.row_mut(row).copy_from_slice(&self.items[i].input);
            noise_scales.push(self.items[i].noise_scale);
        }
        Some(MemoryBatch {
            task: self.items[chosen[0]].task,
            inputs,
            noise_scales,
            stored_features: None,
        })
    }

    /// Serializes the buffer for a run-state snapshot (see
    /// `Method::save_state`). Format: item count, then per item the
    /// source task, noise scale, raw input, and optional stored features.
    pub fn to_bytes(&self) -> Vec<u8> {
        use edsr_nn::io::{put_f32, put_u32, put_u64};
        let mut buf = Vec::new();
        put_u64(&mut buf, self.items.len() as u64);
        for item in &self.items {
            put_u64(&mut buf, item.task as u64);
            put_f32(&mut buf, item.noise_scale);
            put_u64(&mut buf, item.input.len() as u64);
            for &v in &item.input {
                put_f32(&mut buf, v);
            }
            match &item.stored_features {
                Some(f) => {
                    put_u32(&mut buf, 1);
                    put_u64(&mut buf, f.len() as u64);
                    for &v in f {
                        put_f32(&mut buf, v);
                    }
                }
                None => put_u32(&mut buf, 0),
            }
        }
        buf
    }

    /// Rebuilds a buffer serialized by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, edsr_nn::CheckpointError> {
        use edsr_nn::io::ByteReader;
        use edsr_nn::CheckpointError;
        let mut r = ByteReader::new(bytes);
        let count = r.u64()? as usize;
        let mut items = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let task = r.u64()? as usize;
            let noise_scale = r.f32()?;
            let dim = r.u64()? as usize;
            let mut input = Vec::with_capacity(dim.min(1 << 20));
            for _ in 0..dim {
                input.push(r.f32()?);
            }
            let stored_features = match r.u32()? {
                0 => None,
                1 => {
                    let flen = r.u64()? as usize;
                    let mut f = Vec::with_capacity(flen.min(1 << 20));
                    for _ in 0..flen {
                        f.push(r.f32()?);
                    }
                    Some(f)
                }
                tag => {
                    return Err(CheckpointError::Mismatch(format!(
                        "memory item: unknown feature tag {tag}"
                    )))
                }
            };
            items.push(MemoryItem {
                input,
                task,
                noise_scale,
                stored_features,
            });
        }
        if !r.is_exhausted() {
            return Err(CheckpointError::Mismatch(
                "memory payload has trailing bytes".into(),
            ));
        }
        Ok(Self { items })
    }

    /// Groups item indices by task into dense batches.
    fn group(&self, indices: &[usize]) -> Vec<MemoryBatch> {
        let mut tasks: Vec<usize> = indices.iter().map(|&i| self.items[i].task).collect();
        tasks.sort_unstable();
        tasks.dedup();
        tasks
            .into_iter()
            .map(|task| {
                let members: Vec<usize> = indices
                    .iter()
                    .copied()
                    .filter(|&i| self.items[i].task == task)
                    .collect();
                let dim = self.items[members[0]].input.len();
                let mut inputs = Matrix::zeros(members.len(), dim);
                let mut noise_scales = Vec::with_capacity(members.len());
                let mut feats: Vec<&Vec<f32>> = Vec::new();
                let mut all_have_features = true;
                for (row, &i) in members.iter().enumerate() {
                    inputs.row_mut(row).copy_from_slice(&self.items[i].input);
                    noise_scales.push(self.items[i].noise_scale);
                    match &self.items[i].stored_features {
                        Some(f) => feats.push(f),
                        None => all_have_features = false,
                    }
                }
                let stored_features = if all_have_features && !feats.is_empty() {
                    let fd = feats[0].len();
                    let mut m = Matrix::zeros(feats.len(), fd);
                    for (row, f) in feats.iter().enumerate() {
                        m.row_mut(row).copy_from_slice(f);
                    }
                    Some(m)
                } else {
                    None
                };
                MemoryBatch {
                    task,
                    inputs,
                    noise_scales,
                    stored_features,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    fn item(task: usize, v: f32) -> MemoryItem {
        MemoryItem {
            input: vec![v; 3],
            task,
            noise_scale: 0.1 * v,
            stored_features: None,
        }
    }

    #[test]
    fn extend_and_len() {
        let mut m = MemoryBuffer::new();
        assert!(m.is_empty());
        m.extend([item(0, 1.0), item(0, 2.0)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn sample_grouped_groups_by_task() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 1.0), item(1, 2.0), item(0, 3.0), item(1, 4.0)]);
        let mut rng = seeded(310);
        let groups = m.sample_grouped(4, &mut rng);
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(|g| g.inputs.rows()).sum();
        assert_eq!(total, 4);
        for g in &groups {
            for r in 0..g.inputs.rows() {
                // All rows of a group come from the declared task: encode
                // task in the value (task 0 stored odd values 1,3).
                let v = g.inputs.get(r, 0);
                if g.task == 0 {
                    assert!(v == 1.0 || v == 3.0);
                } else {
                    assert!(v == 2.0 || v == 4.0);
                }
            }
        }
    }

    #[test]
    fn sample_clamps_to_population() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 1.0)]);
        let mut rng = seeded(311);
        let groups = m.sample_grouped(10, &mut rng);
        assert_eq!(groups[0].inputs.rows(), 1);
    }

    #[test]
    fn empty_buffer_samples_nothing() {
        let m = MemoryBuffer::new();
        let mut rng = seeded(312);
        assert!(m.sample_grouped(5, &mut rng).is_empty());
        assert!(m.sample_grouped(0, &mut rng).is_empty());
    }

    #[test]
    fn noise_scales_travel_with_rows() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 2.0), item(0, 4.0)]);
        let mut rng = seeded(313);
        let groups = m.sample_grouped(2, &mut rng);
        let g = &groups[0];
        for r in 0..g.inputs.rows() {
            let v = g.inputs.get(r, 0);
            assert!((g.noise_scales[r] - 0.1 * v).abs() < 1e-6);
        }
    }

    #[test]
    fn stored_features_materialize_when_all_present() {
        let mut m = MemoryBuffer::new();
        m.extend([
            MemoryItem {
                input: vec![1.0; 3],
                task: 0,
                noise_scale: 0.0,
                stored_features: Some(vec![9.0, 8.0]),
            },
            MemoryItem {
                input: vec![2.0; 3],
                task: 0,
                noise_scale: 0.0,
                stored_features: Some(vec![7.0, 6.0]),
            },
        ]);
        let mut rng = seeded(314);
        let groups = m.sample_grouped(2, &mut rng);
        let f = groups[0]
            .stored_features
            .as_ref()
            .expect("features present");
        assert_eq!(f.shape(), (2, 2));
    }

    #[test]
    fn heterogeneous_dims_stay_separate() {
        let mut m = MemoryBuffer::new();
        m.extend([
            MemoryItem {
                input: vec![1.0; 4],
                task: 0,
                noise_scale: 0.0,
                stored_features: None,
            },
            MemoryItem {
                input: vec![1.0; 7],
                task: 1,
                noise_scale: 0.0,
                stored_features: None,
            },
        ]);
        let mut rng = seeded(315);
        let groups = m.sample_grouped(2, &mut rng);
        assert_eq!(groups.len(), 2);
        let dims: Vec<usize> = groups.iter().map(|g| g.inputs.cols()).collect();
        assert!(dims.contains(&4) && dims.contains(&7));
    }

    #[test]
    fn sample_merged_single_batch_uniform_dims() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 1.0), item(1, 2.0), item(2, 3.0)]);
        let mut rng = seeded(317);
        let batch = m.sample_merged(3, &mut rng).expect("non-empty");
        assert_eq!(batch.inputs.rows(), 3);
        assert_eq!(batch.noise_scales.len(), 3);
        // Noise scales still aligned with their rows.
        for r in 0..3 {
            let v = batch.inputs.get(r, 0);
            assert!((batch.noise_scales[r] - 0.1 * v).abs() < 1e-6);
        }
    }

    #[test]
    fn sample_merged_empty_and_zero() {
        let m = MemoryBuffer::new();
        let mut rng = seeded(318);
        assert!(m.sample_merged(4, &mut rng).is_none());
        let mut m2 = MemoryBuffer::new();
        m2.extend([item(0, 1.0)]);
        assert!(m2.sample_merged(0, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "heterogeneous input dims")]
    fn sample_merged_rejects_mixed_dims() {
        let mut m = MemoryBuffer::new();
        m.extend([
            MemoryItem {
                input: vec![1.0; 4],
                task: 0,
                noise_scale: 0.0,
                stored_features: None,
            },
            MemoryItem {
                input: vec![1.0; 7],
                task: 1,
                noise_scale: 0.0,
                stored_features: None,
            },
        ]);
        let mut rng = seeded(319);
        // Draw everything so both dims are guaranteed to collide.
        let _ = m.sample_merged(2, &mut rng);
    }

    #[test]
    fn weighted_merged_is_one_batch_respecting_weights() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 1.0), item(1, 2.0)]);
        let mut rng = seeded(320);
        let batch = m
            .sample_weighted_merged(40, &[0.0, 1.0], &mut rng)
            .expect("batch");
        assert_eq!(batch.inputs.rows(), 40);
        for r in 0..40 {
            assert_eq!(batch.inputs.get(r, 0), 2.0, "zero-weight item drawn");
        }
    }

    #[test]
    fn byte_roundtrip_preserves_items() {
        let mut m = MemoryBuffer::new();
        m.extend([
            MemoryItem {
                input: vec![1.0, -2.5, 3.0],
                task: 2,
                noise_scale: 0.125,
                stored_features: Some(vec![9.0, 8.0]),
            },
            MemoryItem {
                input: vec![4.0; 7],
                task: 0,
                noise_scale: 0.0,
                stored_features: None,
            },
        ]);
        let restored = MemoryBuffer::from_bytes(&m.to_bytes()).expect("decode");
        assert_eq!(restored.len(), 2);
        for (a, b) in m.items().iter().zip(restored.items()) {
            assert_eq!(a.input, b.input);
            assert_eq!(a.task, b.task);
            assert_eq!(a.noise_scale, b.noise_scale);
            assert_eq!(a.stored_features, b.stored_features);
        }
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 1.0)]);
        let bytes = m.to_bytes();
        assert!(MemoryBuffer::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(MemoryBuffer::from_bytes(&[]).is_err());
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut m = MemoryBuffer::new();
        m.extend([item(0, 1.0), item(0, 2.0)]);
        let mut rng = seeded(316);
        let groups = m.sample_weighted_grouped(50, &[0.0, 1.0], &mut rng);
        let g = &groups[0];
        for r in 0..g.inputs.rows() {
            assert_eq!(g.inputs.get(r, 0), 2.0, "zero-weight item was drawn");
        }
    }
}
