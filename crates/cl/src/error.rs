//! Structured training errors.
//!
//! Everything that can go wrong inside the continual-learning runtime is
//! funnelled into [`TrainError`] so sweep drivers can report *which*
//! method/increment failed and keep going, instead of unwinding the whole
//! process.

use std::fmt;

use edsr_data::DataError;
use edsr_nn::CheckpointError;

/// A failure raised by the training runtime.
#[derive(Debug)]
pub enum TrainError {
    /// The divergence guard exhausted its retry budget on one increment.
    Diverged {
        /// Method display name.
        method: String,
        /// Increment index (0-based) that diverged.
        task: usize,
        /// Epoch within the increment at the final failed attempt.
        epoch: usize,
        /// Recovery attempts consumed before giving up.
        retries: usize,
        /// The loss value that triggered the final detection.
        last_loss: f32,
        /// Learning rate at the time of the final detection.
        lr: f32,
    },
    /// The run was mis-configured (augmenter/task count mismatch, …).
    InvalidConfig(String),
    /// Run-state checkpoint I/O failed.
    Checkpoint(CheckpointError),
    /// A method could not persist or restore its internal state.
    MethodState {
        /// Method display name.
        method: String,
        /// What went wrong.
        reason: String,
    },
    /// A parallel worker panicked (payload text from
    /// `edsr_par::catch_panic`); the sweep records the seed and moves on.
    Worker(String),
    /// The task source failed to yield an increment (corrupt shard,
    /// truncated stream, out-of-range fetch, …).
    Data(DataError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                method,
                task,
                epoch,
                retries,
                last_loss,
                lr,
            } => write!(
                f,
                "{method} diverged at increment {task}, epoch {epoch} \
                 (loss {last_loss}, lr {lr:e}) after {retries} recovery attempts"
            ),
            TrainError::InvalidConfig(msg) => write!(f, "invalid run configuration: {msg}"),
            TrainError::Checkpoint(e) => write!(f, "run-state checkpoint: {e}"),
            TrainError::MethodState { method, reason } => {
                write!(f, "{method} state persistence: {reason}")
            }
            TrainError::Worker(msg) => write!(f, "parallel worker panicked: {msg}"),
            TrainError::Data(e) => write!(f, "task source: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<DataError> for TrainError {
    fn from(e: DataError) -> Self {
        TrainError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_increment() {
        let e = TrainError::Diverged {
            method: "DER".into(),
            task: 3,
            epoch: 7,
            retries: 4,
            last_loss: f32::NAN,
            lr: 1e-4,
        };
        let msg = e.to_string();
        assert!(msg.contains("DER"), "{msg}");
        assert!(msg.contains("increment 3"), "{msg}");
        assert!(msg.contains("epoch 7"), "{msg}");
    }

    #[test]
    fn data_errors_convert_and_chain() {
        let e: TrainError = DataError::OutOfRange { index: 9, len: 4 }.into();
        assert!(matches!(e, TrainError::Data(_)));
        let msg = e.to_string();
        assert!(msg.contains("task source"), "{msg}");
        assert!(msg.contains('9'), "{msg}");
    }

    #[test]
    fn checkpoint_errors_convert_and_chain() {
        let e: TrainError = CheckpointError::BadMagic.into();
        assert!(matches!(e, TrainError::Checkpoint(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
