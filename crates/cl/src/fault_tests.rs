//! Fault-tolerance integration tests: injected divergence is rolled back
//! and survived; interrupted runs resume bit-identically from run-state
//! snapshots, including when the newest snapshot is truncated.

#![cfg(test)]

use edsr_data::{Augmenter, Dataset, Task, TaskSequence};
use edsr_tensor::rng::seeded;
use edsr_tensor::Matrix;

use crate::checkpoint::{list_snapshots, CheckpointConfig};
use crate::error::TrainError;
use crate::fault::{truncate_file, FaultInjector, FaultPlan};
use crate::guard::GuardConfig;
use crate::methods::{Der, Finetune};
use crate::model::{ContinualModel, ModelConfig};
use crate::trainer::{OptimizerKind, RunBuilder, TrainConfig};

/// Two-increment toy stream with clearly clustered 8-d inputs.
fn toy_sequence(seed: u64) -> TaskSequence {
    let mut rng = seeded(seed);
    let mut make_task = |offset: f32| {
        let mut inputs = Matrix::randn(24, 8, 0.2, &mut rng);
        let mut labels = Vec::new();
        for r in 0..24 {
            let class = r % 2;
            labels.push(class);
            inputs.add_at(r, class, offset + 2.0);
        }
        let data = Dataset::new("toy", inputs, labels);
        Task {
            train: data.clone(),
            test: data.subset(&(0..8).collect::<Vec<_>>()),
            classes: vec![0, 1],
        }
    };
    TaskSequence {
        name: "toy".into(),
        tasks: vec![make_task(0.0), make_task(1.0)],
    }
}

fn toy_augmenters(n: usize) -> Vec<Augmenter> {
    (0..n).map(|_| Augmenter::Identity).collect()
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs_per_task: 2,
        batch_size: 8,
        replay_batch: 4,
        lr: 1e-3,
        momentum: 0.9,
        weight_decay: 0.0,
        optimizer: OptimizerKind::Adam,
        eval_k: 3,
        multitask_epoch_multiplier: 1,
        cosine_floor: 1.0,
    }
}

fn temp_ckpt(tag: &str) -> CheckpointConfig {
    let dir = std::env::temp_dir().join(format!("edsr-fault-tests-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointConfig::new(dir, "run")
}

/// Acceptance (a): an injected NaN loss triggers rollback plus LR
/// backoff and the run still completes with finite task losses.
#[test]
fn nan_fault_is_rolled_back_and_run_completes() {
    let seq = toy_sequence(40);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(41));
    // NaN at increment 0, step 1: poisons a live weight AND the loss.
    let mut method = FaultInjector::new(Finetune::new(), FaultPlan::nan_loss_at(0, 1));
    let cfg = tiny_cfg();
    let mut rng = seeded(42);
    let result = RunBuilder::new(&cfg)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("survives NaN");
    assert_eq!(method.injected(), 1, "fault did not fire");
    assert!(result.recoveries >= 1, "no rollback recorded");
    assert_eq!(result.matrix.num_increments(), 2, "run did not complete");
    assert!(
        result.task_losses.iter().all(|l| l.is_finite()),
        "task losses polluted: {:?}",
        result.task_losses
    );
    // The poisoned weight must have been restored: all params finite.
    let clean = model
        .params
        .ids()
        .all(|id| model.params.value(id).data().iter().all(|v| v.is_finite()));
    assert!(clean, "NaN weight survived the rollback");
}

/// A corrupt batch (bad data read) yields a non-finite loss but must not
/// poison weights or optimizer moments; the run completes.
#[test]
fn corrupt_batch_is_survived_without_weight_damage() {
    let seq = toy_sequence(43);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(44));
    let mut method = FaultInjector::new(Finetune::new(), FaultPlan::corrupt_batch_at(1, 2));
    let cfg = tiny_cfg();
    let mut rng = seeded(45);
    let result = RunBuilder::new(&cfg)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("survives");
    assert_eq!(method.injected(), 1);
    assert!(result.recoveries >= 1);
    assert!(result.task_losses.iter().all(|l| l.is_finite()));
    let clean = model
        .params
        .ids()
        .all(|id| model.params.value(id).data().iter().all(|v| v.is_finite()));
    assert!(clean, "corrupt batch leaked NaN into the weights");
}

/// Faults on every retry exhaust the bounded budget and surface a
/// structured `Diverged` error naming the increment.
#[test]
fn persistent_divergence_exhausts_retries_with_structured_error() {
    let seq = toy_sequence(46);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(47));
    // The step counter keeps counting across retries, so consecutive
    // step coordinates re-fault every retried epoch.
    let plan = FaultPlan {
        faults: (0..8)
            .map(|s| crate::fault::Fault::NanLoss { task: 0, step: s })
            .collect(),
    };
    let mut method = FaultInjector::new(Finetune::new(), plan);
    let cfg = tiny_cfg();
    let mut rng = seeded(48);
    let err = RunBuilder::new(&cfg)
        .guard(GuardConfig {
            max_retries: 2,
            ..GuardConfig::default()
        })
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .unwrap_err();
    match err {
        TrainError::Diverged { task, retries, .. } => {
            assert_eq!(task, 0);
            assert_eq!(retries, 2);
        }
        other => panic!("expected Diverged, got {other}"),
    }
}

/// Acceptance (b): interrupting after increment 1, truncating the newest
/// snapshot, and resuming falls back to the previous valid snapshot and
/// reproduces the uninterrupted run's accuracy matrix exactly.
#[test]
fn resume_after_truncation_matches_uninterrupted_run() {
    let seq = toy_sequence(50);
    let augs = toy_augmenters(seq.len());
    let cfg = tiny_cfg();
    let make_method = || Der::new(6, 4, 0.5);

    // Reference: uninterrupted, no checkpointing.
    let mut ref_model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(51));
    let mut ref_method = make_method();
    let mut ref_rng = seeded(52);
    let reference = RunBuilder::new(&cfg)
        .run(
            &mut ref_method,
            &mut ref_model,
            &mut &seq,
            &augs,
            &mut ref_rng,
        )
        .expect("reference run");

    // Checkpointed run over the full sequence (snapshots after both
    // increments), identical seeds.
    let ckpt = temp_ckpt("resume");
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(51));
    let mut method = make_method();
    let mut rng = seeded(52);
    let checkpointed = RunBuilder::new(&cfg)
        .checkpoint(ckpt.clone())
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("checkpointed run");
    assert_eq!(
        checkpointed.matrix.rows(),
        reference.matrix.rows(),
        "checkpointing changed math"
    );
    let snapshots = list_snapshots(&ckpt);
    assert_eq!(snapshots.len(), 2, "expected one snapshot per increment");

    // Truncate the newest snapshot mid-payload, as a crash would.
    let newest = &snapshots[1].1;
    let len = std::fs::metadata(newest).expect("stat").len() as usize;
    truncate_file(newest, len / 2).expect("truncate");

    // Resume with fresh objects: must fall back to the task-1 snapshot,
    // retrain increment 2, and land on the same matrix bit-for-bit.
    let mut resumed_model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(51));
    let mut resumed_method = make_method();
    let mut resumed_rng = seeded(777); // overwritten by the snapshot's RNG state
    let resumed = RunBuilder::new(&cfg)
        .checkpoint(ckpt.clone())
        .resume()
        .run(
            &mut resumed_method,
            &mut resumed_model,
            &mut &seq,
            &augs,
            &mut resumed_rng,
        )
        .expect("resumed run");
    assert_eq!(
        resumed.matrix.rows(),
        reference.matrix.rows(),
        "resumed run diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed.task_losses[1], reference.task_losses[1],
        "loss stream diverged"
    );
    let _ = std::fs::remove_dir_all(&ckpt.dir);
}

/// `stop_after` interrupts cleanly and a plain resume finishes the rest.
#[test]
fn stop_after_then_resume_completes_the_sequence() {
    let seq = toy_sequence(53);
    let augs = toy_augmenters(seq.len());
    let cfg = tiny_cfg();
    let ckpt = temp_ckpt("stop-after");

    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(54));
    let mut method = Finetune::new();
    let mut rng = seeded(55);
    let partial = RunBuilder::new(&cfg)
        .checkpoint(ckpt.clone())
        .stop_after(1)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("partial run");
    assert_eq!(partial.matrix.num_increments(), 1, "stop_after ignored");

    let mut resumed_model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(54));
    let mut resumed_method = Finetune::new();
    let mut resumed_rng = seeded(999);
    let full = RunBuilder::new(&cfg)
        .checkpoint(ckpt.clone())
        .resume()
        .run(
            &mut resumed_method,
            &mut resumed_model,
            &mut &seq,
            &augs,
            &mut resumed_rng,
        )
        .expect("resumed run");
    assert_eq!(
        full.matrix.num_increments(),
        2,
        "resume did not finish the sequence"
    );
    assert_eq!(
        full.matrix.rows()[0],
        partial.matrix.rows()[0],
        "history rewritten on resume"
    );
    let _ = std::fs::remove_dir_all(&ckpt.dir);
}

/// Checkpointing a method without state hooks is an explicit error, not
/// silent state loss.
#[test]
fn checkpointing_requires_state_hooks() {
    struct Stateless;
    impl crate::trainer::Method for Stateless {
        fn name(&self) -> String {
            "Stateless".into()
        }
        fn train_step(
            &mut self,
            _model: &mut ContinualModel,
            _opt: &mut dyn edsr_nn::Optimizer,
            _augs: &[Augmenter],
            _batch: &Matrix,
            _task_idx: usize,
            _ws: &mut edsr_nn::Workspace,
            _rng: &mut rand::rngs::StdRng,
        ) -> f32 {
            0.0
        }
    }
    let seq = toy_sequence(56);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(57));
    let cfg = tiny_cfg();
    let mut rng = seeded(58);
    let err = RunBuilder::new(&cfg)
        .checkpoint(temp_ckpt("stateless"))
        .run(&mut Stateless, &mut model, &mut &seq, &augs, &mut rng)
        .unwrap_err();
    assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
}

/// Regression for the legacy `RunOptions::with_resume` silent no-op:
/// asking to resume without naming a snapshot source must fail fast, not
/// quietly start from scratch.
#[test]
fn resume_without_snapshot_source_is_an_explicit_error() {
    let seq = toy_sequence(60);
    let augs = toy_augmenters(seq.len());
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(61));
    let mut method = Finetune::new();
    let cfg = tiny_cfg();
    let mut rng = seeded(62);
    let err = RunBuilder::new(&cfg)
        .resume()
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .unwrap_err();
    match err {
        TrainError::InvalidConfig(msg) => {
            assert!(msg.contains("resume"), "unhelpful message: {msg}")
        }
        other => panic!("expected InvalidConfig, got {other}"),
    }
}

/// `resume_from` pairs an explicit snapshot source with a (possibly
/// different) destination: resuming from run A's snapshots while writing
/// new snapshots to run B works, and B ends with its own full history.
#[test]
fn resume_from_reads_one_dir_while_checkpointing_to_another() {
    let seq = toy_sequence(63);
    let augs = toy_augmenters(seq.len());
    let cfg = tiny_cfg();
    let source = temp_ckpt("resume-from-src");
    let dest = temp_ckpt("resume-from-dst");

    // Seed the source with a 1-increment partial run.
    let mut model = ContinualModel::new(&ModelConfig::image(8), &mut seeded(64));
    let mut method = Finetune::new();
    let mut rng = seeded(65);
    RunBuilder::new(&cfg)
        .checkpoint(source.clone())
        .stop_after(1)
        .run(&mut method, &mut model, &mut &seq, &augs, &mut rng)
        .expect("partial run");

    // Resume from `source` but snapshot the continuation into `dest`.
    let mut model2 = ContinualModel::new(&ModelConfig::image(8), &mut seeded(64));
    let mut method2 = Finetune::new();
    let mut rng2 = seeded(888);
    let full = RunBuilder::new(&cfg)
        .checkpoint(dest.clone())
        .resume_from(source.clone())
        .run(&mut method2, &mut model2, &mut &seq, &augs, &mut rng2)
        .expect("cross-dir resume");
    assert_eq!(full.matrix.num_increments(), 2);
    let source_snaps = list_snapshots(&source);
    let dest_snaps = list_snapshots(&dest);
    assert_eq!(source_snaps.len(), 1, "source dir must stay untouched");
    assert!(!dest_snaps.is_empty(), "continuation was not checkpointed");
    let _ = std::fs::remove_dir_all(&source.dir);
    let _ = std::fs::remove_dir_all(&dest.dir);
}
