//! DER — Dark Experience Replay (Buzzega et al. \[60\]).
//!
//! Memory baseline: stores randomly selected old samples together with the
//! *backbone output* recorded at storage time, and replays them with an
//! MSE logit-matching term `α‖f_feat(x^m) − stored‖²`. The paper singles
//! out DER's use of backbone features (rather than representations) as the
//! reason it underuses the CSSL structure — reproduced faithfully here.

use edsr_data::{Augmenter, Dataset};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::rng::sample_indices;
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::memory::{MemoryBuffer, MemoryItem};
use crate::model::ContinualModel;
use crate::trainer::{apply_step, Method};

/// Dark Experience Replay.
pub struct Der {
    memory: MemoryBuffer,
    per_task_budget: usize,
    replay_batch: usize,
    /// Weight α of the logit-matching term.
    alpha: f32,
}

impl Der {
    /// Creates DER with the given per-increment storage budget and replay
    /// batch size.
    pub fn new(per_task_budget: usize, replay_batch: usize, alpha: f32) -> Self {
        Self {
            memory: MemoryBuffer::new(),
            per_task_budget,
            replay_batch,
            alpha,
        }
    }

    /// Stored sample count (for tests/diagnostics).
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }
}

impl Method for Der {
    fn name(&self) -> String {
        "DER".into()
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        ws.reset();
        let tape = &mut ws.tape;
        let binder = &mut ws.binder;
        let (_, _, mut loss) = model.css_on_batch(tape, binder, aug, batch, task_idx, rng);

        for group in self.memory.sample_grouped(self.replay_batch, rng) {
            // end_task always stores features; a group without them (e.g.
            // a hand-built buffer) is skipped rather than panicking
            // mid-step.
            let Some(stored) = group.stored_features.as_ref() else {
                continue;
            };
            let x = tape.leaf_copy(&group.inputs);
            let (features, _) = model
                .encoder
                .forward(tape, binder, &model.params, x, group.task);
            let target = tape.leaf_copy(stored);
            let frozen = tape.detach(target);
            let match_loss = tape.mse(features, frozen);
            let weighted = tape.scale(match_loss, self.alpha);
            loss = tape.add(loss, weighted);
        }
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        _aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let k = self.per_task_budget.min(train.len());
        if k == 0 {
            return;
        }
        let chosen = sample_indices(rng, train.len(), k);
        let inputs = train.inputs.select_rows(&chosen);
        let features = model.features(&inputs, task_idx);
        self.memory.extend((0..k).map(|r| MemoryItem {
            input: inputs.row(r).to_vec(),
            task: task_idx,
            noise_scale: 0.0,
            stored_features: Some(features.row(r).to_vec()),
        }));
    }

    // The episodic memory (inputs + stored features) is the only state.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.memory.to_bytes())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.memory = MemoryBuffer::from_bytes(state).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    #[test]
    fn stores_budget_per_task_with_features() {
        let mut rng = seeded(350);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let mut der = Der::new(5, 4, 0.5);
        let train = Dataset::new("d", Matrix::randn(20, 16, 1.0, &mut rng), vec![0; 20]);
        der.end_task(&mut model, 0, &train, &Augmenter::Identity, &mut rng);
        assert_eq!(der.memory_len(), 5);
        der.end_task(&mut model, 1, &train, &Augmenter::Identity, &mut rng);
        assert_eq!(der.memory_len(), 10);
    }

    #[test]
    fn replay_term_pulls_features_toward_stored() {
        let mut rng = seeded(351);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let mut opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let old_batch = Matrix::randn(10, 16, 1.0, &mut rng);
        let train = Dataset::new("d", old_batch.clone(), vec![0; 10]);
        let mut der = Der::new(10, 8, 5.0);
        der.end_task(&mut model, 0, &train, &Augmenter::Identity, &mut rng);
        let stored = model.features(&old_batch, 0);

        // Train on a different distribution; features of old data should
        // stay closer with DER than with plain finetuning.
        let new_batch = Matrix::randn(16, 16, 1.0, &mut rng).scale(2.0);
        let mut ft_model = ContinualModel::new(&ModelConfig::image(16), &mut seeded(351));
        let mut ft_opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let mut ft = crate::methods::finetune::Finetune::new();
        let mut rng_a = seeded(352);
        let mut rng_b = seeded(352);
        let mut ws_a = Workspace::new();
        let mut ws_b = Workspace::new();
        for _ in 0..30 {
            der.train_step(
                &mut model,
                &mut opt,
                std::slice::from_ref(&aug),
                &new_batch,
                1,
                &mut ws_a,
                &mut rng_a,
            );
            ft.train_step(
                &mut ft_model,
                &mut ft_opt,
                std::slice::from_ref(&aug),
                &new_batch,
                1,
                &mut ws_b,
                &mut rng_b,
            );
        }
        let drift_der = model.features(&old_batch, 0).max_abs_diff(&stored);
        let drift_ft = ft_model.features(&old_batch, 0).max_abs_diff(&stored);
        assert!(
            drift_der < drift_ft,
            "DER drift {drift_der} not smaller than finetune drift {drift_ft}"
        );
    }
}
