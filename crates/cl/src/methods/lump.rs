//! LUMP (Madaan et al. \[24\]).
//!
//! Memory baseline: random storage, replay by *mixup* — each new sample is
//! interpolated with a stored one (`x̄ = ω x^n + (1−ω) x^m`, ω ~ U(0,1))
//! and `L_css` is optimized on augmented views of the mixture. Requires a
//! uniform input dimensionality, which is why the paper omits LUMP from
//! the tabular stream.

use edsr_data::{Augmenter, Dataset};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::rng::{index, sample_indices, uniform};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::memory::{MemoryBuffer, MemoryItem};
use crate::model::ContinualModel;
use crate::trainer::{apply_step, Method};

/// LUMP with uniform mixup coefficients.
pub struct Lump {
    memory: MemoryBuffer,
    per_task_budget: usize,
}

impl Lump {
    /// Creates LUMP with the per-increment storage budget.
    pub fn new(per_task_budget: usize) -> Self {
        Self {
            memory: MemoryBuffer::new(),
            per_task_budget,
        }
    }

    /// Stored sample count.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Mixes each batch row with a random memory item.
    fn mix_batch(&self, batch: &Matrix, rng: &mut StdRng) -> Matrix {
        let items = self.memory.items();
        if items.is_empty() {
            return batch.clone();
        }
        let mut mixed = batch.clone();
        for r in 0..mixed.rows() {
            let m = &items[index(rng, items.len())];
            assert_eq!(
                m.input.len(),
                batch.cols(),
                "LUMP mixup requires uniform input dimensionality"
            );
            let w = uniform(rng, 0.0, 1.0);
            for (out, &mem) in mixed.row_mut(r).iter_mut().zip(&m.input) {
                *out = w * *out + (1.0 - w) * mem;
            }
        }
        mixed
    }
}

impl Method for Lump {
    fn name(&self) -> String {
        "LUMP".into()
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        let mixed = self.mix_batch(batch, rng);
        ws.reset();
        let (_, _, loss) =
            model.css_on_batch(&mut ws.tape, &mut ws.binder, aug, &mixed, task_idx, rng);
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    fn end_task(
        &mut self,
        _model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        _aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let k = self.per_task_budget.min(train.len());
        if k == 0 {
            return;
        }
        let chosen = sample_indices(rng, train.len(), k);
        self.memory.extend(chosen.into_iter().map(|i| MemoryItem {
            input: train.inputs.row(i).to_vec(),
            task: task_idx,
            noise_scale: 0.0,
            stored_features: None,
        }));
    }

    // The episodic memory is the only state.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.memory.to_bytes())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.memory = MemoryBuffer::from_bytes(state).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    #[test]
    fn mix_without_memory_is_identity() {
        let mut rng = seeded(360);
        let lump = Lump::new(4);
        let batch = Matrix::randn(3, 8, 1.0, &mut rng);
        let mixed = lump.mix_batch(&batch, &mut rng);
        assert_eq!(mixed.max_abs_diff(&batch), 0.0);
    }

    #[test]
    fn mix_interpolates_between_new_and_memory() {
        let mut rng = seeded(361);
        let mut lump = Lump::new(1);
        // One memory item: all 10s. New batch: all 0s. Mixture must be in
        // [0, 10] strictly inside for almost all draws.
        let train = Dataset::new("d", Matrix::filled(2, 4, 10.0), vec![0, 0]);
        let mut model = ContinualModel::new(&ModelConfig::image(4), &mut seeded(362));
        lump.end_task(&mut model, 0, &train, &Augmenter::Identity, &mut rng);
        let batch = Matrix::zeros(8, 4);
        let mixed = lump.mix_batch(&batch, &mut rng);
        assert!(mixed.data().iter().all(|&v| (0.0..=10.0).contains(&v)));
        assert!(
            mixed.data().iter().any(|&v| v > 0.5),
            "no interpolation happened"
        );
    }

    #[test]
    fn full_step_runs() {
        let mut rng = seeded(363);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let mut opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let mut lump = Lump::new(4);
        let train = Dataset::new("d", Matrix::randn(12, 16, 1.0, &mut rng), vec![0; 12]);
        lump.end_task(&mut model, 0, &train, &Augmenter::Identity, &mut rng);
        assert_eq!(lump.memory_len(), 4);
        let batch = Matrix::randn(8, 16, 1.0, &mut rng);
        let mut ws = Workspace::new();
        let loss = lump.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            1,
            &mut ws,
            &mut rng,
        );
        assert!(loss.is_finite());
    }
}
