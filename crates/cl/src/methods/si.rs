//! SI — Synaptic Intelligence (Zenke et al. \[54\]).
//!
//! Regularization baseline: per-parameter importances `Ω` accumulate a
//! path integral of loss sensitivity during each increment; subsequent
//! increments pay a quadratic penalty `λ Σ Ω (θ − θ*)²` for moving
//! important parameters. Adapted to the unsupervised setting by driving
//! the path integral with the `L_css` gradient (the paper notes this is
//! why SI transfers to UCL).

// Multi-array parallel indexing is clearer with explicit loops here.
#![allow(clippy::needless_range_loop)]

use edsr_data::{Augmenter, Dataset};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::model::ContinualModel;
use crate::trainer::Method;

/// Synaptic Intelligence state.
pub struct Si {
    /// Penalty strength λ.
    lambda: f32,
    /// Damping ξ in the importance normalization.
    xi: f32,
    /// Consolidated importances Ω (one matrix per parameter).
    omega: Vec<Matrix>,
    /// Path-integral accumulator for the current increment.
    omega_acc: Vec<Matrix>,
    /// Reference weights θ* (end of previous increment).
    theta_star: Vec<Matrix>,
    /// Weights at the start of the current increment.
    theta_task_start: Vec<Matrix>,
    initialized: bool,
}

impl Si {
    /// Creates SI with the given penalty strength (paper setups follow
    /// LUMP's hyper-parameters; λ≈1 works at simulation scale).
    pub fn new(lambda: f32) -> Self {
        Self {
            lambda,
            xi: 0.1,
            omega: Vec::new(),
            omega_acc: Vec::new(),
            theta_star: Vec::new(),
            theta_task_start: Vec::new(),
            initialized: false,
        }
    }

    fn ensure_init(&mut self, model: &ContinualModel) {
        if self.initialized {
            return;
        }
        let zeros: Vec<Matrix> = model
            .params
            .ids()
            .map(|id| {
                let v = model.params.value(id);
                Matrix::zeros(v.rows(), v.cols())
            })
            .collect();
        self.omega = zeros.clone();
        self.omega_acc = zeros;
        self.theta_star = model.params.snapshot();
        self.theta_task_start = model.params.snapshot();
        self.initialized = true;
    }

    /// Current consolidated importance Ω (read-only, for tests).
    pub fn omega(&self) -> &[Matrix] {
        &self.omega
    }
}

impl Method for Si {
    fn name(&self) -> String {
        "SI".into()
    }

    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        _task_idx: usize,
        _train: &Dataset,
        _rng: &mut StdRng,
    ) {
        self.ensure_init(model);
        self.theta_task_start = model.params.snapshot();
        for acc in &mut self.omega_acc {
            acc.fill_zero();
        }
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        self.ensure_init(model);
        ws.reset();
        let (_, _, loss) =
            model.css_on_batch(&mut ws.tape, &mut ws.binder, aug, batch, task_idx, rng);
        let value = ws.tape.value(loss).get(0, 0);
        if !value.is_finite() {
            // Divergent step: leave weights, moments, and the path
            // integral untouched; the guard in `run_sequence` recovers.
            return value;
        }
        let grads = ws.tape.backward(loss);
        model.params.zero_grads();
        ws.binder.accumulate_into(&grads, &mut model.params);
        ws.tape.recycle(grads);
        let all_finite = model
            .params
            .ids()
            .all(|id| model.params.grad(id).data().iter().all(|g| g.is_finite()));
        if !all_finite {
            return f32::NAN;
        }

        // Capture the unregularized gradient for the path integral.
        let g_css: Vec<Matrix> = model
            .params
            .ids()
            .map(|id| model.params.grad(id).clone())
            .collect();

        // Add the SI penalty gradient 2λ Ω (θ − θ*).
        if task_idx > 0 {
            let ids: Vec<_> = model.params.ids().collect();
            for (i, id) in ids.iter().enumerate() {
                let theta = model.params.value(*id).clone();
                let pull = theta
                    .sub(&self.theta_star[i])
                    .mul_elem(&self.omega[i])
                    .scale(2.0 * self.lambda);
                model.params.accumulate_grad(*id, &pull);
            }
        }

        let theta_before = model.params.snapshot();
        opt.step(&mut model.params);
        let theta_after = model.params.snapshot();

        // ω ← ω − g ⊙ Δθ (loss decreasing along the trajectory increases
        // importance).
        for (i, g) in g_css.iter().enumerate() {
            let delta = theta_after[i].sub(&theta_before[i]);
            let contrib = g.mul_elem(&delta).scale(-1.0);
            self.omega_acc[i].add_assign(&contrib);
        }
        value
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        _task_idx: usize,
        _train: &Dataset,
        _aug: &Augmenter,
        _rng: &mut StdRng,
    ) {
        let theta_end = model.params.snapshot();
        for i in 0..self.omega.len() {
            let drift = theta_end[i].sub(&self.theta_task_start[i]);
            let denom = drift.mul_elem(&drift).map(|v| v + self.xi);
            let update = self.omega_acc[i].zip_map(&denom, |acc, d| (acc / d).max(0.0));
            self.omega[i].add_assign(&update);
            self.omega_acc[i].fill_zero();
        }
        self.theta_star = theta_end;
    }

    // SI's state is the importance accumulators and reference weights.
    fn save_state(&self) -> Option<Vec<u8>> {
        use edsr_nn::io::{put_matrix, put_u32, put_u64};
        let mut buf = Vec::new();
        put_u32(&mut buf, self.initialized as u32);
        for group in [
            &self.omega,
            &self.omega_acc,
            &self.theta_star,
            &self.theta_task_start,
        ] {
            put_u64(&mut buf, group.len() as u64);
            for m in group {
                put_matrix(&mut buf, m);
            }
        }
        Some(buf)
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        use edsr_nn::io::ByteReader;
        let mut r = ByteReader::new(state);
        let initialized = r.u32().map_err(|e| e.to_string())? != 0;
        let mut groups: Vec<Vec<Matrix>> = Vec::with_capacity(4);
        for _ in 0..4 {
            let count = r.u64().map_err(|e| e.to_string())? as usize;
            let mut group = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                group.push(r.matrix().map_err(|e| e.to_string())?);
            }
            groups.push(group);
        }
        if !r.is_exhausted() {
            return Err("SI state has trailing bytes".into());
        }
        self.theta_task_start = groups.pop().unwrap_or_default();
        self.theta_star = groups.pop().unwrap_or_default();
        self.omega_acc = groups.pop().unwrap_or_default();
        self.omega = groups.pop().unwrap_or_default();
        self.initialized = initialized;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    fn setup(seed: u64) -> (ContinualModel, edsr_nn::Sgd, Augmenter, Matrix) {
        let mut rng = seeded(seed);
        let model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let batch = Matrix::randn(16, 16, 1.0, &mut rng);
        (model, opt, aug, batch)
    }

    #[test]
    fn importances_become_positive_after_training() {
        let (mut model, mut opt, aug, batch) = setup(340);
        let mut rng = seeded(341);
        let mut ws = Workspace::new();
        let mut si = Si::new(1.0);
        let train = Dataset::new("d", batch.clone(), vec![0; batch.rows()]);
        si.begin_task(&mut model, 0, &train, &mut rng);
        for _ in 0..20 {
            si.train_step(
                &mut model,
                &mut opt,
                std::slice::from_ref(&aug),
                &batch,
                0,
                &mut ws,
                &mut rng,
            );
        }
        si.end_task(&mut model, 0, &train, &Augmenter::Identity, &mut rng);
        let total: f32 = si.omega().iter().map(|o| o.sum()).sum();
        assert!(total > 0.0, "no importance accumulated: {total}");
    }

    #[test]
    fn penalty_restrains_parameter_drift_on_second_task() {
        let mut rng = seeded(342);
        let (mut weak_model, mut opt_w, aug, batch1) = setup(343);
        let batch2 = Matrix::randn(16, 16, 1.0, &mut rng);
        // Copy the starting point for a strong-λ run.
        let mut strong_model = ContinualModel::new(&ModelConfig::image(16), &mut seeded(343));
        let mut opt_s = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let train = Dataset::new("d", batch1.clone(), vec![0; batch1.rows()]);

        let run = |si: &mut Si, model: &mut ContinualModel, opt: &mut edsr_nn::Sgd| {
            let mut rng = seeded(344);
            let mut ws = Workspace::new();
            si.begin_task(model, 0, &train, &mut rng);
            for _ in 0..25 {
                si.train_step(
                    model,
                    opt,
                    std::slice::from_ref(&aug),
                    &batch1,
                    0,
                    &mut ws,
                    &mut rng,
                );
            }
            si.end_task(model, 0, &train, &Augmenter::Identity, &mut rng);
            let anchor = model.params.snapshot();
            si.begin_task(model, 1, &train, &mut rng);
            for _ in 0..25 {
                si.train_step(
                    model,
                    opt,
                    std::slice::from_ref(&aug),
                    &batch2,
                    1,
                    &mut ws,
                    &mut rng,
                );
            }
            si.end_task(model, 1, &train, &Augmenter::Identity, &mut rng);
            // Parameter movement during task 2.
            let moved: f32 = model
                .params
                .snapshot()
                .iter()
                .zip(&anchor)
                .map(|(a, b)| a.sub(b).frobenius_norm())
                .sum();
            moved
        };

        let mut si_weak = Si::new(0.0);
        let moved_weak = run(&mut si_weak, &mut weak_model, &mut opt_w);
        let mut si_strong = Si::new(10.0);
        let moved_strong = run(&mut si_strong, &mut strong_model, &mut opt_s);
        assert!(
            moved_strong < moved_weak,
            "strong SI moved more ({moved_strong}) than no SI ({moved_weak})"
        );
    }
}
