//! Lin et al. \[61\] — continual contrastive learning with k-means
//! storage and representation-distance preservation.
//!
//! The paper's related work describes this memory-based UCL method as:
//! *"store data based on k-means and maintain the representation
//! distances between stored and new data to prevent forgetting."* Its
//! Min-Var storage rule appears in Table V; the full method (implemented
//! here as an additional baseline beyond the paper's tables) also adds a
//! distance-preservation loss: the pairwise squared distances between
//! memory representations and new-batch representations under the current
//! model are pulled toward the same distances under the frozen previous
//! model.

use edsr_data::{Augmenter, Dataset};
use edsr_linalg::{kmeans, nearest_to_centers};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

use crate::memory::{MemoryBuffer, MemoryItem};
use crate::model::{ContinualModel, FrozenModel};
use crate::trainer::{apply_step, Method};

/// Lin et al.'s continual contrastive learner.
pub struct LinReplay {
    memory: MemoryBuffer,
    per_task_budget: usize,
    replay_batch: usize,
    /// Weight of the distance-preservation term.
    lambda: f32,
    frozen: Option<FrozenModel>,
}

impl LinReplay {
    /// Creates the method.
    pub fn new(per_task_budget: usize, replay_batch: usize, lambda: f32) -> Self {
        Self {
            memory: MemoryBuffer::new(),
            per_task_budget,
            replay_batch,
            lambda,
            frozen: None,
        }
    }

    /// Stored sample count.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }
}

/// Records the `M x B` matrix of squared Euclidean distances between the
/// rows of `a` (`M x d`) and `b` (`B x d`):
/// `D = ‖a‖²·1ᵀ + 1·‖b‖²ᵀ − 2abᵀ`.
fn pairwise_sq_dists(tape: &mut Tape, a: Var, b: Var) -> Var {
    let (m, d) = tape.value(a).shape();
    let n = tape.value(b).rows();
    let ones_d1 = tape.leaf_filled(d, 1, 1.0);
    let sq_a = tape.square(a);
    let row_sq_a = tape.matmul(sq_a, ones_d1); // M x 1
    let sq_b = tape.square(b);
    let row_sq_b = tape.matmul(sq_b, ones_d1); // B x 1
    let ones_1b = tape.leaf_filled(1, n, 1.0);
    let left = tape.matmul(row_sq_a, ones_1b); // M x B
    let ones_m1 = tape.leaf_filled(m, 1, 1.0);
    let row_sq_b_t = tape.transpose(row_sq_b); // 1 x B
    let right = tape.matmul(ones_m1, row_sq_b_t); // M x B
    let bt = tape.transpose(b);
    let cross = tape.matmul(a, bt); // M x B
    let cross2 = tape.scale(cross, -2.0);
    let s = tape.add(left, right);
    tape.add(s, cross2)
}

impl Method for LinReplay {
    fn name(&self) -> String {
        "Lin et al.".into()
    }

    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        _train: &Dataset,
        _rng: &mut StdRng,
    ) {
        if task_idx > 0 {
            self.frozen = Some(model.freeze());
        }
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        let (x1, x2) = aug.two_views(batch, rng);
        ws.reset();
        let (z1, _, mut loss) =
            model.css_on_views(&mut ws.tape, &mut ws.binder, &x1, &x2, task_idx);

        if let (Some(frozen), false) = (&self.frozen, self.memory.is_empty()) {
            if let Some(group) = self.memory.sample_merged(self.replay_batch, rng) {
                // Distances under the frozen model are the anchor; the
                // frozen forwards live on the auxiliary tape so their
                // buffers recycle with the workspace.
                let fm = frozen.represent_on(
                    &mut ws.aux_tape,
                    &mut ws.aux_binder,
                    &group.inputs,
                    group.task,
                );
                let fnew = frozen.represent_on(&mut ws.aux_tape, &mut ws.aux_binder, &x1, task_idx);
                let anchor = edsr_linalg::stats::pairwise_sq_euclidean(
                    ws.aux_tape.value(fm),
                    ws.aux_tape.value(fnew),
                );
                let tape = &mut ws.tape;
                // Distances under the current model.
                let zm = model.repr_var(tape, &mut ws.binder, &group.inputs, group.task);
                let dists = pairwise_sq_dists(tape, zm, z1);
                let target = tape.leaf(anchor);
                let frozen_target = tape.detach(target);
                let keep = tape.mse(dists, frozen_target);
                // Normalize by the anchor scale so λ is dimensionless.
                let scale = self.lambda / tape.value(frozen_target).map(|v| v * v).mean().max(1e-6);
                let keep = tape.scale(keep, scale);
                loss = tape.add(loss, keep);
            }
        }
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        _aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let k = self.per_task_budget.min(train.len());
        if k == 0 {
            return;
        }
        // k-means storage: the samples nearest the k cluster centers.
        let reps = model.represent(&train.inputs, task_idx);
        let clustering = kmeans(&reps, k, 50, rng);
        let mut chosen = nearest_to_centers(&reps, &clustering.centers);
        // Top up if center-dedup returned fewer than k.
        let mut i = 0;
        while chosen.len() < k && i < train.len() {
            if !chosen.contains(&i) {
                chosen.push(i);
            }
            i += 1;
        }
        self.memory.extend(chosen.into_iter().map(|i| MemoryItem {
            input: train.inputs.row(i).to_vec(),
            task: task_idx,
            noise_scale: 0.0,
            stored_features: None,
        }));
    }

    // The episodic memory is the only persistent state: the frozen model
    // is refreshed from the live weights in `begin_task`, which resume
    // re-runs at the increment boundary.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.memory.to_bytes())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        self.memory = MemoryBuffer::from_bytes(state).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    #[test]
    fn pairwise_distance_node_matches_reference() {
        let mut rng = seeded(380);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(3, 6, 1.0, &mut rng);
        let reference = edsr_linalg::stats::pairwise_sq_euclidean(&a, &b);
        let mut tape = Tape::new();
        let va = tape.leaf(a);
        let vb = tape.leaf(b);
        let d = pairwise_sq_dists(&mut tape, va, vb);
        assert!(tape.value(d).max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn pairwise_distance_node_is_differentiable() {
        let mut rng = seeded(381);
        let a = Matrix::randn(3, 4, 1.0, &mut rng);
        let b = Matrix::randn(2, 4, 1.0, &mut rng);
        edsr_tensor::gradcheck::check_gradients(&[a, b], 1e-2, 3e-2, |t, vars| {
            let d = pairwise_sq_dists(t, vars[0], vars[1]);
            let sq = t.square(d);
            t.mean(sq)
        });
    }

    #[test]
    fn kmeans_storage_fills_budget() {
        let mut rng = seeded(382);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let train = Dataset::new("d", Matrix::randn(30, 16, 1.0, &mut rng), vec![0; 30]);
        let mut lin = LinReplay::new(6, 4, 1.0);
        lin.end_task(&mut model, 0, &train, &Augmenter::Identity, &mut rng);
        assert_eq!(lin.memory_len(), 6);
    }

    #[test]
    fn full_two_task_cycle_runs() {
        let mut rng = seeded(383);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let mut opt = edsr_nn::Adam::new(3e-3, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let train = Dataset::new("d", Matrix::randn(24, 16, 1.0, &mut rng), vec![0; 24]);
        let mut lin = LinReplay::new(5, 4, 1.0);
        let mut ws = Workspace::new();
        lin.begin_task(&mut model, 0, &train, &mut rng);
        let batch = train.inputs.select_rows(&(0..8).collect::<Vec<_>>());
        let l0 = lin.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            0,
            &mut ws,
            &mut rng,
        );
        assert!(l0.is_finite());
        lin.end_task(&mut model, 0, &train, &aug, &mut rng);
        lin.begin_task(&mut model, 1, &train, &mut rng);
        let l1 = lin.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            1,
            &mut ws,
            &mut rng,
        );
        assert!(l1.is_finite());
    }
}
