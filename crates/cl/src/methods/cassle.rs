//! CaSSLe (Fini et al. \[33\]).
//!
//! Regularization baseline: no memory; at each new increment the previous
//! model is frozen and the current model's (projected) representations of
//! the *new* data are aligned with the frozen model's — `L_css + ½(L_dis(x_1)
//! + L_dis(x_2))` (Eq. 9 applied to both views).

use edsr_data::{Augmenter, Dataset};
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::model::{ContinualModel, FrozenModel};
use crate::trainer::{apply_step, Method};

/// CaSSLe: pure knowledge distillation from the frozen previous model.
#[derive(Default)]
pub struct Cassle {
    frozen: Option<FrozenModel>,
}

impl Cassle {
    /// Creates the method.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a frozen model is currently held (for tests).
    pub fn has_frozen(&self) -> bool {
        self.frozen.is_some()
    }
}

impl Method for Cassle {
    fn name(&self) -> String {
        "CaSSLe".into()
    }

    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        _train: &Dataset,
        _rng: &mut StdRng,
    ) {
        if task_idx > 0 {
            self.frozen = Some(model.freeze());
        }
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        let (x1, x2) = aug.two_views(batch, rng);
        ws.reset();
        let (z1, z2, mut loss) =
            model.css_on_views(&mut ws.tape, &mut ws.binder, &x1, &x2, task_idx);
        let obs_on = edsr_obs::enabled();
        if obs_on {
            edsr_obs::gauge_at(
                "loss/css",
                task_idx as u64,
                f64::from(ws.tape.value(loss).get(0, 0)),
            );
        }

        if let Some(frozen) = &self.frozen {
            // Frozen targets live on the aux tape; the main tape borrows
            // their values without cloning them out.
            let t1 = frozen.represent_on(&mut ws.aux_tape, &mut ws.aux_binder, &x1, task_idx);
            let t2 = frozen.represent_on(&mut ws.aux_tape, &mut ws.aux_binder, &x2, task_idx);
            let d1 = model.distill.distill_loss(
                &mut ws.tape,
                &mut ws.binder,
                &model.params,
                &model.ssl,
                z1,
                ws.aux_tape.value(t1),
            );
            let d2 = model.distill.distill_loss(
                &mut ws.tape,
                &mut ws.binder,
                &model.params,
                &model.ssl,
                z2,
                ws.aux_tape.value(t2),
            );
            let d = ws.tape.add(d1, d2);
            let d = ws.tape.scale(d, 0.5);
            if obs_on {
                edsr_obs::gauge_at(
                    "loss/dis",
                    task_idx as u64,
                    f64::from(ws.tape.value(d).get(0, 0)),
                );
            }
            loss = ws.tape.add(loss, d);
        }
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    // No state beyond the frozen model, which `begin_task` refreshes
    // from the (restored) live weights at every increment boundary —
    // exactly where resume re-enters the loop.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, _state: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    #[test]
    fn no_frozen_model_on_first_task() {
        let mut rng = seeded(370);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let train = Dataset::new("d", Matrix::zeros(4, 16), vec![0; 4]);
        let mut c = Cassle::new();
        c.begin_task(&mut model, 0, &train, &mut rng);
        assert!(!c.has_frozen());
        c.begin_task(&mut model, 1, &train, &mut rng);
        assert!(c.has_frozen());
    }

    /// During increment 1, the distillation term should drive the
    /// projected current representations into alignment with the frozen
    /// model (loss component → −1 for SimSiam), demonstrating knowledge
    /// transfer; the full forgetting-ordering claim is exercised by the
    /// integration tests on class-incremental streams.
    #[test]
    fn distillation_aligns_with_frozen_model() {
        let mut rng = seeded(371);
        let cfg = ModelConfig::image(16);
        let mut model = ContinualModel::new(&cfg, &mut rng);
        let mut ft_model = ContinualModel::new(&cfg, &mut seeded(371));
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let old_batch = Matrix::randn(12, 16, 1.0, &mut rng);
        let train = Dataset::new("d", old_batch.clone(), vec![0; 12]);

        let mut cassle = Cassle::new();
        let mut ft = crate::methods::finetune::Finetune::new();
        let mut opt_a = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let mut opt_b = edsr_nn::Sgd::new(0.05, 0.9, 0.0);

        // Properly learn task 0 first (identical trajectories: CaSSLe has
        // no distillation term on the first increment).
        let mut rng_a = seeded(372);
        let mut rng_b = seeded(372);
        let mut ws_a = Workspace::new();
        let mut ws_b = Workspace::new();
        cassle.begin_task(&mut model, 0, &train, &mut rng_a);
        for _ in 0..40 {
            cassle.train_step(
                &mut model,
                &mut opt_a,
                std::slice::from_ref(&aug),
                &old_batch,
                0,
                &mut ws_a,
                &mut rng_a,
            );
            ft.train_step(
                &mut ft_model,
                &mut opt_b,
                std::slice::from_ref(&aug),
                &old_batch,
                0,
                &mut ws_b,
                &mut rng_b,
            );
        }
        let anchor = model.represent(&old_batch, 0);

        let _ = (&ft, &mut ft_model, &mut opt_b, &mut rng_b, anchor);

        cassle.begin_task(&mut model, 1, &train, &mut rng_a);
        let frozen_reps_before = cassle
            .frozen
            .as_ref()
            .expect("frozen after task 1 begins")
            .represent(&old_batch, 0);
        let new_batch = Matrix::randn(16, 16, 1.0, &mut rng).scale(1.5);
        let mut losses = Vec::new();
        for _ in 0..80 {
            losses.push(cassle.train_step(
                &mut model,
                &mut opt_a,
                std::slice::from_ref(&aug),
                &new_batch,
                1,
                &mut ws_a,
                &mut rng_a,
            ));
        }
        // Total loss = L_css (≥ −1) + L_dis (≥ −1): alignment success shows
        // as a clear drop toward the −2 floor.
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(
            late < early - 0.2,
            "distillation never aligned: {early} -> {late}"
        );

        // The frozen model must not move while the live model trains.
        let frozen_reps_after = cassle.frozen.as_ref().unwrap().represent(&old_batch, 0);
        assert_eq!(frozen_reps_before.max_abs_diff(&frozen_reps_after), 0.0);
    }
}
