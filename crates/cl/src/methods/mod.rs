//! Baseline continual-learning methods from the paper's comparison
//! (Table III): Finetune, SI, DER, LUMP, CaSSLe. The Multitask upper
//! bound lives in [`crate::trainer::run_multitask`]; EDSR itself is the
//! `edsr-core` crate.

pub mod cassle;
pub mod der;
pub mod finetune;
pub mod lin_replay;
pub mod lump;
pub mod si;

pub use cassle::Cassle;
pub use der::Der;
pub use finetune::Finetune;
pub use lin_replay::LinReplay;
pub use lump::Lump;
pub use si::Si;
