//! Finetune: plain `L_css` on each increment, no forgetting prevention
//! (the paper's vanilla baseline).

use edsr_data::Augmenter;
use edsr_nn::{Optimizer, Workspace};
use edsr_tensor::Matrix;
use rand::rngs::StdRng;

use crate::model::ContinualModel;
use crate::trainer::{apply_step, Method};

/// The vanilla baseline.
#[derive(Debug, Default)]
pub struct Finetune;

impl Finetune {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }
}

impl Method for Finetune {
    fn name(&self) -> String {
        "Finetune".into()
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        ws.reset();
        let (_, _, loss) =
            model.css_on_batch(&mut ws.tape, &mut ws.binder, aug, batch, task_idx, rng);
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    // Stateless: resumable with an empty payload.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, _state: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    #[test]
    fn step_reduces_css_loss_over_time() {
        let mut rng = seeded(330);
        let mut model = ContinualModel::new(&ModelConfig::image(16), &mut rng);
        let mut opt = edsr_nn::Sgd::new(0.05, 0.9, 0.0);
        let aug = Augmenter::standard_image(GridSpec::new(4, 4, 1));
        let batch = Matrix::randn(24, 16, 1.0, &mut rng);
        let mut m = Finetune::new();
        let mut ws = Workspace::new();
        let first = m.train_step(
            &mut model,
            &mut opt,
            std::slice::from_ref(&aug),
            &batch,
            0,
            &mut ws,
            &mut rng,
        );
        let mut last = first;
        for _ in 0..60 {
            last = m.train_step(
                &mut model,
                &mut opt,
                std::slice::from_ref(&aug),
                &batch,
                0,
                &mut ws,
                &mut rng,
            );
        }
        assert!(
            last < first - 0.05,
            "SimSiam loss did not decrease: {first} -> {last}"
        );
    }
}
