//! The continual-learning driver: method trait, training configuration,
//! sequence runner, and the Multitask (joint) upper bound.

use std::time::Instant;

use edsr_data::{Augmenter, BatchIter, Dataset, TaskSequence};
use edsr_nn::{Adam, Binder, CosineSchedule, Optimizer, Sgd};
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

use crate::eval::{accuracy, knn_classify};
use crate::metrics::AccuracyMatrix;
use crate::model::ContinualModel;

/// Optimizer choice (paper: SGD for images, Adam for tabular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// SGD with momentum.
    Sgd,
    /// Adam.
    Adam,
}

/// Hyper-parameters of a continual run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs per increment.
    pub epochs_per_task: usize,
    /// Minibatch size for new data.
    pub batch_size: usize,
    /// Memory samples replayed per step (methods that replay).
    pub replay_batch: usize,
    /// Base learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Which optimizer to instantiate.
    pub optimizer: OptimizerKind,
    /// `k` for the kNN-classifier evaluation.
    pub eval_k: usize,
    /// Epoch multiplier for the Multitask upper bound: joint training on
    /// the mixed-domain union converges slower than per-increment
    /// training at simulation scale, so the upper bound gets extra passes
    /// (the paper's Multitask is trained to convergence).
    pub multitask_epoch_multiplier: usize,
    /// Cosine-decay the learning rate within each increment from `lr`
    /// down to `lr × cosine_floor` (1.0 disables the schedule; the paper
    /// trains with a per-task schedule at full scale).
    pub cosine_floor: f32,
}

impl TrainConfig {
    /// Image-benchmark defaults at simulation scale. The paper uses SGD
    /// with momentum on ResNets; at simulation scale Adam conditions the
    /// BarlowTwins objective far better (DESIGN.md §2).
    pub fn image() -> Self {
        Self {
            epochs_per_task: 60,
            batch_size: 64,
            replay_batch: 16,
            lr: 3e-3,
            momentum: 0.9,
            weight_decay: 1e-5,
            optimizer: OptimizerKind::Adam,
            eval_k: 15,
            multitask_epoch_multiplier: 4,
            cosine_floor: 1.0,
        }
    }

    /// Tabular-stream defaults (paper: Adam, §IV-A5).
    pub fn tabular() -> Self {
        Self {
            epochs_per_task: 30,
            batch_size: 64,
            replay_batch: 16,
            lr: 1e-3,
            momentum: 0.0,
            weight_decay: 1e-5,
            optimizer: OptimizerKind::Adam,
            eval_k: 15,
            multitask_epoch_multiplier: 2,
            cosine_floor: 1.0,
        }
    }

    /// Instantiates the configured optimizer.
    pub fn build_optimizer(&self) -> Box<dyn Optimizer> {
        match self.optimizer {
            OptimizerKind::Sgd => Box::new(Sgd::new(self.lr, self.momentum, self.weight_decay)),
            OptimizerKind::Adam => Box::new(Adam::new(self.lr, self.weight_decay)),
        }
    }
}

/// A continual-learning method: owns its own state (memory, frozen
/// models, regularizer accumulators) and defines the per-batch loss.
pub trait Method {
    /// Display name (matches the paper's tables).
    fn name(&self) -> String;

    /// Called before the first step of increment `task_idx`.
    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        rng: &mut StdRng,
    ) {
        let _ = (model, task_idx, train, rng);
    }

    /// Performs one optimization step on `batch` and returns the loss.
    ///
    /// `augs` holds every increment's view generator: `augs[task_idx]`
    /// augments the new data, while replay paths must augment stored
    /// samples with *their source increment's* generator (`augs[m.task]`)
    /// — tabular increments have different reference corpora and input
    /// widths.
    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        rng: &mut StdRng,
    ) -> f32;

    /// Called after the last step of increment `task_idx` (selection /
    /// snapshotting happens here). `aug` is the increment's view
    /// generator — selectors that score augmentation stability (Min-Var)
    /// need it.
    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let _ = (model, task_idx, train, aug, rng);
    }
}

/// Shared step finisher: evaluates the loss node, backpropagates, routes
/// gradients, and applies the optimizer.
pub fn apply_step(
    model: &mut ContinualModel,
    opt: &mut dyn Optimizer,
    tape: &Tape,
    binder: &Binder,
    loss: Var,
) -> f32 {
    let value = tape.value(loss).get(0, 0);
    let grads = tape.backward(loss);
    model.params.zero_grads();
    binder.accumulate_into(&grads, &mut model.params);
    opt.step(&mut model.params);
    value
}

/// Outcome of one continual run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// The full accuracy matrix `A`.
    pub matrix: AccuracyMatrix,
    /// Wall-clock seconds spent training each increment.
    pub task_seconds: Vec<f64>,
    /// Mean training loss per increment (diagnostics).
    pub task_losses: Vec<f32>,
}

impl RunResult {
    /// Final `Acc` in percent.
    pub fn final_acc_pct(&self) -> f32 {
        self.matrix.final_acc() * 100.0
    }

    /// Final `Fgt` in percent.
    pub fn final_fgt_pct(&self) -> f32 {
        self.matrix.final_fgt() * 100.0
    }

    /// Total training seconds.
    pub fn total_seconds(&self) -> f64 {
        self.task_seconds.iter().sum()
    }
}

/// Evaluates `A_{i,j}` for all `j ≤ i` with the kNN protocol: for each
/// learned task, build a classifier from that task's train-split
/// representations and classify its test split.
pub fn evaluate_row(
    model: &ContinualModel,
    seq: &TaskSequence,
    upto: usize,
    eval_k: usize,
) -> Vec<f32> {
    (0..=upto)
        .map(|j| {
            let task = &seq.tasks[j];
            let train_reps = model.represent(&task.train.inputs, j);
            let test_reps = model.represent(&task.test.inputs, j);
            let preds = knn_classify(&train_reps, &task.train.labels, &test_reps, eval_k);
            accuracy(&preds, &task.test.labels)
        })
        .collect()
}

/// Runs a method over a task sequence, evaluating after every increment.
///
/// `augmenters` supplies the per-increment view generator (images share
/// one; the tabular stream needs one per increment, referencing that
/// increment's train split).
///
/// # Panics
/// Panics if `augmenters.len() != seq.len()`.
pub fn run_sequence(
    method: &mut dyn Method,
    model: &mut ContinualModel,
    seq: &TaskSequence,
    augmenters: &[Augmenter],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> RunResult {
    assert_eq!(augmenters.len(), seq.len(), "run_sequence: one augmenter per task required");
    let mut opt = cfg.build_optimizer();
    let mut matrix = AccuracyMatrix::new();
    let mut task_seconds = Vec::with_capacity(seq.len());
    let mut task_losses = Vec::with_capacity(seq.len());

    let schedule = (cfg.cosine_floor < 1.0).then(|| {
        CosineSchedule::new(cfg.lr, cfg.lr * cfg.cosine_floor, 0, cfg.epochs_per_task.max(1))
    });

    for (task_idx, task) in seq.tasks.iter().enumerate() {
        let start = Instant::now();
        method.begin_task(model, task_idx, &task.train, rng);
        let mut loss_sum = 0.0f32;
        let mut loss_count = 0usize;
        for epoch in 0..cfg.epochs_per_task {
            if let Some(s) = &schedule {
                opt.set_lr(s.lr_at(epoch));
            }
            for batch_idx in BatchIter::new(task.train.len(), cfg.batch_size, rng) {
                let batch = task.train.inputs.select_rows(&batch_idx);
                let loss =
                    method.train_step(model, opt.as_mut(), augmenters, &batch, task_idx, rng);
                loss_sum += loss;
                loss_count += 1;
            }
        }
        method.end_task(model, task_idx, &task.train, &augmenters[task_idx], rng);
        task_seconds.push(start.elapsed().as_secs_f64());
        task_losses.push(if loss_count > 0 { loss_sum / loss_count as f32 } else { 0.0 });

        matrix.push_row(evaluate_row(model, seq, task_idx, cfg.eval_k));
    }

    RunResult {
        method: method.name(),
        benchmark: seq.name.clone(),
        matrix,
        task_seconds,
        task_losses,
    }
}

/// Result of the Multitask (joint-training) upper bound.
#[derive(Debug, Clone)]
pub struct MultitaskResult {
    /// Per-task test accuracy after joint training.
    pub per_task_acc: Vec<f32>,
    /// Mean accuracy (the paper's Multitask `Acc`).
    pub acc: f32,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl MultitaskResult {
    /// `Acc` in percent.
    pub fn acc_pct(&self) -> f32 {
        self.acc * 100.0
    }
}

/// Joint training over all increments at once (paper's Multitask row).
/// Batches are drawn per task (so heterogeneous input widths work) and
/// interleaved within each epoch.
pub fn run_multitask(
    model: &mut ContinualModel,
    seq: &TaskSequence,
    augmenters: &[Augmenter],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> MultitaskResult {
    assert_eq!(augmenters.len(), seq.len(), "run_multitask: one augmenter per task required");
    let mut opt = cfg.build_optimizer();
    let start = Instant::now();
    // The paper trains Multitask for the same epoch count as each
    // continual increment (200 epochs on CIFAR both ways). At simulation
    // scale the joint mixture needs extra passes to converge, hence the
    // multiplier (upper-bound semantics = trained to convergence).
    for _epoch in 0..cfg.epochs_per_task * cfg.multitask_epoch_multiplier.max(1) {
        // Interleave per-task batches.
        let mut iters: Vec<(usize, BatchIter)> = seq
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (i, BatchIter::new(t.train.len(), cfg.batch_size, rng)))
            .collect();
        let mut any = true;
        while any {
            any = false;
            for (task_idx, iter) in &mut iters {
                if let Some(batch_idx) = iter.next() {
                    any = true;
                    let batch = seq.tasks[*task_idx].train.inputs.select_rows(&batch_idx);
                    let mut tape = Tape::new();
                    let mut binder = Binder::new();
                    let (_, _, loss) = model.css_on_batch(
                        &mut tape,
                        &mut binder,
                        &augmenters[*task_idx],
                        &batch,
                        *task_idx,
                        rng,
                    );
                    apply_step(model, opt.as_mut(), &tape, &binder, loss);
                }
            }
        }
    }
    let per_task_acc = evaluate_row(model, seq, seq.len() - 1, cfg.eval_k);
    let acc = per_task_acc.iter().sum::<f32>() / per_task_acc.len() as f32;
    MultitaskResult { per_task_acc, acc, seconds: start.elapsed().as_secs_f64() }
}

/// Builds the per-task augmenters for an image benchmark (shared op
/// pipeline over the preset's grid).
pub fn image_augmenters(seq: &TaskSequence, grid: edsr_data::GridSpec) -> Vec<Augmenter> {
    (0..seq.len()).map(|_| Augmenter::standard_image(grid)).collect()
}

/// Builds the per-task augmenters for the tabular stream (SCARF
/// corruption referencing each increment's own train split).
pub fn tabular_augmenters(seq: &TaskSequence, corruption_prob: f32) -> Vec<Augmenter> {
    seq.tasks
        .iter()
        .map(|t| Augmenter::tabular(t.train.inputs.clone(), corruption_prob))
        .collect()
}
