//! The continual-learning driver: method trait, training configuration,
//! fault-tolerant sequence runner, and the Multitask (joint) upper bound.
//!
//! Fault tolerance (DESIGN.md §7): every step's loss passes through a
//! [`StepGuard`]; divergence rolls the model back to the last good epoch
//! boundary and backs the LR off before retrying. With a
//! [`CheckpointConfig`], the runner snapshots the full run state after
//! each increment and resume continues from the newest valid snapshot —
//! bit-identically, because the snapshot carries the exact RNG position,
//! optimizer moments, and method state.
//!
//! Observability (DESIGN.md §11): runs are launched through a single
//! [`RunBuilder`] that composes checkpointing, resume, guard tuning,
//! early stop, and a pluggable [`Observer`]. The runner also emits
//! `edsr-obs` spans (`run`/`task`/`epoch`/`step`/`select`/`eval`) and
//! per-step loss gauges; with no sink installed every emit point is a
//! single relaxed atomic load, keeping the steady-state step
//! allocation-free (proved by `tests/zero_alloc.rs`).

use std::path::Path;
use std::time::Instant;

use edsr_data::{materialize, Augmenter, BatchIter, Dataset, TaskSequence, TaskSource};
use edsr_nn::io::{
    optim_state_from_bytes, optim_state_to_bytes, params_from_bytes, params_to_bytes,
};
use edsr_nn::{Adam, Binder, CosineSchedule, Optimizer, Sgd, Workspace};
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

use crate::checkpoint::{
    latest_valid_run_state, save_run_state, save_serve_snapshot, CheckpointConfig, RunState,
    ServeSnapshot,
};
use crate::error::TrainError;
use crate::eval::{accuracy, knn_classify};
use crate::guard::{GuardConfig, StepGuard};
use crate::metrics::AccuracyMatrix;
use crate::model::ContinualModel;

/// Optimizer choice (paper: SGD for images, Adam for tabular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// SGD with momentum.
    Sgd,
    /// Adam.
    Adam,
}

/// Hyper-parameters of a continual run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Epochs per increment.
    pub epochs_per_task: usize,
    /// Minibatch size for new data.
    pub batch_size: usize,
    /// Memory samples replayed per step (methods that replay).
    pub replay_batch: usize,
    /// Base learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Which optimizer to instantiate.
    pub optimizer: OptimizerKind,
    /// `k` for the kNN-classifier evaluation.
    pub eval_k: usize,
    /// Epoch multiplier for the Multitask upper bound: joint training on
    /// the mixed-domain union converges slower than per-increment
    /// training at simulation scale, so the upper bound gets extra passes
    /// (the paper's Multitask is trained to convergence).
    pub multitask_epoch_multiplier: usize,
    /// Cosine-decay the learning rate within each increment from `lr`
    /// down to `lr × cosine_floor` (1.0 disables the schedule; the paper
    /// trains with a per-task schedule at full scale).
    pub cosine_floor: f32,
}

impl TrainConfig {
    /// Image-benchmark defaults at simulation scale. The paper uses SGD
    /// with momentum on ResNets; at simulation scale Adam conditions the
    /// BarlowTwins objective far better (DESIGN.md §2).
    pub fn image() -> Self {
        Self {
            epochs_per_task: 60,
            batch_size: 64,
            replay_batch: 16,
            lr: 3e-3,
            momentum: 0.9,
            weight_decay: 1e-5,
            optimizer: OptimizerKind::Adam,
            eval_k: 15,
            multitask_epoch_multiplier: 4,
            cosine_floor: 1.0,
        }
    }

    /// Tabular-stream defaults (paper: Adam, §IV-A5).
    pub fn tabular() -> Self {
        Self {
            epochs_per_task: 30,
            batch_size: 64,
            replay_batch: 16,
            lr: 1e-3,
            momentum: 0.0,
            weight_decay: 1e-5,
            optimizer: OptimizerKind::Adam,
            eval_k: 15,
            multitask_epoch_multiplier: 2,
            cosine_floor: 1.0,
        }
    }

    /// Instantiates the configured optimizer.
    pub fn build_optimizer(&self) -> Box<dyn Optimizer> {
        match self.optimizer {
            OptimizerKind::Sgd => Box::new(Sgd::new(self.lr, self.momentum, self.weight_decay)),
            OptimizerKind::Adam => Box::new(Adam::new(self.lr, self.weight_decay)),
        }
    }
}

/// The schedule's base learning rate for `epoch` of an increment —
/// cosine decay from `cfg.lr` down to `cfg.lr × cosine_floor` when the
/// floor is below 1.0, flat `cfg.lr` otherwise. The single source of
/// truth for both the in-process runner and the distributed parameter
/// server ([DESIGN.md §14]): any process that evaluates it for the same
/// `(cfg, epoch)` gets bit-identical rates, which the dist layer's
/// bit-identity guarantee depends on. The divergence guard's backoff
/// multiplies on top of this value.
pub fn epoch_base_lr(cfg: &TrainConfig, epoch: usize) -> f32 {
    if cfg.cosine_floor < 1.0 {
        CosineSchedule::new(
            cfg.lr,
            cfg.lr * cfg.cosine_floor,
            0,
            cfg.epochs_per_task.max(1),
        )
        .lr_at(epoch)
    } else {
        cfg.lr
    }
}

/// A continual-learning method: owns its own state (memory, frozen
/// models, regularizer accumulators) and defines the per-batch loss.
pub trait Method {
    /// Display name (matches the paper's tables).
    fn name(&self) -> String;

    /// Called before the first step of increment `task_idx`.
    fn begin_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        rng: &mut StdRng,
    ) {
        let _ = (model, task_idx, train, rng);
    }

    /// Performs one optimization step on `batch` and returns the loss.
    ///
    /// `augs` holds every increment's view generator: `augs[task_idx]`
    /// augments the new data, while replay paths must augment stored
    /// samples with *their source increment's* generator (`augs[m.task]`)
    /// — tabular increments have different reference corpora and input
    /// widths.
    ///
    /// `ws` is the reusable per-step workspace: implementations must call
    /// `ws.reset()` first, record the step on `ws.tape`/`ws.binder`
    /// (frozen-model targets on `ws.aux_tape`/`ws.aux_binder`), and finish
    /// via [`apply_step`] so every buffer returns to the scratch pools.
    ///
    /// Implementations should report their loss terms through `edsr-obs`
    /// gauges (`loss/css`, `loss/dis`, `loss/rpl`, …) behind an
    /// `edsr_obs::enabled()` gate so the step stays allocation-free when
    /// observability is off.
    #[allow(clippy::too_many_arguments)] // the step's full context, by design
    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32;

    /// Called after the last step of increment `task_idx` (selection /
    /// snapshotting happens here). `aug` is the increment's view
    /// generator — selectors that score augmentation stability (Min-Var)
    /// need it.
    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let _ = (model, task_idx, train, aug, rng);
    }

    /// Serializes the method's internal state for a run-state snapshot.
    ///
    /// `None` (the default) means "not resumable" — the runner refuses
    /// to checkpoint such a method rather than silently dropping its
    /// state. Stateless-but-resumable methods return `Some(vec![])`.
    /// Anything restored from frozen-model refreshes in `begin_task`
    /// needs no persisting: resume re-runs `begin_task`.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`save_state`](Self::save_state).
    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let _ = state;
        Err(format!(
            "{} does not support state restoration",
            self.name()
        ))
    }

    /// The replay-memory representations a serve snapshot should bundle:
    /// one row per stored sample (in the model's `repr_dim`), paired
    /// with each row's source increment.
    ///
    /// `None` (the default) means the method keeps no queryable replay
    /// memory — serve snapshots are still written, with an empty
    /// retrieval set. Memory-based methods (EDSR, …) override this.
    fn replay_representations(&self) -> Option<(Matrix, Vec<u64>)> {
        None
    }
}

/// Shared step finisher: evaluates the loss node, backpropagates, routes
/// gradients, and applies the optimizer — but only when both the loss
/// and every routed gradient are finite. A non-finite loss skips the
/// backward pass entirely; non-finite gradients are dropped before the
/// optimizer step so moment buffers can never be poisoned. Either way
/// the caller sees a non-finite return value and can trigger recovery.
///
/// When observability is on, records the global gradient L2 norm as the
/// `grad/norm` gauge just before the optimizer step.
pub fn apply_step(
    model: &mut ContinualModel,
    opt: &mut dyn Optimizer,
    tape: &mut Tape,
    binder: &Binder,
    loss: Var,
) -> f32 {
    let value = tape.value(loss).get(0, 0);
    if !value.is_finite() {
        return value;
    }
    let grads = tape.backward(loss);
    model.params.zero_grads();
    binder.accumulate_into(&grads, &mut model.params);
    tape.recycle(grads);
    let all_finite = model
        .params
        .ids()
        .all(|id| model.params.grad(id).data().iter().all(|g| g.is_finite()));
    if !all_finite {
        return f32::NAN;
    }
    if edsr_obs::enabled() {
        let sq: f64 = model
            .params
            .ids()
            .map(|id| {
                model
                    .params
                    .grad(id)
                    .data()
                    .iter()
                    .map(|&g| f64::from(g) * f64::from(g))
                    .sum::<f64>()
            })
            .sum();
        edsr_obs::gauge("grad/norm", sq.sqrt());
    }
    opt.step(&mut model.params);
    value
}

/// Outcome of one continual run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Benchmark name.
    pub benchmark: String,
    /// The full accuracy matrix `A`.
    pub matrix: AccuracyMatrix,
    /// Wall-clock seconds spent training each increment.
    pub task_seconds: Vec<f64>,
    /// Mean training loss per increment (diagnostics).
    pub task_losses: Vec<f32>,
    /// Divergence recoveries summed over increments (0 on clean runs).
    pub recoveries: usize,
}

impl RunResult {
    /// Final `Acc` in percent.
    pub fn final_acc_pct(&self) -> f32 {
        self.matrix.final_acc() * 100.0
    }

    /// Final `Fgt` in percent.
    pub fn final_fgt_pct(&self) -> f32 {
        self.matrix.final_fgt() * 100.0
    }

    /// Total training seconds.
    pub fn total_seconds(&self) -> f64 {
        self.task_seconds.iter().sum()
    }
}

/// Evaluates one accuracy-matrix cell `A_{·,j}` with the kNN protocol:
/// builds a classifier from task `j`'s train-split representations under
/// the model's *current* weights and classifies its test split. Pure in
/// the model and RNG-free, so cells can be computed in any order — or on
/// different machines — and assembled into the same row, which is how the
/// distributed runner fans evaluation out across workers. The source is
/// `&mut` only so streaming sources can rotate buffers; the data returned
/// for a given `col` is identical on every call.
pub fn evaluate_cell(
    model: &ContinualModel,
    source: &mut dyn TaskSource,
    col: usize,
    eval_k: usize,
) -> Result<f32, TrainError> {
    let task = source.fetch(col)?;
    let train_reps = model.represent(&task.train.inputs, col);
    let test_reps = model.represent(&task.test.inputs, col);
    let preds = knn_classify(&train_reps, &task.train.labels, &test_reps, eval_k);
    Ok(accuracy(&preds, &task.test.labels))
}

/// Evaluates `A_{i,j}` for all `j ≤ i` with the kNN protocol: one
/// [`evaluate_cell`] per learned task.
pub fn evaluate_row(
    model: &ContinualModel,
    source: &mut dyn TaskSource,
    upto: usize,
    eval_k: usize,
) -> Result<Vec<f32>, TrainError> {
    (0..=upto)
        .map(|j| evaluate_cell(model, source, j, eval_k))
        .collect()
}

/// Legacy cell evaluation over a concrete sequence.
#[deprecated(
    since = "0.1.0",
    note = "use evaluate_cell with any TaskSource (e.g. `&mut &seq`)"
)]
pub fn evaluate_cell_seq(
    model: &ContinualModel,
    seq: &TaskSequence,
    col: usize,
    eval_k: usize,
) -> f32 {
    evaluate_cell(model, &mut &*seq, col, eval_k).expect("col within sequence")
}

/// Legacy row evaluation over a concrete sequence.
#[deprecated(
    since = "0.1.0",
    note = "use evaluate_row with any TaskSource (e.g. `&mut &seq`)"
)]
pub fn evaluate_row_seq(
    model: &ContinualModel,
    seq: &TaskSequence,
    upto: usize,
    eval_k: usize,
) -> Vec<f32> {
    evaluate_row(model, &mut &*seq, upto, eval_k).expect("upto within sequence")
}

/// An [`Optimizer`] whose `step` is a no-op: after [`apply_step`] runs
/// with it, the routed gradients survive in `model.params` untouched by
/// any update rule. Distributed workers drive [`Method::train_step`]
/// through it to *compute* a step's gradients locally while the real
/// optimizer — and its moment buffers — live only on the parameter
/// server. Carries a learning rate so methods that read `opt.lr()`
/// inside their loss see the server's effective rate.
#[derive(Debug, Clone, Copy)]
pub struct GradCapture {
    lr: f32,
}

impl GradCapture {
    /// A capture "optimizer" reporting the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for GradCapture {
    fn step(&mut self, _params: &mut edsr_nn::ParamSet) {}

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> edsr_nn::OptimState {
        // Shaped like momentum-free SGD so the export is well-formed, but
        // a capture pass has no state worth persisting.
        edsr_nn::OptimState::Sgd {
            lr: self.lr,
            velocity: Vec::new(),
        }
    }

    fn import_state(&mut self, _state: edsr_nn::OptimState) -> Result<(), String> {
        Err("GradCapture holds no optimizer state to restore".into())
    }
}

/// Runs one method step purely for its gradients: drives
/// [`Method::train_step`] with a [`GradCapture`] in place of the real
/// optimizer, so the batch's gradients are left in `model.params`
/// (readable via `params.grad(id)`) and **no parameter update happens**.
/// Returns the step's loss.
///
/// This is the worker half of a distributed step. Bit-identity with the
/// in-process runner holds because `train_step` consumes the same RNG
/// draws and records the same tape regardless of what the optimizer
/// does with the result. A non-finite loss short-circuits inside
/// [`apply_step`] *before* gradients are written — callers must treat
/// the gradient buffers as garbage whenever the returned loss is
/// non-finite.
#[allow(clippy::too_many_arguments)] // the step's full context, mirroring Method::train_step
pub fn compute_step_grads(
    method: &mut dyn Method,
    model: &mut ContinualModel,
    augmenters: &[Augmenter],
    batch: &Matrix,
    task_idx: usize,
    lr: f32,
    ws: &mut Workspace,
    rng: &mut StdRng,
) -> f32 {
    let mut capture = GradCapture::new(lr);
    method.train_step(model, &mut capture, augmenters, batch, task_idx, ws, rng)
}

/// One training step as seen by an [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Increment index (0-based).
    pub task: usize,
    /// Epoch within the increment.
    pub epoch: usize,
    /// Step within the epoch.
    pub step: usize,
    /// The step's training loss (may be non-finite on a diverging step).
    pub loss: f32,
}

/// Pluggable run instrumentation. Every hook has a no-op default, so an
/// observer implements only what it needs; [`RunBuilder::observer`]
/// plugs it into the runner. Hooks fire on the training thread, in run
/// order, and must not panic.
///
/// Observers complement (not replace) the process-global `edsr-obs`
/// sink: the sink captures the cross-layer span/metric stream for files
/// and CI, while an observer gets structured callbacks with typed
/// payloads — progress bars, early-stop monitors, test probes.
pub trait Observer {
    /// The run is about to start (after a successful resume scan).
    /// `tasks` is the number of increments that will be trained;
    /// `start_task` is non-zero when resuming.
    fn on_run_start(&mut self, method: &str, benchmark: &str, tasks: usize, start_task: usize) {
        let _ = (method, benchmark, tasks, start_task);
    }

    /// A valid snapshot was restored; training restarts at `start_task`.
    fn on_resume(&mut self, snapshot: &Path, start_task: usize) {
        let _ = (snapshot, start_task);
    }

    /// Increment `task_idx` is about to train.
    fn on_task_start(&mut self, task_idx: usize) {
        let _ = task_idx;
    }

    /// An epoch is about to run at the given effective learning rate.
    fn on_epoch_start(&mut self, task_idx: usize, epoch: usize, lr: f32) {
        let _ = (task_idx, epoch, lr);
    }

    /// One training step finished.
    fn on_step(&mut self, record: &StepRecord) {
        let _ = record;
    }

    /// The divergence guard rolled back and retries the epoch;
    /// `lr_scale` is the backoff factor now in effect.
    fn on_recovery(&mut self, task_idx: usize, epoch: usize, bad_loss: f32, lr_scale: f32) {
        let _ = (task_idx, epoch, bad_loss, lr_scale);
    }

    /// The method's `end_task` (memory selection for replay methods)
    /// finished, taking `seconds`.
    fn on_select(&mut self, task_idx: usize, seconds: f64) {
        let _ = (task_idx, seconds);
    }

    /// The post-increment evaluation row `A_{i,j}, j ≤ i` was computed.
    fn on_eval(&mut self, task_idx: usize, row: &[f32]) {
        let _ = (task_idx, row);
    }

    /// Increment `task_idx` finished (trained, selected, evaluated).
    fn on_task_end(&mut self, task_idx: usize, seconds: f64, mean_loss: f32) {
        let _ = (task_idx, seconds, mean_loss);
    }

    /// A run-state snapshot was written to `path`.
    fn on_checkpoint(&mut self, task_idx: usize, path: &Path) {
        let _ = (task_idx, path);
    }

    /// The run completed (not called on error).
    fn on_run_end(&mut self, result: &RunResult) {
        let _ = result;
    }
}

/// The do-nothing [`Observer`] the runner uses when none is supplied.
/// Its dynamic dispatch is allocation-free, which `tests/zero_alloc.rs`
/// relies on.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Robustness knobs of the deprecated [`run_sequence_with`] entry point.
/// New code configures the same knobs on [`RunBuilder`] directly.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Snapshot the run state after every increment. Requires a method
    /// whose [`Method::save_state`] returns `Some`.
    pub checkpoint: Option<CheckpointConfig>,
    /// Scan `checkpoint` for the newest valid snapshot and continue from
    /// it (no-op when none exists or checkpointing is off).
    pub resume: bool,
    /// Divergence-guard tunables.
    pub guard: GuardConfig,
    /// Return early (with a partial result) after this many increments —
    /// an interruption hook for resume tests and budgeted sweeps.
    pub stop_after: Option<usize>,
}

impl RunOptions {
    /// Default options (no checkpointing, default guard).
    pub fn new() -> Self {
        Self {
            checkpoint: None,
            resume: false,
            guard: GuardConfig::default(),
            stop_after: None,
        }
    }

    /// Enables per-increment snapshots under `cfg`.
    pub fn with_checkpoint(mut self, cfg: CheckpointConfig) -> Self {
        self.checkpoint = Some(cfg);
        self
    }

    /// Enables resume-from-latest-valid-snapshot.
    ///
    /// Note: without a checkpoint config this silently no-ops — the
    /// legacy behaviour [`RunBuilder::resume`] fixes by failing fast.
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// Builder for a continual run: one composable entry point replacing the
/// `run_sequence`/`run_sequence_with` split. Checkpointing, resume,
/// guard tuning, early stop, and an [`Observer`] all plug in here.
///
/// ```no_run
/// # use edsr_cl::trainer::{RunBuilder, TrainConfig};
/// # fn demo(method: &mut dyn edsr_cl::Method,
/// #         model: &mut edsr_cl::ContinualModel,
/// #         source: &mut dyn edsr_data::TaskSource,
/// #         augs: &[edsr_data::Augmenter],
/// #         rng: &mut rand::rngs::StdRng) {
/// let cfg = TrainConfig::image();
/// let result = RunBuilder::new(&cfg)
///     .run(method, model, source, augs, rng)
///     .expect("run");
/// # let _ = result;
/// # }
/// ```
pub struct RunBuilder<'a> {
    cfg: &'a TrainConfig,
    checkpoint: Option<CheckpointConfig>,
    serve_snapshots: Option<CheckpointConfig>,
    quantize_serve: bool,
    resume: bool,
    resume_source: Option<CheckpointConfig>,
    guard: GuardConfig,
    stop_after: Option<usize>,
    observer: Option<&'a mut dyn Observer>,
}

impl<'a> RunBuilder<'a> {
    /// Starts a builder over the given hyper-parameters (no
    /// checkpointing, default guard, no observer).
    pub fn new(cfg: &'a TrainConfig) -> Self {
        Self {
            cfg,
            checkpoint: None,
            serve_snapshots: None,
            quantize_serve: false,
            resume: false,
            resume_source: None,
            guard: GuardConfig::default(),
            stop_after: None,
            observer: None,
        }
    }

    /// Snapshots the run state under `cfg` after every increment.
    /// Requires a method whose [`Method::save_state`] returns `Some`.
    pub fn checkpoint(mut self, cfg: CheckpointConfig) -> Self {
        self.checkpoint = Some(cfg);
        self
    }

    /// Exports a [`crate::checkpoint::ServeSnapshot`] — model
    /// architecture + weights + the method's replay-memory
    /// representations — under `cfg` after every increment, for
    /// `edsr-serve` to load read-only. Independent of
    /// [`checkpoint`](Self::checkpoint): works with any method
    /// (memory-free methods export an empty retrieval set).
    pub fn serve_snapshots(mut self, cfg: CheckpointConfig) -> Self {
        self.serve_snapshots = Some(cfg);
        self
    }

    /// With [`serve_snapshots`](Self::serve_snapshots) enabled, exports
    /// v2 quantized snapshots (`EDSRSS02`, via
    /// [`crate::checkpoint::quantize_serve_snapshot`]) instead of f32 v1
    /// files, and prints one `quant gate:` line per export with the
    /// f32-vs-int8 leave-one-out accuracy so scripts can assert the
    /// delta. No effect without a serve-snapshot location.
    pub fn quantize_serve_snapshots(mut self) -> Self {
        self.quantize_serve = true;
        self
    }

    /// Resumes from the newest valid snapshot in the
    /// [`checkpoint`](Self::checkpoint) location. [`run`](Self::run)
    /// fails with [`TrainError::InvalidConfig`] when no checkpoint
    /// source is configured — the legacy `RunOptions::with_resume`
    /// silently no-opped in that case, losing runs whose snapshot dir
    /// differed from the write dir.
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Resumes from the newest valid snapshot under an explicit
    /// `source`, which may differ from the [`checkpoint`](Self::checkpoint)
    /// write location (e.g. continue an old run into a new snapshot
    /// dir). Implies [`resume`](Self::resume).
    pub fn resume_from(mut self, source: CheckpointConfig) -> Self {
        self.resume = true;
        self.resume_source = Some(source);
        self
    }

    /// Overrides the divergence-guard tunables.
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Returns early (with a partial result) after `n` increments — an
    /// interruption hook for resume tests and budgeted sweeps.
    pub fn stop_after(mut self, n: usize) -> Self {
        self.stop_after = Some(n);
        self
    }

    /// Plugs in run instrumentation (default: [`NoopObserver`]).
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs `method` over any [`TaskSource`] — an in-RAM
    /// [`TaskSequence`] (pass `&mut seq` or `&mut &seq`) or an
    /// out-of-core `ShardStream` — evaluating after every increment.
    /// The runner's access pattern is sequential with a bounded
    /// evaluation look-back, so a streaming source never holds more
    /// than its resident window; training results are bit-identical
    /// across sources that yield the same bytes.
    ///
    /// `augmenters` supplies the per-increment view generator (images
    /// share one; the tabular stream needs one per increment,
    /// referencing that increment's train split).
    ///
    /// Fails with [`TrainError::InvalidConfig`] when `augmenters.len()
    /// != source.len()`, when checkpointing a non-resumable method, or
    /// when resume is requested without a snapshot source; fails with
    /// [`TrainError::Diverged`] when an increment exhausts the
    /// divergence guard's retry budget; fails with [`TrainError::Data`]
    /// when the source cannot yield an increment (corrupt shard, …).
    pub fn run(
        self,
        method: &mut dyn Method,
        model: &mut ContinualModel,
        source: &mut dyn TaskSource,
        augmenters: &[Augmenter],
        rng: &mut StdRng,
    ) -> Result<RunResult, TrainError> {
        let RunBuilder {
            cfg,
            checkpoint,
            serve_snapshots,
            quantize_serve,
            resume,
            resume_source,
            guard: guard_cfg,
            stop_after,
            observer,
        } = self;
        let mut noop = NoopObserver;
        let observer: &mut dyn Observer = match observer {
            Some(o) => o,
            None => &mut noop,
        };

        let benchmark = source.name().to_string();
        if augmenters.len() != source.len() {
            return Err(TrainError::InvalidConfig(format!(
                "run: {} augmenters for {} tasks (one per task required)",
                augmenters.len(),
                source.len()
            )));
        }
        if checkpoint.is_some() && method.save_state().is_none() {
            return Err(TrainError::InvalidConfig(format!(
                "{} does not implement save_state/load_state; run-state checkpoints \
                 would silently drop its internal state",
                method.name()
            )));
        }
        if resume && resume_source.is_none() && checkpoint.is_none() {
            return Err(TrainError::InvalidConfig(
                "resume requested without a snapshot source: pair .resume() with \
                 .checkpoint(cfg), or point .resume_from(cfg) at the snapshot dir"
                    .into(),
            ));
        }

        let mut opt = cfg.build_optimizer();
        let mut matrix = AccuracyMatrix::new();
        let mut task_seconds = Vec::with_capacity(source.len());
        let mut task_losses = Vec::with_capacity(source.len());
        let mut recoveries = 0usize;
        let mut start_task = 0usize;
        let mut resumed_lr_scale = 1.0f32;

        if resume {
            let resume_src = resume_source
                .as_ref()
                .or(checkpoint.as_ref())
                .expect("validated above");
            if let Some((path, state)) = latest_valid_run_state(resume_src) {
                restore_from_state(method, model, opt.as_mut(), rng, &benchmark, &state)?;
                for row in &state.matrix_rows {
                    matrix.push_row(row.clone());
                }
                task_seconds = state.task_seconds;
                task_losses = state.task_losses;
                start_task = state.completed_tasks;
                resumed_lr_scale = state.lr_scale;
                observer.on_resume(&path, start_task);
            }
        }

        let mut guard = StepGuard::new(guard_cfg, &model.params);
        guard.set_lr_scale(resumed_lr_scale);
        let until = stop_after.map_or(source.len(), |n| n.min(source.len()));
        observer.on_run_start(&method.name(), &benchmark, until, start_task);
        let _run_span = edsr_obs::span!("run");
        // One workspace for the whole run: after the first step its scratch
        // pools are warm and steady-state steps stop allocating.
        let mut ws = Workspace::new();

        for task_idx in start_task..until {
            let task = source.fetch(task_idx)?;
            let _task_span = edsr_obs::span!("task", task_idx);
            observer.on_task_start(task_idx);
            let start = Instant::now();
            method.begin_task(model, task_idx, &task.train, rng);
            guard.begin_task(&model.params);
            let mut loss_sum = 0.0f32;
            let mut loss_count = 0usize;
            let mut epoch = 0usize;
            while epoch < cfg.epochs_per_task {
                let lr = epoch_base_lr(cfg, epoch) * guard.lr_scale();
                opt.set_lr(lr);
                observer.on_epoch_start(task_idx, epoch, lr);
                let _epoch_span = edsr_obs::span!("epoch", epoch);
                if edsr_obs::enabled() {
                    edsr_obs::gauge_at("train/lr", task_idx as u64, f64::from(lr));
                }
                // Accumulate this epoch's losses separately: a diverged epoch
                // is retried, and its partial sums must not pollute the task
                // mean (acceptance: task_losses stay finite through faults).
                let mut epoch_sum = 0.0f32;
                let mut epoch_count = 0usize;
                let mut diverged_loss = None;
                for (step, batch_idx) in
                    BatchIter::new(task.train.len(), cfg.batch_size, rng).enumerate()
                {
                    let batch = task.train.inputs.select_rows(&batch_idx);
                    let loss = {
                        let _step_span = edsr_obs::span!("step", step);
                        method.train_step(
                            model,
                            opt.as_mut(),
                            augmenters,
                            &batch,
                            task_idx,
                            &mut ws,
                            rng,
                        )
                    };
                    if edsr_obs::enabled() {
                        edsr_obs::gauge_at("train/loss", task_idx as u64, f64::from(loss));
                    }
                    observer.on_step(&StepRecord {
                        task: task_idx,
                        epoch,
                        step,
                        loss,
                    });
                    if guard.is_divergent(loss) {
                        diverged_loss = Some(loss);
                        break;
                    }
                    guard.observe(loss);
                    epoch_sum += loss;
                    epoch_count += 1;
                }
                if let Some(bad) = diverged_loss {
                    guard.recover(
                        &mut model.params,
                        opt.as_mut(),
                        &method.name(),
                        task_idx,
                        epoch,
                        bad,
                    )?;
                    recoveries += 1;
                    edsr_obs::counter_at("train/recovery", task_idx as u64, 1);
                    observer.on_recovery(task_idx, epoch, bad, guard.lr_scale());
                    continue; // retry this epoch from the rolled-back weights
                }
                loss_sum += epoch_sum;
                loss_count += epoch_count;
                guard.commit(&model.params);
                epoch += 1;
            }
            let select_start = Instant::now();
            {
                let _select_span = edsr_obs::span!("select", task_idx);
                method.end_task(model, task_idx, &task.train, &augmenters[task_idx], rng);
            }
            observer.on_select(task_idx, select_start.elapsed().as_secs_f64());
            let seconds = start.elapsed().as_secs_f64();
            task_seconds.push(seconds);
            let mean_loss = if loss_count > 0 {
                loss_sum / loss_count as f32
            } else {
                0.0
            };
            task_losses.push(mean_loss);

            let row = {
                let _eval_span = edsr_obs::span!("eval", task_idx);
                evaluate_row(model, source, task_idx, cfg.eval_k)?
            };
            if edsr_obs::enabled() {
                let mean = row.iter().sum::<f32>() / row.len().max(1) as f32;
                edsr_obs::gauge_at("eval/mean_acc", task_idx as u64, f64::from(mean));
            }
            observer.on_eval(task_idx, &row);
            matrix.push_row(row);
            if edsr_obs::enabled() {
                ws.emit_metrics(task_idx as u64);
            }
            observer.on_task_end(task_idx, seconds, mean_loss);

            if let Some(ckpt) = &checkpoint {
                let method_state = method.save_state().ok_or_else(|| TrainError::MethodState {
                    method: method.name(),
                    reason: "save_state returned None mid-run".into(),
                })?;
                let state = RunState {
                    completed_tasks: task_idx + 1,
                    method: method.name(),
                    benchmark: benchmark.clone(),
                    matrix_rows: matrix.rows().to_vec(),
                    task_seconds: task_seconds.clone(),
                    task_losses: task_losses.clone(),
                    params_payload: params_to_bytes(&model.params),
                    optim_payload: optim_state_to_bytes(&opt.export_state()),
                    rng_state: rng.state(),
                    method_state,
                    lr_scale: guard.lr_scale(),
                };
                let path = save_run_state(ckpt, &state)?;
                observer.on_checkpoint(task_idx, &path);
            }

            if let Some(serve_cfg) = &serve_snapshots {
                let (reprs, repr_tasks) = method
                    .replay_representations()
                    .unwrap_or_else(|| (Matrix::zeros(0, model.repr_dim()), Vec::new()));
                let snap = ServeSnapshot::capture(
                    model,
                    reprs,
                    repr_tasks,
                    benchmark.clone(),
                    task_idx + 1,
                )?;
                let path = if quantize_serve {
                    let qsnap = crate::checkpoint::quantize_serve_snapshot(&snap)?;
                    println!("quant gate: {}", qsnap.gate);
                    crate::checkpoint::save_quant_serve_snapshot(serve_cfg, &qsnap)?
                } else {
                    save_serve_snapshot(serve_cfg, &snap)?
                };
                observer.on_checkpoint(task_idx, &path);
            }
        }

        let result = RunResult {
            method: method.name(),
            benchmark,
            matrix,
            task_seconds,
            task_losses,
            recoveries,
        };
        observer.on_run_end(&result);
        Ok(result)
    }

    /// Legacy entry point over a concrete `&TaskSequence`.
    #[deprecated(
        since = "0.1.0",
        note = "use run(...) with any TaskSource (e.g. `&mut seq` or `&mut &seq`)"
    )]
    pub fn run_seq(
        self,
        method: &mut dyn Method,
        model: &mut ContinualModel,
        seq: &TaskSequence,
        augmenters: &[Augmenter],
        rng: &mut StdRng,
    ) -> Result<RunResult, TrainError> {
        self.run(method, model, &mut &*seq, augmenters, rng)
    }
}

/// Runs a method over a task sequence with default options.
#[deprecated(since = "0.1.0", note = "use RunBuilder::new(cfg).run(...)")]
pub fn run_sequence(
    method: &mut dyn Method,
    model: &mut ContinualModel,
    seq: &TaskSequence,
    augmenters: &[Augmenter],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> Result<RunResult, TrainError> {
    RunBuilder::new(cfg).run(method, model, &mut &*seq, augmenters, rng)
}

/// Runs a method with explicit [`RunOptions`]. Preserves the legacy
/// quirk that `resume` without `checkpoint` silently no-ops (the
/// builder's [`RunBuilder::resume`] fails fast instead).
#[deprecated(
    since = "0.1.0",
    note = "use RunBuilder::new(cfg).checkpoint(..).resume().guard(..).stop_after(..).run(...)"
)]
#[allow(clippy::too_many_arguments)] // mirrors run_sequence + options
pub fn run_sequence_with(
    method: &mut dyn Method,
    model: &mut ContinualModel,
    seq: &TaskSequence,
    augmenters: &[Augmenter],
    cfg: &TrainConfig,
    rng: &mut StdRng,
    opts: &RunOptions,
) -> Result<RunResult, TrainError> {
    let mut builder = RunBuilder::new(cfg).guard(opts.guard.clone());
    if let Some(ckpt) = &opts.checkpoint {
        builder = builder.checkpoint(ckpt.clone());
        if opts.resume {
            builder = builder.resume();
        }
    }
    if let Some(n) = opts.stop_after {
        builder = builder.stop_after(n);
    }
    builder.run(method, model, &mut &*seq, augmenters, rng)
}

/// Applies a loaded run state to the live objects, validating that it
/// belongs to this method/benchmark pair.
fn restore_from_state(
    method: &mut dyn Method,
    model: &mut ContinualModel,
    opt: &mut dyn Optimizer,
    rng: &mut StdRng,
    benchmark: &str,
    state: &RunState,
) -> Result<(), TrainError> {
    if state.method != method.name() || state.benchmark != benchmark {
        return Err(TrainError::InvalidConfig(format!(
            "snapshot belongs to {}/{} but the run is {}/{}",
            state.method,
            state.benchmark,
            method.name(),
            benchmark
        )));
    }
    params_from_bytes(&mut model.params, &state.params_payload)?;
    let optim_state = optim_state_from_bytes(&state.optim_payload)?;
    opt.import_state(optim_state)
        .map_err(TrainError::InvalidConfig)?;
    method
        .load_state(&state.method_state)
        .map_err(|reason| TrainError::MethodState {
            method: method.name(),
            reason,
        })?;
    *rng = StdRng::from_state(state.rng_state);
    Ok(())
}

/// Result of the Multitask (joint-training) upper bound.
#[derive(Debug, Clone)]
pub struct MultitaskResult {
    /// Per-task test accuracy after joint training.
    pub per_task_acc: Vec<f32>,
    /// Mean accuracy (the paper's Multitask `Acc`).
    pub acc: f32,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl MultitaskResult {
    /// `Acc` in percent.
    pub fn acc_pct(&self) -> f32 {
        self.acc * 100.0
    }
}

/// Joint training over all increments at once (paper's Multitask row).
/// Batches are drawn per task (so heterogeneous input widths work) and
/// interleaved within each epoch. Runs under the same divergence guard
/// as [`RunBuilder::run`] (epoch-granular rollback, bounded LR backoff).
///
/// Joint epochs interleave batches across *all* increments, so a
/// streaming source is materialized up front — the upper bound is the
/// one consumer that genuinely needs the whole stream in RAM.
pub fn run_multitask(
    model: &mut ContinualModel,
    source: &mut dyn TaskSource,
    augmenters: &[Augmenter],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> Result<MultitaskResult, TrainError> {
    if augmenters.len() != source.len() {
        return Err(TrainError::InvalidConfig(format!(
            "run_multitask: {} augmenters for {} tasks (one per task required)",
            augmenters.len(),
            source.len()
        )));
    }
    let seq = materialize(source)?;
    let seq = &seq;
    let mut opt = cfg.build_optimizer();
    let mut guard = StepGuard::new(GuardConfig::default(), &model.params);
    guard.begin_task(&model.params);
    let start = Instant::now();
    let _run_span = edsr_obs::span!("multitask");
    // The paper trains Multitask for the same epoch count as each
    // continual increment (200 epochs on CIFAR both ways). At simulation
    // scale the joint mixture needs extra passes to converge, hence the
    // multiplier (upper-bound semantics = trained to convergence).
    let total_epochs = cfg.epochs_per_task * cfg.multitask_epoch_multiplier.max(1);
    let mut ws = Workspace::new();
    let mut epoch = 0usize;
    while epoch < total_epochs {
        opt.set_lr(cfg.lr * guard.lr_scale());
        let _epoch_span = edsr_obs::span!("epoch", epoch);
        // Interleave per-task batches.
        let mut iters: Vec<(usize, BatchIter)> = seq
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (i, BatchIter::new(t.train.len(), cfg.batch_size, rng)))
            .collect();
        let mut diverged_loss = None;
        let mut any = true;
        'steps: while any {
            any = false;
            for (task_idx, iter) in &mut iters {
                if let Some(batch_idx) = iter.next() {
                    any = true;
                    let batch = seq.tasks[*task_idx].train.inputs.select_rows(&batch_idx);
                    ws.reset();
                    let (_, _, loss) = model.css_on_batch(
                        &mut ws.tape,
                        &mut ws.binder,
                        &augmenters[*task_idx],
                        &batch,
                        *task_idx,
                        rng,
                    );
                    let value = apply_step(model, opt.as_mut(), &mut ws.tape, &ws.binder, loss);
                    if edsr_obs::enabled() {
                        edsr_obs::gauge_at("train/loss", *task_idx as u64, f64::from(value));
                    }
                    if guard.is_divergent(value) {
                        diverged_loss = Some(value);
                        break 'steps;
                    }
                    guard.observe(value);
                }
            }
        }
        if let Some(bad) = diverged_loss {
            guard.recover(&mut model.params, opt.as_mut(), "Multitask", 0, epoch, bad)?;
            continue;
        }
        guard.commit(&model.params);
        epoch += 1;
    }
    let per_task_acc = evaluate_row(model, &mut &*seq, seq.len() - 1, cfg.eval_k)?;
    let acc = per_task_acc.iter().sum::<f32>() / per_task_acc.len() as f32;
    Ok(MultitaskResult {
        per_task_acc,
        acc,
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Legacy joint-training entry point over a concrete sequence.
#[deprecated(
    since = "0.1.0",
    note = "use run_multitask with any TaskSource (e.g. `&mut &seq`)"
)]
pub fn run_multitask_seq(
    model: &mut ContinualModel,
    seq: &TaskSequence,
    augmenters: &[Augmenter],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> Result<MultitaskResult, TrainError> {
    run_multitask(model, &mut &*seq, augmenters, cfg, rng)
}

/// Builds the per-task augmenters for an image benchmark (shared op
/// pipeline over the preset's grid). Only the source's length is read,
/// so any `TaskSource` works without fetching — `&seq` coerces.
pub fn image_augmenters(source: &dyn TaskSource, grid: edsr_data::GridSpec) -> Vec<Augmenter> {
    (0..source.len())
        .map(|_| Augmenter::standard_image(grid))
        .collect()
}

/// Builds the per-task augmenters for the tabular stream (SCARF
/// corruption referencing each increment's own train split). Fetches
/// every increment once, in order — a streaming source pays one
/// sequential pass.
pub fn tabular_augmenters(
    source: &mut dyn TaskSource,
    corruption_prob: f32,
) -> Result<Vec<Augmenter>, TrainError> {
    (0..source.len())
        .map(|i| {
            let task = source.fetch(i)?;
            Ok(Augmenter::tabular(
                task.train.inputs.clone(),
                corruption_prob,
            ))
        })
        .collect()
}

/// Legacy tabular-augmenter builder over a concrete sequence.
#[deprecated(
    since = "0.1.0",
    note = "use tabular_augmenters with any TaskSource (e.g. `&mut &seq`)"
)]
pub fn tabular_augmenters_seq(seq: &TaskSequence, corruption_prob: f32) -> Vec<Augmenter> {
    tabular_augmenters(&mut &*seq, corruption_prob).expect("in-RAM sequence cannot fail")
}
