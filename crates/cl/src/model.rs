//! The continual model: encoder + SSL head + distillation head sharing one
//! [`ParamSet`], with snapshotting for the frozen old model `f̃`.

use crate::error::TrainError;
use edsr_data::Augmenter;
use edsr_nn::ConvShape;
use edsr_nn::{Binder, ParamSet};
use edsr_ssl::{DistillHead, Encoder, EncoderConfig, SslHead, SslVariant, StemConfig};
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

/// Architecture + objective configuration.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Input dimensionality per adapter (one entry = shared adapter).
    pub input_dims: Vec<usize>,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Representation dimensionality `d`.
    pub repr_dim: usize,
    /// Hidden backbone layers beyond the adapter.
    pub backbone_layers: usize,
    /// Which `L_css` to optimize.
    pub variant: SslVariant,
    /// Optional convolutional stem `(shape, kernel, filters)` — the
    /// paper's CNN-backbone analogue (architecture ablation).
    pub conv_stem: Option<(ConvShape, usize, usize)>,
}

impl ModelConfig {
    /// Default image configuration at simulation scale.
    pub fn image(input_dim: usize) -> Self {
        Self {
            input_dims: vec![input_dim],
            hidden_dim: 96,
            repr_dim: 48,
            backbone_layers: 1,
            variant: SslVariant::BarlowTwins { lambda: 0.02 },
            conv_stem: None,
        }
    }

    /// Image configuration with a convolutional stem (`kernel`=3,
    /// `filters` chosen for the grid).
    pub fn conv_image(shape: ConvShape, filters: usize) -> Self {
        Self {
            input_dims: vec![shape.dim()],
            hidden_dim: 96,
            repr_dim: 48,
            backbone_layers: 1,
            variant: SslVariant::BarlowTwins { lambda: 0.02 },
            conv_stem: Some((shape, 3, filters)),
        }
    }

    /// Default tabular configuration (paper: deeper MLP, 128-d reps —
    /// scaled).
    pub fn tabular(input_dims: Vec<usize>) -> Self {
        Self {
            input_dims,
            hidden_dim: 64,
            repr_dim: 32,
            backbone_layers: 2,
            variant: SslVariant::SimSiam,
            conv_stem: None,
        }
    }

    /// Switches the SSL objective (Table VI).
    pub fn with_variant(mut self, variant: SslVariant) -> Self {
        self.variant = variant;
        self
    }
}

/// A frozen copy of the model before learning the current increment.
#[derive(Clone)]
pub struct FrozenModel {
    encoder: Encoder,
    params: ParamSet,
}

impl FrozenModel {
    /// Records a frozen-model representation forward on a caller-provided
    /// auxiliary tape, returning the repr node. The value stays pool-backed
    /// on that tape — borrow it via `tape.value(var)` instead of cloning —
    /// which is what keeps the distillation/replay targets allocation-free.
    pub fn represent_on(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        x: &Matrix,
        task: usize,
    ) -> Var {
        self.encoder
            .represent_on(tape, binder, &self.params, x, task)
    }

    /// Representations under the old parameters.
    pub fn represent(&self, x: &Matrix, task: usize) -> Matrix {
        self.encoder.represent(&self.params, x, task)
    }

    /// Backbone features under the old parameters (DER's medium).
    pub fn features(&self, x: &Matrix, task: usize) -> Matrix {
        self.encoder.features(&self.params, x, task)
    }
}

/// Live model `f(·)` plus its loss heads.
pub struct ContinualModel {
    /// All trainable parameters (encoder + predictor + `p_dis`).
    pub params: ParamSet,
    /// The encoder `f(·)`.
    pub encoder: Encoder,
    /// The `L_css` head.
    pub ssl: SslHead,
    /// The distillation head `p_dis`.
    pub distill: DistillHead,
    /// The configuration this model was built from — kept so snapshots
    /// (serve exports, see `checkpoint::ServeSnapshot`) are
    /// self-describing and can rebuild a structurally identical model.
    config: ModelConfig,
}

impl ContinualModel {
    /// Builds the model.
    pub fn new(cfg: &ModelConfig, rng: &mut StdRng) -> Self {
        let mut params = ParamSet::new();
        let stem = match cfg.conv_stem {
            Some((shape, kernel, filters)) => StemConfig::Conv {
                shape,
                kernel,
                filters,
            },
            None => StemConfig::PerTaskLinear,
        };
        let enc_cfg = EncoderConfig {
            input_dims: cfg.input_dims.clone(),
            hidden_dim: cfg.hidden_dim,
            backbone_layers: cfg.backbone_layers,
            repr_dim: cfg.repr_dim,
            stem,
        };
        let encoder = Encoder::new(&mut params, &enc_cfg, rng);
        let ssl = SslHead::new(&mut params, cfg.variant, cfg.repr_dim, rng);
        let distill = DistillHead::new(&mut params, cfg.repr_dim, rng);
        Self {
            params,
            encoder,
            ssl,
            distill,
            config: cfg.clone(),
        }
    }

    /// The architecture/objective configuration the model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Representation dimensionality.
    pub fn repr_dim(&self) -> usize {
        self.encoder.repr_dim()
    }

    /// Inference representations with the live parameters.
    pub fn represent(&self, x: &Matrix, task: usize) -> Matrix {
        self.encoder.represent(&self.params, x, task)
    }

    /// Eval-mode inference representations: batch standardization is
    /// skipped, so each row is independent of its batch-mates. This is
    /// the forward `edsr-serve` answers embed requests with.
    pub fn represent_eval(&self, x: &Matrix, task: usize) -> Matrix {
        self.encoder.represent_eval(&self.params, x, task)
    }

    /// Inference backbone features with the live parameters.
    pub fn features(&self, x: &Matrix, task: usize) -> Matrix {
        self.encoder.features(&self.params, x, task)
    }

    /// Deep-copies the current weights into a frozen `f̃`.
    pub fn freeze(&self) -> FrozenModel {
        FrozenModel {
            encoder: self.encoder.clone(),
            params: self.params.clone(),
        }
    }

    /// Saves the model's weights to a checkpoint file.
    ///
    /// Errors surface as the crate's structured [`TrainError`] rather
    /// than leaking `edsr_nn::CheckpointError` at this API boundary; the
    /// retained `From<CheckpointError> for TrainError` impl (and
    /// `edsr_core::Error`'s `From<TrainError>`) keep existing `?` call
    /// sites compiling unchanged.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), TrainError> {
        edsr_nn::save_params(&self.params, path).map_err(TrainError::from)
    }

    /// Restores weights from a checkpoint written by [`save`](Self::save)
    /// on a structurally identical model.
    pub fn load(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), TrainError> {
        edsr_nn::load_params(&mut self.params, path).map_err(TrainError::from)
    }

    /// Records `L_css` on two augmented views of `batch`; returns
    /// `(z1, z2, loss)` so callers can attach additional terms.
    pub fn css_on_views(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        x1: &Matrix,
        x2: &Matrix,
        task: usize,
    ) -> (Var, Var, Var) {
        let v1 = tape.leaf_copy(x1);
        let v2 = tape.leaf_copy(x2);
        let (_, z1) = self.encoder.forward(tape, binder, &self.params, v1, task);
        let (_, z2) = self.encoder.forward(tape, binder, &self.params, v2, task);
        let loss = self.ssl.loss(tape, binder, &self.params, z1, z2);
        (z1, z2, loss)
    }

    /// Convenience: augments `batch` into two views and records `L_css`.
    pub fn css_on_batch(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        aug: &Augmenter,
        batch: &Matrix,
        task: usize,
        rng: &mut StdRng,
    ) -> (Var, Var, Var) {
        let (x1, x2) = aug.two_views(batch, rng);
        self.css_on_views(tape, binder, &x1, &x2, task)
    }

    /// Records the current model's representation of a raw (already
    /// augmented) view — used by distillation paths.
    pub fn repr_var(&self, tape: &mut Tape, binder: &mut Binder, x: &Matrix, task: usize) -> Var {
        let v = tape.leaf_copy(x);
        let (_, z) = self.encoder.forward(tape, binder, &self.params, v, task);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_data::GridSpec;
    use edsr_tensor::rng::seeded;

    fn model(seed: u64) -> ContinualModel {
        let mut rng = seeded(seed);
        ContinualModel::new(&ModelConfig::image(16), &mut rng)
    }

    #[test]
    fn construction_and_shapes() {
        let m = model(300);
        assert_eq!(m.repr_dim(), 48);
        let mut rng = seeded(301);
        let x = Matrix::randn(4, 16, 1.0, &mut rng);
        assert_eq!(m.represent(&x, 0).shape(), (4, 48));
        assert_eq!(m.features(&x, 0).shape(), (4, 96));
    }

    #[test]
    fn freeze_is_independent_of_live_updates() {
        let mut m = model(302);
        let mut rng = seeded(303);
        let x = Matrix::randn(3, 16, 1.0, &mut rng);
        let frozen = m.freeze();
        let before = frozen.represent(&x, 0);
        for id in m.params.ids().collect::<Vec<_>>() {
            m.params.value_mut(id).scale_inplace(1.7);
        }
        let after_frozen = frozen.represent(&x, 0);
        assert_eq!(
            before.max_abs_diff(&after_frozen),
            0.0,
            "frozen model drifted"
        );
        assert!(
            m.represent(&x, 0).max_abs_diff(&before) > 1e-4,
            "live model did not change"
        );
    }

    #[test]
    fn css_on_batch_is_differentiable() {
        let m = model(304);
        let mut rng = seeded(305);
        let grid = GridSpec::new(4, 4, 1);
        let aug = Augmenter::standard_image(grid);
        let batch = Matrix::randn(6, 16, 1.0, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let (_, _, loss) = m.css_on_batch(&mut tape, &mut binder, &aug, &batch, 0, &mut rng);
        assert!(tape.value(loss).get(0, 0).is_finite());
        let grads = tape.backward(loss);
        let mut ps = m.params.clone();
        ps.zero_grads();
        binder.accumulate_into(&grads, &mut ps);
        let got: f32 = ps.ids().map(|id| ps.grad(id).frobenius_norm()).sum();
        assert!(got > 0.0, "no gradient from css_on_batch");
    }

    #[test]
    fn model_save_load_roundtrip() {
        let mut m = model(307);
        let mut rng = seeded(308);
        let x = Matrix::randn(3, 16, 1.0, &mut rng);
        let reference = m.represent(&x, 0);
        let mut path = std::env::temp_dir();
        path.push(format!("edsr-model-{}.ckpt", std::process::id()));
        m.save(&path).expect("save");
        for id in m.params.ids().collect::<Vec<_>>() {
            m.params.value_mut(id).scale_inplace(0.1);
        }
        assert!(m.represent(&x, 0).max_abs_diff(&reference) > 1e-4);
        m.load(&path).expect("load");
        assert_eq!(m.represent(&x, 0).max_abs_diff(&reference), 0.0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_load_surface_structured_train_errors() {
        // Loading into a structurally different model must fail with the
        // crate's TrainError (wrapping the checkpoint cause), not leak
        // edsr_nn::CheckpointError at the API boundary.
        let m = model(330);
        let mut path = std::env::temp_dir();
        path.push(format!("edsr-model-err-{}.ckpt", std::process::id()));
        m.save(&path).expect("save");
        let mut rng = seeded(331);
        let mut other = ContinualModel::new(
            &ModelConfig::image(16).with_variant(SslVariant::SimSiam),
            &mut rng,
        );
        let err = other.load(&path).unwrap_err();
        assert!(matches!(err, TrainError::Checkpoint(_)), "{err}");
        assert!(std::error::Error::source(&err).is_some());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn model_remembers_its_config() {
        let m = model(332);
        assert_eq!(m.config().input_dims, vec![16]);
        assert_eq!(m.config().repr_dim, 48);
    }

    #[test]
    fn conv_model_trains_and_represents() {
        let mut rng = seeded(309);
        let shape = edsr_nn::ConvShape {
            channels: 1,
            height: 4,
            width: 4,
        };
        let m = ContinualModel::new(&ModelConfig::conv_image(shape, 3), &mut rng);
        let x = Matrix::randn(4, 16, 1.0, &mut rng);
        assert_eq!(m.represent(&x, 0).shape(), (4, 48));
    }

    #[test]
    fn tabular_config_builds_heterogeneous_model() {
        let mut rng = seeded(306);
        let m = ContinualModel::new(&ModelConfig::tabular(vec![16, 17, 14, 20, 10]), &mut rng);
        let x = Matrix::randn(2, 20, 1.0, &mut rng);
        assert_eq!(m.represent(&x, 3).shape(), (2, 32));
    }
}
