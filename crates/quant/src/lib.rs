//! Int8 quantized inference for the serve path (DESIGN.md §17).
//!
//! The serve-time operations — eval-mode encoder forward and kNN over the
//! replay-memory representations — are pure inference and do not need f32
//! weights. This crate converts a trained encoder into per-layer symmetric
//! int8 weights (per-output-channel scales for the final projector layer),
//! quantizes the memory grid with one per-tensor scale calibrated over the
//! snapshot's own representations, and runs both through the exact-`i32`
//! int8 reduction kernels in `edsr_tensor::simd`.
//!
//! ## Scheme
//!
//! - **Weights**: static symmetric, zero-point 0. One f32 scale per layer
//!   (`max_abs / 127`); the final layer gets one scale per output channel.
//!   Weights are stored transposed (one row per output channel) so each
//!   output is a single contiguous [`edsr_tensor::simd::i8_dot`].
//! - **Activations**: dynamic symmetric per *row* — each request row is
//!   quantized with its own `max_abs / 127` scale at inference time. Row
//!   independence is what keeps batched responses bit-identical to
//!   single-request responses, the same contract the f32 eval path holds.
//! - **Memory grid**: one per-tensor scale; queries are quantized onto the
//!   grid's scale so distances live on one integer lattice.
//!
//! ## Determinism contract
//!
//! Every reduction accumulates in `i32`, which is exact for int8 operands
//! at the dimensionalities this workspace uses (≤ 130 000 elements), and
//! integer addition is associative — so the quantized path is bit-identical
//! across ISA levels and thread counts *by construction*, not by lane-tree
//! discipline. The remaining f32 arithmetic (scale products, bias adds,
//! ReLU, per-candidate score conversion) is elementwise with no cross-lane
//! interaction.
//!
//! ## EDSRSS02
//!
//! [`QuantSnapshot`] is the v2 serve-snapshot format: the same CRC-trailed
//! fsync-before-rename envelope as v1 (`edsr-wire`), magic `EDSRSS02`,
//! bundling the quantized encoder, quantized memory, CRC32s of the f32
//! originals, and the export-time accuracy [`GateReport`].

mod encoder;
mod knn;
mod snapshot;
mod tensor;

pub use encoder::{QuantEncoder, QuantLinear, QuantScratch};
pub use knn::{knn_gate, GateReport, QuantMemory};
pub use snapshot::{QuantSnapshot, QUANT_SNAPSHOT_MAGIC};
pub use tensor::{quantize_row_into, scale_for, QuantTensor};
