//! `EDSRSS02` — the v2 (quantized) serve-snapshot format.
//!
//! Same on-disk discipline as v1: an 8-byte magic, the payload, and a
//! CRC32 trailer, written `.tmp` → fsync → atomic rename → parent-dir
//! sync through `edsr-wire`. The payload bundles the quantized encoder,
//! the quantized memory grid with task labels, CRC32s of the f32
//! originals it was derived from, and the export-time accuracy
//! [`GateReport`].
//!
//! Payload layout (little-endian):
//!
//! ```text
//! u64 completed_tasks
//! bytes benchmark (u64 len + utf-8)
//! u64 n_input_dims, then n x u64
//! u64 repr_dim
//! u64 n_adapters, then n x quant_linear
//! u64 n_chain, then n x quant_linear
//! quant_tensor memory grid
//! u64 n_memory_tasks, then n x u64
//! u32 f32 params CRC32   (over the v1 snapshot's params payload)
//! u32 f32 memory CRC32   (over the v1 grid's encoded bytes)
//! f32 gate f32 accuracy, f32 gate int8 accuracy
//!
//! quant_linear := quant_tensor wt, u64 n_bias + n x f32, u32 relu (0|1)
//! quant_tensor := u32 rows, u32 cols, u64 n_scales + n x f32,
//!                 i8s data (u64 len + raw bytes)
//! ```

use std::path::Path;

use edsr_nn::io::{
    put_bytes, put_f32, put_i8s, put_u32, put_u64, read_envelope, write_envelope, ByteReader,
};
use edsr_nn::CheckpointError;

use crate::encoder::{QuantEncoder, QuantLinear};
use crate::knn::{GateReport, QuantMemory};
use crate::tensor::QuantTensor;

/// Magic tag of v2 quantized serve snapshots (v1 is `EDSRSS01`).
pub const QUANT_SNAPSHOT_MAGIC: &[u8; 8] = b"EDSRSS02";

/// A quantized serve snapshot: everything the serve engine needs to run
/// int8 inference, plus provenance (f32 CRCs) and the accuracy gate.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSnapshot {
    /// Tasks completed when the snapshot was exported.
    pub completed_tasks: usize,
    /// Benchmark name (matches the v1 snapshot it was derived from).
    pub benchmark: String,
    /// The quantized eval-mode encoder.
    pub encoder: QuantEncoder,
    /// The quantized memory grid.
    pub memory: QuantMemory,
    /// Source task ID per memory row.
    pub memory_tasks: Vec<u64>,
    /// CRC32 of the f32 model parameter payload this was quantized from.
    pub f32_params_crc: u32,
    /// CRC32 of the encoded f32 memory grid this was quantized from.
    pub f32_memory_crc: u32,
    /// Export-time leave-one-out accuracy comparison.
    pub gate: GateReport,
}

fn put_quant_tensor(buf: &mut Vec<u8>, t: &QuantTensor) {
    put_u32(buf, t.rows() as u32);
    put_u32(buf, t.cols() as u32);
    put_u64(buf, t.scales().len() as u64);
    for &s in t.scales() {
        put_f32(buf, s);
    }
    put_i8s(buf, t.data());
}

fn read_quant_tensor(r: &mut ByteReader) -> Result<QuantTensor, CheckpointError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let n_scales = r.u64()? as usize;
    let mut scales = Vec::with_capacity(n_scales.min(1 << 20));
    for _ in 0..n_scales {
        scales.push(r.f32()?);
    }
    let data = r.i8s()?;
    QuantTensor::from_parts(rows, cols, data, scales).map_err(CheckpointError::Mismatch)
}

fn put_quant_linear(buf: &mut Vec<u8>, l: &QuantLinear) {
    put_quant_tensor(buf, &l.wt);
    put_u64(buf, l.bias.len() as u64);
    for &b in &l.bias {
        put_f32(buf, b);
    }
    put_u32(buf, l.relu as u32);
}

fn read_quant_linear(r: &mut ByteReader) -> Result<QuantLinear, CheckpointError> {
    let wt = read_quant_tensor(r)?;
    let n_bias = r.u64()? as usize;
    if n_bias != wt.rows() {
        return Err(CheckpointError::Mismatch(format!(
            "quant layer bias count {n_bias} != {} output channels",
            wt.rows()
        )));
    }
    let mut bias = Vec::with_capacity(n_bias);
    for _ in 0..n_bias {
        bias.push(r.f32()?);
    }
    let relu = match r.u32()? {
        0 => false,
        1 => true,
        v => {
            return Err(CheckpointError::Mismatch(format!(
                "quant layer relu tag {v} (want 0|1)"
            )))
        }
    };
    Ok(QuantLinear { wt, bias, relu })
}

impl QuantSnapshot {
    /// Serializes to the EDSRSS02 payload (without the envelope).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.completed_tasks as u64);
        put_bytes(&mut buf, self.benchmark.as_bytes());
        put_u64(&mut buf, self.encoder.input_dims().len() as u64);
        for &d in self.encoder.input_dims() {
            put_u64(&mut buf, d as u64);
        }
        put_u64(&mut buf, self.encoder.repr_dim() as u64);
        put_u64(&mut buf, self.encoder.adapters().len() as u64);
        for l in self.encoder.adapters() {
            put_quant_linear(&mut buf, l);
        }
        put_u64(&mut buf, self.encoder.chain().len() as u64);
        for l in self.encoder.chain() {
            put_quant_linear(&mut buf, l);
        }
        put_quant_tensor(&mut buf, self.memory.grid());
        put_u64(&mut buf, self.memory_tasks.len() as u64);
        for &t in &self.memory_tasks {
            put_u64(&mut buf, t);
        }
        put_u32(&mut buf, self.f32_params_crc);
        put_u32(&mut buf, self.f32_memory_crc);
        put_f32(&mut buf, self.gate.f32_accuracy);
        put_f32(&mut buf, self.gate.int8_accuracy);
        buf
    }

    /// Decodes an EDSRSS02 payload, validating every structural invariant.
    pub fn decode(payload: &[u8]) -> Result<QuantSnapshot, CheckpointError> {
        let mut r = ByteReader::new(payload);
        let completed_tasks = r.u64()? as usize;
        let benchmark = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|_| CheckpointError::Mismatch("benchmark is not utf-8".into()))?;
        let n_dims = r.u64()? as usize;
        let mut input_dims = Vec::with_capacity(n_dims.min(1 << 16));
        for _ in 0..n_dims {
            input_dims.push(r.u64()? as usize);
        }
        let repr_dim = r.u64()? as usize;
        let n_adapters = r.u64()? as usize;
        let mut adapters = Vec::with_capacity(n_adapters.min(1 << 16));
        for _ in 0..n_adapters {
            adapters.push(read_quant_linear(&mut r)?);
        }
        let n_chain = r.u64()? as usize;
        let mut chain = Vec::with_capacity(n_chain.min(1 << 16));
        for _ in 0..n_chain {
            chain.push(read_quant_linear(&mut r)?);
        }
        let grid = read_quant_tensor(&mut r)?;
        let n_tasks = r.u64()? as usize;
        let mut memory_tasks = Vec::with_capacity(n_tasks.min(1 << 24));
        for _ in 0..n_tasks {
            memory_tasks.push(r.u64()?);
        }
        let f32_params_crc = r.u32()?;
        let f32_memory_crc = r.u32()?;
        let gate = GateReport {
            f32_accuracy: r.f32()?,
            int8_accuracy: r.f32()?,
        };
        if !r.is_exhausted() {
            return Err(CheckpointError::Mismatch(
                "quant snapshot payload has trailing bytes".into(),
            ));
        }
        let encoder = QuantEncoder::new(input_dims, repr_dim, adapters, chain)
            .map_err(CheckpointError::Mismatch)?;
        if grid.cols() != repr_dim && grid.rows() != 0 {
            return Err(CheckpointError::Mismatch(format!(
                "quant memory width {} != repr_dim {repr_dim}",
                grid.cols()
            )));
        }
        if memory_tasks.len() != grid.rows() {
            return Err(CheckpointError::Mismatch(format!(
                "quant memory rows {} != task labels {}",
                grid.rows(),
                memory_tasks.len()
            )));
        }
        Ok(QuantSnapshot {
            completed_tasks,
            benchmark,
            encoder,
            memory: QuantMemory::from_grid(grid),
            memory_tasks,
            f32_params_crc,
            f32_memory_crc,
            gate,
        })
    }

    /// Writes the snapshot as a CRC-trailed envelope (fsync before the
    /// atomic rename, parent directory synced — crash-safe like v1).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        write_envelope(path, QUANT_SNAPSHOT_MAGIC, &self.encode())
    }

    /// Reads and validates an EDSRSS02 envelope.
    pub fn load(path: impl AsRef<Path>) -> Result<QuantSnapshot, CheckpointError> {
        QuantSnapshot::decode(&read_envelope(path, QUANT_SNAPSHOT_MAGIC)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::Matrix;

    fn sample() -> QuantSnapshot {
        let w = Matrix::from_vec(2, 2, vec![1.0, -0.5, 0.25, 2.0]);
        let adapter = QuantLinear::from_f32(&w, &[0.1, -0.1], true, false);
        let head = QuantLinear::from_f32(&w, &[0.0, 0.0], false, true);
        let encoder = QuantEncoder::new(vec![2], 2, vec![adapter], vec![head]).unwrap();
        let memory = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.5]]);
        QuantSnapshot {
            completed_tasks: 3,
            benchmark: "test".into(),
            encoder,
            memory: QuantMemory::from_matrix(&memory),
            memory_tasks: vec![0, 1],
            f32_params_crc: 0xdead_beef,
            f32_memory_crc: 0x1234_5678,
            gate: GateReport {
                f32_accuracy: 100.0,
                int8_accuracy: 99.5,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let got = QuantSnapshot::decode(&snap.encode()).expect("decode");
        assert_eq!(got, snap);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut payload = sample().encode();
        payload.push(0);
        assert!(matches!(
            QuantSnapshot::decode(&payload),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn save_load_round_trips_and_checks_magic() {
        let dir = std::env::temp_dir().join(format!("edsr-quant-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.snapshot");
        let snap = sample();
        snap.save(&path).unwrap();
        assert_eq!(QuantSnapshot::load(&path).unwrap(), snap);
        // A v1-magic file must be rejected as BadMagic, which is what
        // lets the any-format loader fall through to v1 decoding.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..8].copy_from_slice(b"EDSRSS01");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            QuantSnapshot::load(&path),
            Err(CheckpointError::BadMagic)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
