//! Quantized eval-mode encoder: a chain of int8 linear layers.

use edsr_tensor::{simd, Matrix};

use crate::tensor::{quantize_row_into, QuantTensor};

/// One quantized linear layer: transposed int8 weights (one row per
/// output channel), f32 bias, optional trailing ReLU.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLinear {
    /// `out_dim x in_dim` int8 weights (per-tensor or per-row scales).
    pub wt: QuantTensor,
    /// f32 bias, one per output channel.
    pub bias: Vec<f32>,
    /// Whether a ReLU follows this layer in the eval chain.
    pub relu: bool,
}

impl QuantLinear {
    /// Quantizes an f32 layer. `w` is the forward-orientation `in x out`
    /// weight matrix (as registered by `edsr_nn::Linear`); it is stored
    /// transposed here. `per_channel` selects one scale per output channel
    /// (the final-layer mode) instead of one per tensor.
    pub fn from_f32(w: &Matrix, bias: &[f32], relu: bool, per_channel: bool) -> QuantLinear {
        let (in_dim, out_dim) = (w.rows(), w.cols());
        assert_eq!(bias.len(), out_dim, "QuantLinear: bias length mismatch");
        let mut wt = vec![0.0f32; in_dim * out_dim];
        for i in 0..in_dim {
            for o in 0..out_dim {
                wt[o * in_dim + i] = w.get(i, o);
            }
        }
        let wt = if per_channel {
            QuantTensor::per_row(out_dim, in_dim, &wt)
        } else {
            QuantTensor::per_tensor(out_dim, in_dim, &wt)
        };
        QuantLinear {
            wt,
            bias: bias.to_vec(),
            relu,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.wt.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.wt.rows()
    }

    /// Quantized forward for one row: dynamically quantizes `x` into `qx`
    /// (recycled), runs one exact [`simd::i8_dot`] per output channel, and
    /// dequantizes with `act_scale * weight_scale` before bias and ReLU.
    pub fn forward(&self, x: &[f32], qx: &mut Vec<i8>, out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim());
        debug_assert_eq!(out.len(), self.out_dim());
        let sx = quantize_row_into(x, qx);
        for (o, slot) in out.iter_mut().enumerate() {
            let acc = simd::i8_dot(qx, self.wt.row(o));
            let mut v = acc as f32 * (sx * self.wt.row_scale(o)) + self.bias[o];
            if self.relu && v < 0.0 {
                v = 0.0;
            }
            *slot = v;
        }
    }
}

/// Recycled int8/f32 buffers for [`QuantEncoder::represent_into`]; one per
/// engine, grown on first use and allocation-free thereafter.
#[derive(Debug, Default)]
pub struct QuantScratch {
    qx: Vec<i8>,
    a: Vec<f32>,
    b: Vec<f32>,
}

/// The quantized eval-mode encoder: per-task input adapters followed by a
/// shared chain (backbone + projector), all [`QuantLinear`] layers.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantEncoder {
    input_dims: Vec<usize>,
    repr_dim: usize,
    adapters: Vec<QuantLinear>,
    chain: Vec<QuantLinear>,
}

impl QuantEncoder {
    /// Assembles an encoder from quantized parts, validating dimensions.
    pub fn new(
        input_dims: Vec<usize>,
        repr_dim: usize,
        adapters: Vec<QuantLinear>,
        chain: Vec<QuantLinear>,
    ) -> Result<QuantEncoder, String> {
        if adapters.is_empty() || adapters.len() != input_dims.len() {
            return Err(format!(
                "quant encoder: {} adapters for {} input dims",
                adapters.len(),
                input_dims.len()
            ));
        }
        for (a, &dim) in adapters.iter().zip(&input_dims) {
            if a.in_dim() != dim {
                return Err(format!(
                    "quant adapter in_dim {} != input dim {dim}",
                    a.in_dim()
                ));
            }
        }
        let mut cur = adapters[0].out_dim();
        if adapters.iter().any(|a| a.out_dim() != cur) {
            return Err("quant adapters disagree on output width".into());
        }
        for layer in &chain {
            if layer.in_dim() != cur {
                return Err(format!(
                    "quant chain layer in_dim {} != previous out_dim {cur}",
                    layer.in_dim()
                ));
            }
            cur = layer.out_dim();
        }
        if cur != repr_dim {
            return Err(format!(
                "quant chain ends at {cur}, want repr_dim {repr_dim}"
            ));
        }
        Ok(QuantEncoder {
            input_dims,
            repr_dim,
            adapters,
            chain,
        })
    }

    /// Representation dimensionality.
    pub fn repr_dim(&self) -> usize {
        self.repr_dim
    }

    /// Number of input adapters.
    pub fn num_adapters(&self) -> usize {
        self.adapters.len()
    }

    /// Input dimensionalities, one per adapter.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Per-task adapters.
    pub fn adapters(&self) -> &[QuantLinear] {
        &self.adapters
    }

    /// Shared backbone + projector chain.
    pub fn chain(&self) -> &[QuantLinear] {
        &self.chain
    }

    /// Adapter index used for `task` (single-adapter encoders share 0);
    /// `None` when the task has no adapter.
    pub fn adapter_for(&self, task: usize) -> Option<usize> {
        if self.adapters.len() == 1 {
            Some(0)
        } else if task < self.adapters.len() {
            Some(task)
        } else {
            None
        }
    }

    /// Quantized eval forward for one input row of `task`, writing the
    /// `repr_dim` representation into `out`. Ping-pongs activations through
    /// the recycled `scratch` buffers; each row is quantized independently,
    /// so batching cannot change any row's bits.
    ///
    /// # Panics
    /// Panics if `task` has no adapter or the input/output lengths do not
    /// match the adapter's `in_dim` / `repr_dim` (the engine validates
    /// request shapes before reaching this hot path).
    pub fn represent_into(
        &self,
        task: usize,
        x: &[f32],
        scratch: &mut QuantScratch,
        out: &mut [f32],
    ) {
        let ai = self
            .adapter_for(task)
            .unwrap_or_else(|| panic!("QuantEncoder: no adapter for task {task}"));
        assert_eq!(
            x.len(),
            self.adapters[ai].in_dim(),
            "QuantEncoder: input dim"
        );
        assert_eq!(out.len(), self.repr_dim, "QuantEncoder: output dim");
        let QuantScratch { qx, a, b } = scratch;
        let total = 1 + self.chain.len();
        let mut into_a = true;
        for (li, layer) in std::iter::once(&self.adapters[ai])
            .chain(self.chain.iter())
            .enumerate()
        {
            let src_is_x = li == 0;
            if li + 1 == total {
                let src: &[f32] = if src_is_x {
                    x
                } else if into_a {
                    b
                } else {
                    a
                };
                layer.forward(src, qx, out);
            } else if into_a {
                a.clear();
                a.resize(layer.out_dim(), 0.0);
                let src: &[f32] = if src_is_x { x } else { b };
                layer.forward(src, qx, a);
                into_a = false;
            } else {
                b.clear();
                b.resize(layer.out_dim(), 0.0);
                let src: &[f32] = if src_is_x { x } else { a };
                layer.forward(src, qx, b);
                into_a = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(w: &[f32], in_dim: usize, out_dim: usize, bias: &[f32], relu: bool) -> QuantLinear {
        let m = Matrix::from_vec(in_dim, out_dim, w.to_vec());
        QuantLinear::from_f32(&m, bias, relu, false)
    }

    #[test]
    fn identity_layer_round_trips_within_quant_error() {
        // 2x2 identity: quantizes exactly (values 0 and 1), so the only
        // error left is the dynamic activation quantization of x.
        let l = layer(&[1.0, 0.0, 0.0, 1.0], 2, 2, &[0.0, 0.0], false);
        let mut qx = Vec::new();
        let mut out = [0.0f32; 2];
        l.forward(&[0.5, -0.25], &mut qx, &mut out);
        let sx = 0.5 / 127.0;
        assert!((out[0] - 0.5).abs() <= sx * 0.51, "got {}", out[0]);
        assert!((out[1] + 0.25).abs() <= sx * 0.51, "got {}", out[1]);
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let l = layer(&[1.0, 0.0, 0.0, 1.0], 2, 2, &[0.0, 0.0], true);
        let mut qx = Vec::new();
        let mut out = [0.0f32; 2];
        l.forward(&[0.5, -0.25], &mut qx, &mut out);
        assert_eq!(out[1], 0.0);
        assert!(out[0] > 0.0);
    }

    #[test]
    fn encoder_chains_adapter_and_shared_layers() {
        let adapter = layer(&[2.0, 0.0, 0.0, 2.0], 2, 2, &[0.0, 0.0], true);
        let head = layer(&[1.0, 0.0, 0.0, 1.0], 2, 2, &[0.1, 0.1], false);
        let enc = QuantEncoder::new(vec![2], 2, vec![adapter], vec![head]).unwrap();
        assert_eq!(enc.adapter_for(5), Some(0));
        let mut scratch = QuantScratch::default();
        let mut out = [0.0f32; 2];
        enc.represent_into(3, &[1.0, -1.0], &mut scratch, &mut out);
        // adapter: (2, -2) → ReLU → (2, 0); head adds 0.1.
        assert!((out[0] - 2.1).abs() < 0.05, "got {}", out[0]);
        assert!((out[1] - 0.1).abs() < 0.05, "got {}", out[1]);
    }

    #[test]
    fn encoder_new_rejects_mismatched_dims() {
        let adapter = layer(&[1.0, 0.0, 0.0, 1.0], 2, 2, &[0.0, 0.0], true);
        assert!(QuantEncoder::new(vec![3], 2, vec![adapter.clone()], vec![]).is_err());
        assert!(QuantEncoder::new(vec![2], 3, vec![adapter], vec![]).is_err());
    }
}
