//! Quantized kNN over the int8 memory grid, plus the accuracy-delta gate.

use edsr_linalg::{KnnQuery, Metric, Neighbor};
use edsr_tensor::{simd, Matrix};

use crate::tensor::QuantTensor;

/// The replay-memory representations quantized with one per-tensor scale,
/// with precomputed `i32` self-dot-products for cosine scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMemory {
    grid: QuantTensor,
    self_dots: Vec<i32>,
}

impl QuantMemory {
    /// Quantizes an f32 memory grid (the calibration set *is* the grid:
    /// one symmetric scale over the snapshot's own representations).
    pub fn from_matrix(memory: &Matrix) -> QuantMemory {
        QuantMemory::from_grid(QuantTensor::from_matrix(memory))
    }

    /// Wraps an already-quantized grid (the snapshot-load path),
    /// recomputing the cosine self-dots.
    pub fn from_grid(grid: QuantTensor) -> QuantMemory {
        let self_dots = (0..grid.rows())
            .map(|r| simd::i8_dot(grid.row(r), grid.row(r)))
            .collect();
        QuantMemory { grid, self_dots }
    }

    /// Number of memory rows.
    pub fn rows(&self) -> usize {
        self.grid.rows()
    }

    /// Representation dimensionality.
    pub fn cols(&self) -> usize {
        self.grid.cols()
    }

    /// The underlying int8 grid.
    pub fn grid(&self) -> &QuantTensor {
        &self.grid
    }

    /// Quantizes an f32 query onto the *grid's* scale (not the query's
    /// own), so distances live on one integer lattice. Values beyond the
    /// calibration range clamp to ±127.
    fn quantize_query(&self, query: &[f32], qbuf: &mut Vec<i8>) {
        let s = self.grid.row_scale(0);
        qbuf.clear();
        qbuf.extend(
            query
                .iter()
                .map(|&v| (v / s).round().clamp(-127.0, 127.0) as i8),
        );
    }

    /// Quantized counterpart of `edsr_linalg::KnnQuery::search_into`, with
    /// identical ordering semantics: Euclidean ascending, cosine
    /// descending, ties kept in row order, `out` truncated to
    /// `k.min(eligible rows)`. Scores are converted back to f32 units
    /// (`i32 distance x scale²`; cosine scales cancel), one exact `i32`
    /// reduction per candidate — bit-identical across ISA levels and
    /// thread counts.
    #[allow(clippy::too_many_arguments)]
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        metric: Metric,
        exclude: Option<usize>,
        qbuf: &mut Vec<i8>,
        scratch: &mut Vec<Neighbor>,
        out: &mut Vec<Neighbor>,
    ) {
        assert_eq!(query.len(), self.cols(), "QuantMemory: query dim");
        self.quantize_query(query, qbuf);
        let s = self.grid.row_scale(0);
        let qq = simd::i8_dot(qbuf, qbuf);
        let qnorm = (qq as f32).sqrt();
        scratch.clear();
        for r in 0..self.rows() {
            if exclude == Some(r) {
                continue;
            }
            let score = match metric {
                Metric::Euclidean => simd::i8_sq_euclidean(qbuf, self.grid.row(r)) as f32 * s * s,
                Metric::Cosine => {
                    let denom = qnorm * (self.self_dots[r] as f32).sqrt();
                    if denom > 0.0 {
                        simd::i8_dot(qbuf, self.grid.row(r)) as f32 / denom
                    } else {
                        0.0
                    }
                }
            };
            scratch.push(Neighbor { index: r, score });
        }
        match metric {
            Metric::Euclidean => scratch.sort_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
            Metric::Cosine => scratch.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
        }
        out.clear();
        out.extend_from_slice(&scratch[..k.min(scratch.len())]);
    }
}

/// The export-time accuracy-delta gate: leave-one-out 1-NN task-ID
/// accuracy over the memory rows, f32 path vs int8 path (percent).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateReport {
    /// f32 leave-one-out kNN task accuracy, percent.
    pub f32_accuracy: f32,
    /// int8 leave-one-out kNN task accuracy, percent.
    pub int8_accuracy: f32,
}

impl GateReport {
    /// Absolute accuracy delta in points.
    pub fn delta(&self) -> f32 {
        (self.f32_accuracy - self.int8_accuracy).abs()
    }
}

impl std::fmt::Display for GateReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "f32 {:.2}% int8 {:.2}% delta {:.2}",
            self.f32_accuracy,
            self.int8_accuracy,
            self.delta()
        )
    }
}

/// Runs the gate: for every memory row, predict its task ID from its
/// nearest *other* row (squared Euclidean — the retrieval metric both
/// paths share), once over the f32 grid and once over `qmem`. Memories
/// with fewer than two rows score 100/100 (nothing to predict from).
pub fn knn_gate(memory: &Matrix, tasks: &[u64], qmem: &QuantMemory) -> GateReport {
    assert_eq!(memory.rows(), tasks.len(), "knn_gate: task labels");
    assert_eq!(memory.rows(), qmem.rows(), "knn_gate: grid rows");
    let n = memory.rows();
    if n < 2 {
        return GateReport {
            f32_accuracy: 100.0,
            int8_accuracy: 100.0,
        };
    }
    let mut f32_hits = 0usize;
    let mut int8_hits = 0usize;
    let mut scratch = Vec::new();
    let mut qbuf = Vec::new();
    let mut out = Vec::new();
    for r in 0..n {
        let got = KnnQuery::new(memory, 1)
            .exclude(r)
            .search_with_scratch(memory.row(r), &mut scratch);
        if tasks[got[0].index] == tasks[r] {
            f32_hits += 1;
        }
        qmem.search_into(
            memory.row(r),
            1,
            Metric::Euclidean,
            Some(r),
            &mut qbuf,
            &mut scratch,
            &mut out,
        );
        if tasks[out[0].index] == tasks[r] {
            int8_hits += 1;
        }
    }
    GateReport {
        f32_accuracy: 100.0 * f32_hits as f32 / n as f32,
        int8_accuracy: 100.0 * int8_hits as f32 / n as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0], &[0.9, 0.1], &[-1.0, 0.0], &[-0.9, -0.1]])
    }

    #[test]
    fn euclidean_ranking_matches_f32_knn() {
        let m = grid();
        let qmem = QuantMemory::from_matrix(&m);
        let (mut qbuf, mut scratch, mut out) = (Vec::new(), Vec::new(), Vec::new());
        qmem.search_into(
            &[0.95, 0.0],
            2,
            Metric::Euclidean,
            None,
            &mut qbuf,
            &mut scratch,
            &mut out,
        );
        let want = KnnQuery::new(&m, 2).search(&[0.95, 0.0]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, want[0].index);
        assert_eq!(out[1].index, want[1].index);
    }

    #[test]
    fn cosine_ranking_matches_f32_knn_and_guards_zero_norm() {
        let mut rows = grid();
        rows.set(3, 0, 0.0);
        rows.set(3, 1, 0.0); // zero row: cosine undefined, scored 0.0
        let qmem = QuantMemory::from_matrix(&rows);
        let (mut qbuf, mut scratch, mut out) = (Vec::new(), Vec::new(), Vec::new());
        qmem.search_into(
            &[1.0, 0.05],
            3,
            Metric::Cosine,
            None,
            &mut qbuf,
            &mut scratch,
            &mut out,
        );
        let want = KnnQuery::new(&rows, 3)
            .metric(Metric::Cosine)
            .search(&[1.0, 0.05]);
        assert_eq!(out[0].index, want[0].index);
        assert_eq!(out[1].index, want[1].index);
        assert!(out.iter().all(|n| n.score.is_finite()));
    }

    #[test]
    fn exclude_skips_the_query_row() {
        let m = grid();
        let qmem = QuantMemory::from_matrix(&m);
        let (mut qbuf, mut scratch, mut out) = (Vec::new(), Vec::new(), Vec::new());
        qmem.search_into(
            m.row(0),
            1,
            Metric::Euclidean,
            Some(0),
            &mut qbuf,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out[0].index, 1);
    }

    #[test]
    fn gate_is_perfect_on_well_separated_tasks() {
        let m = grid();
        let qmem = QuantMemory::from_matrix(&m);
        let report = knn_gate(&m, &[0, 0, 1, 1], &qmem);
        assert_eq!(report.f32_accuracy, 100.0);
        assert_eq!(report.int8_accuracy, 100.0);
        assert_eq!(report.delta(), 0.0);
    }

    #[test]
    fn gate_handles_tiny_memories() {
        let m = Matrix::from_rows(&[&[1.0, 0.0]]);
        let qmem = QuantMemory::from_matrix(&m);
        let report = knn_gate(&m, &[0], &qmem);
        assert_eq!(report.delta(), 0.0);
    }
}
