//! Symmetric int8 tensors with f32 scales (zero-point 0 throughout).

use edsr_tensor::Matrix;

/// Scale mapping `[-max_abs, max_abs]` onto `[-127, 127]`. An all-zero
/// tensor gets scale 1.0, under which every value quantizes to exactly 0.
pub fn scale_for(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

fn quantize_value(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-127.0, 127.0) as i8
}

fn max_abs(values: &[f32]) -> f32 {
    values.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Dynamically quantizes one activation row: computes the row's own
/// symmetric scale, refills `out` with the quantized values, and returns
/// the scale. `out` is recycled — no allocation once its capacity covers
/// the row length.
pub fn quantize_row_into(x: &[f32], out: &mut Vec<i8>) -> f32 {
    let scale = scale_for(max_abs(x));
    out.clear();
    out.extend(x.iter().map(|&v| quantize_value(v, scale)));
    scale
}

/// A quantized matrix: `rows x cols` int8 values with either one shared
/// scale (`scales.len() == 1`) or one scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantTensor {
    /// Quantizes row-major f32 data with one per-tensor scale.
    pub fn per_tensor(rows: usize, cols: usize, data: &[f32]) -> QuantTensor {
        assert_eq!(data.len(), rows * cols, "QuantTensor: shape mismatch");
        let scale = scale_for(max_abs(data));
        QuantTensor {
            rows,
            cols,
            data: data.iter().map(|&v| quantize_value(v, scale)).collect(),
            scales: vec![scale],
        }
    }

    /// Quantizes row-major f32 data with one scale per row (the
    /// per-output-channel mode for transposed final-layer weights).
    pub fn per_row(rows: usize, cols: usize, data: &[f32]) -> QuantTensor {
        assert_eq!(data.len(), rows * cols, "QuantTensor: shape mismatch");
        let mut out = QuantTensor {
            rows,
            cols,
            data: Vec::with_capacity(rows * cols),
            scales: Vec::with_capacity(rows),
        };
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let scale = scale_for(max_abs(row));
            out.scales.push(scale);
            out.data
                .extend(row.iter().map(|&v| quantize_value(v, scale)));
        }
        out
    }

    /// The per-tensor quantization of `m` (row-major, same shape).
    pub fn from_matrix(m: &Matrix) -> QuantTensor {
        QuantTensor::per_tensor(m.rows(), m.cols(), m.data())
    }

    /// Rebuilds a tensor from decoded parts, validating shape invariants.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<QuantTensor, String> {
        if data.len() != rows * cols {
            return Err(format!(
                "quant tensor data length {} != {rows}x{cols}",
                data.len()
            ));
        }
        if scales.len() != 1 && scales.len() != rows {
            return Err(format!(
                "quant tensor scale count {} (want 1 or {rows})",
                scales.len()
            ));
        }
        Ok(QuantTensor {
            rows,
            cols,
            data,
            scales,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a contiguous int8 slice.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The scale applied to row `r` (shared scale when per-tensor).
    pub fn row_scale(&self, r: usize) -> f32 {
        if self.scales.len() == 1 {
            self.scales[0]
        } else {
            self.scales[r]
        }
    }

    /// Raw int8 values, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Raw scales (length 1 or `rows`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantized value at `(r, c)`.
    pub fn dequantize(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c] as f32 * self.row_scale(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_tensor_quantizes_to_zero_with_unit_scale() {
        let t = QuantTensor::per_tensor(2, 3, &[0.0; 6]);
        assert_eq!(t.scales(), &[1.0]);
        assert!(t.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn max_abs_value_maps_to_127_exactly() {
        let t = QuantTensor::per_tensor(1, 3, &[0.5, -2.0, 1.0]);
        assert_eq!(t.data(), &[32, -127, 64]);
    }

    proptest! {
        /// Round-trip bound: per-tensor quantize/dequantize error is at most
        /// scale/2 per element (symmetric rounding; a small epsilon absorbs
        /// the f32 division/multiplication rounding itself).
        #[test]
        fn round_trip_error_within_half_scale(
            values in proptest::collection::vec(-1e3f32..1e3, 1..64),
        ) {
            let t = QuantTensor::per_tensor(1, values.len(), &values);
            let scale = t.row_scale(0);
            let bound = scale * 0.5 * (1.0 + 1e-4);
            for (c, &x) in values.iter().enumerate() {
                let err = (x - t.dequantize(0, c)).abs();
                prop_assert!(
                    err <= bound,
                    "value {} dequantized to {} (err {}, scale {})",
                    x, t.dequantize(0, c), err, scale,
                );
            }
        }

        /// Same bound for the per-row (per-output-channel) mode, per row.
        #[test]
        fn per_row_round_trip_error_within_half_scale(
            rows in proptest::collection::vec(
                proptest::collection::vec(-1e3f32..1e3, 8), 1..8,
            ),
        ) {
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let t = QuantTensor::per_row(rows.len(), 8, &flat);
            for (r, row) in rows.iter().enumerate() {
                let bound = t.row_scale(r) * 0.5 * (1.0 + 1e-4);
                for (c, &x) in row.iter().enumerate() {
                    prop_assert!((x - t.dequantize(r, c)).abs() <= bound);
                }
            }
        }

        /// Dynamic activation rows obey the same bound and reuse the buffer.
        #[test]
        fn activation_row_round_trip_error_within_half_scale(
            values in proptest::collection::vec(-1e2f32..1e2, 1..64),
        ) {
            let mut q = Vec::new();
            let scale = quantize_row_into(&values, &mut q);
            let bound = scale * 0.5 * (1.0 + 1e-4);
            for (&x, &qi) in values.iter().zip(&q) {
                prop_assert!((x - qi as f32 * scale).abs() <= bound);
            }
        }
    }
}
