//! The distillation projector `p_dis(·)` and the losses built on it:
//! `L_dis` (Eq. 9, CaSSLe/PFR-style) and the building block EDSR's
//! noise-enhanced replay `L_rpl` (Eq. 16) extends.
//!
//! Mechanism: for the same input, project the *current* model's
//! representation into the old representation space with `p_dis`, then
//! align it with the *frozen* model's representation using the SSL
//! variant's alignment form. Gradients flow only through the current
//! branch.

use edsr_nn::{Activation, Binder, Init, Mlp, ParamSet};
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

use crate::losses::SslHead;

/// Owns `p_dis`, the 2-layer MLP projector of Eq. 9.
#[derive(Debug, Clone)]
pub struct DistillHead {
    projector: Mlp,
}

impl DistillHead {
    /// Creates the projector with the representation's dimensionality on
    /// both ends (paper §IV-A5: "a 2-layer MLP with the same dimension as
    /// the representation").
    pub fn new(params: &mut ParamSet, repr_dim: usize, rng: &mut StdRng) -> Self {
        let projector = Mlp::new(
            params,
            "distill.p_dis",
            &[repr_dim, repr_dim, repr_dim],
            Activation::Relu,
            Init::He,
            rng,
        );
        Self { projector }
    }

    /// Records `p_dis(z)` on the tape.
    pub fn project(&self, tape: &mut Tape, binder: &mut Binder, params: &ParamSet, z: Var) -> Var {
        self.projector.forward(tape, binder, params, z)
    }

    /// `L_dis(x_1, x̃_1)` (Eq. 9): align `p_dis(z)` with the frozen
    /// representation `z̃` (provided as a value from the old model).
    pub fn distill_loss(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        ssl: &SslHead,
        z: Var,
        frozen_repr: &Matrix,
    ) -> Var {
        let projected = self.project(tape, binder, params, z);
        let target = tape.leaf_copy(frozen_repr);
        ssl.align(tape, projected, target)
    }

    /// EDSR's noise-enhanced replay `L_rpl` (Eq. 16): identical to
    /// [`distill_loss`](Self::distill_loss) except the target is
    /// `z̃ + r(x)·σ`, with `σ ~ N(0, I)` sampled per call and `r(x)` the
    /// per-sample kNN-std magnitudes (one scalar per row of `frozen_repr`).
    ///
    /// # Panics
    /// Panics if `noise_scales.len() != frozen_repr.rows()`.
    #[allow(clippy::too_many_arguments)] // mirrors the Eq. 16 signature
    pub fn replay_loss(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        ssl: &SslHead,
        z: Var,
        frozen_repr: &Matrix,
        noise_scales: &[f32],
        rng: &mut StdRng,
    ) -> Var {
        assert_eq!(
            noise_scales.len(),
            frozen_repr.rows(),
            "replay_loss: one noise scale per memory sample required"
        );
        // Perturb the pool-backed leaf copy in place (fresh leaf, nothing
        // downstream has read it yet) instead of cloning `frozen_repr`.
        let target = tape.leaf_copy(frozen_repr);
        let noisy = tape.value_mut(target);
        for (r, &scale) in noise_scales.iter().enumerate() {
            for v in noisy.row_mut(r) {
                *v += scale * edsr_tensor::rng::gaussian(rng);
            }
        }
        let projected = self.project(tape, binder, params, z);
        ssl.align(tape, projected, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses::SslVariant;
    use edsr_tensor::rng::seeded;

    fn setup(seed: u64) -> (DistillHead, SslHead, ParamSet) {
        let mut rng = seeded(seed);
        let mut ps = ParamSet::new();
        let ssl = SslHead::new(&mut ps, SslVariant::SimSiam, 6, &mut rng);
        let dis = DistillHead::new(&mut ps, 6, &mut rng);
        (dis, ssl, ps)
    }

    #[test]
    fn distill_loss_runs_and_is_scalar() {
        let (dis, ssl, ps) = setup(230);
        let mut rng = seeded(231);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let z = tape.leaf(Matrix::randn(4, 6, 1.0, &mut rng));
        let frozen = Matrix::randn(4, 6, 1.0, &mut rng);
        let l = dis.distill_loss(&mut tape, &mut binder, &ps, &ssl, z, &frozen);
        assert_eq!(tape.value(l).shape(), (1, 1));
        assert!(tape.value(l).get(0, 0).is_finite());
    }

    #[test]
    fn gradient_flows_into_projector_and_input() {
        let (dis, ssl, mut ps) = setup(232);
        let mut rng = seeded(233);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let z = tape.leaf(Matrix::randn(4, 6, 1.0, &mut rng));
        let frozen = Matrix::randn(4, 6, 1.0, &mut rng);
        let l = dis.distill_loss(&mut tape, &mut binder, &ps, &ssl, z, &frozen);
        let grads = tape.backward(l);
        assert!(grads.get(z).is_some(), "no gradient to the current branch");
        ps.zero_grads();
        binder.accumulate_into(&grads, &mut ps);
        let proj_grad: f32 = ps
            .ids()
            .filter(|&id| ps.name(id).starts_with("distill"))
            .map(|id| ps.grad(id).frobenius_norm())
            .sum();
        assert!(proj_grad > 0.0, "projector received no gradient");
    }

    #[test]
    fn replay_loss_with_zero_noise_matches_distill() {
        let (dis, ssl, ps) = setup(234);
        let mut rng = seeded(235);
        let zm = Matrix::randn(4, 6, 1.0, &mut rng);
        let frozen = Matrix::randn(4, 6, 1.0, &mut rng);

        let mut t1 = Tape::new();
        let mut b1 = Binder::new();
        let z1 = t1.leaf(zm.clone());
        let l1 = dis.distill_loss(&mut t1, &mut b1, &ps, &ssl, z1, &frozen);

        let mut noise_rng = seeded(236);
        let mut t2 = Tape::new();
        let mut b2 = Binder::new();
        let z2 = t2.leaf(zm);
        let l2 = dis.replay_loss(
            &mut t2,
            &mut b2,
            &ps,
            &ssl,
            z2,
            &frozen,
            &[0.0; 4],
            &mut noise_rng,
        );
        assert!((t1.value(l1).get(0, 0) - t2.value(l2).get(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn replay_noise_perturbs_target() {
        let (dis, ssl, ps) = setup(237);
        let mut rng = seeded(238);
        let zm = Matrix::randn(4, 6, 1.0, &mut rng);
        let frozen = Matrix::randn(4, 6, 1.0, &mut rng);
        let eval = |scales: &[f32], seed: u64| {
            let mut nrng = seeded(seed);
            let mut t = Tape::new();
            let mut b = Binder::new();
            let z = t.leaf(zm.clone());
            let l = dis.replay_loss(&mut t, &mut b, &ps, &ssl, z, &frozen, scales, &mut nrng);
            t.value(l).get(0, 0)
        };
        let quiet = eval(&[0.0; 4], 1);
        let noisy = eval(&[2.0; 4], 1);
        assert!((quiet - noisy).abs() > 1e-4, "noise had no effect");
    }

    #[test]
    fn barlowtwins_distill_path_runs_and_flows() {
        let mut rng = seeded(242);
        let mut ps = ParamSet::new();
        let ssl = SslHead::new(
            &mut ps,
            SslVariant::BarlowTwins { lambda: 0.02 },
            6,
            &mut rng,
        );
        let dis = DistillHead::new(&mut ps, 6, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let z = tape.leaf(Matrix::randn(8, 6, 1.0, &mut rng));
        let frozen = Matrix::randn(8, 6, 1.0, &mut rng);
        let l = dis.distill_loss(&mut tape, &mut binder, &ps, &ssl, z, &frozen);
        assert!(tape.value(l).get(0, 0).is_finite());
        let grads = tape.backward(l);
        assert!(
            grads.get(z).is_some(),
            "no gradient through BT distillation"
        );
    }

    #[test]
    fn replay_noise_scales_with_magnitude() {
        // Larger r(x) must move the BT distillation target further from
        // the clean one on average (sanity of the noise injection).
        let (dis, ssl, ps) = setup(243);
        let mut rng = seeded(244);
        let zm = Matrix::randn(6, 6, 1.0, &mut rng);
        let frozen = Matrix::randn(6, 6, 1.0, &mut rng);
        let spread = |scale: f32| -> f32 {
            let mut acc = 0.0;
            for seed in 0..10u64 {
                let mut nrng = seeded(300 + seed);
                let mut t = Tape::new();
                let mut b = Binder::new();
                let z = t.leaf(zm.clone());
                let l = dis.replay_loss(
                    &mut t,
                    &mut b,
                    &ps,
                    &ssl,
                    z,
                    &frozen,
                    &[scale; 6],
                    &mut nrng,
                );
                acc += t.value(l).get(0, 0);
            }
            acc / 10.0
        };
        let clean = spread(0.0);
        let noisy = spread(3.0);
        assert!(
            (noisy - clean).abs() > 1e-3,
            "noise magnitude had no average effect"
        );
    }

    #[test]
    #[should_panic(expected = "one noise scale per memory sample")]
    fn replay_scale_count_mismatch_panics() {
        let (dis, ssl, ps) = setup(239);
        let mut rng = seeded(240);
        let mut t = Tape::new();
        let mut b = Binder::new();
        let z = t.leaf(Matrix::randn(4, 6, 1.0, &mut rng));
        let frozen = Matrix::randn(4, 6, 1.0, &mut rng);
        let mut nrng = seeded(241);
        let _ = dis.replay_loss(&mut t, &mut b, &ps, &ssl, z, &frozen, &[0.0; 2], &mut nrng);
    }
}
