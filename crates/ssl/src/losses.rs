//! The contrastive self-supervised objectives `L_css` (paper §II-A2) and
//! their distillation forms (Eq. 9).
//!
//! Two variants are implemented, matching the paper's experiments:
//! - **SimSiam** (Eq. 3): negative cosine with a predictor `h(·)` and
//!   stop-gradient — the paper's default.
//! - **BarlowTwins** (Eq. 4): cross-correlation identity loss — used in
//!   Table VI to show how the choice interacts with distillation.

use edsr_nn::{Activation, Binder, Init, Mlp, ParamSet};
use edsr_tensor::{Tape, Var};
use rand::rngs::StdRng;

/// Which `L_css` to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SslVariant {
    /// SimSiam's predictor + stop-gradient negative cosine (Eq. 3).
    SimSiam,
    /// BarlowTwins' cross-correlation loss with off-diagonal weight λ
    /// (Eq. 4; the paper's λ default 5e-3 scaled for small `d`).
    BarlowTwins {
        /// Off-diagonal penalty weight λ.
        lambda: f32,
    },
}

/// Loss head: owns the SimSiam predictor when needed.
#[derive(Debug, Clone)]
pub struct SslHead {
    variant: SslVariant,
    predictor: Option<Mlp>,
    repr_dim: usize,
}

impl SslHead {
    /// Creates the head, registering predictor parameters when the
    /// variant requires them.
    pub fn new(
        params: &mut ParamSet,
        variant: SslVariant,
        repr_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self::with_predictor_activation(params, variant, repr_dim, Activation::Relu, rng)
    }

    /// As [`new`](Self::new) but with an explicit predictor activation.
    /// (Finite-difference tests use `Tanh` to avoid ReLU kinks.)
    pub fn with_predictor_activation(
        params: &mut ParamSet,
        variant: SslVariant,
        repr_dim: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let predictor = match variant {
            SslVariant::SimSiam => Some(
                Mlp::new(
                    params,
                    "ssl.predictor",
                    // Bottleneck predictor with hidden BN, as in SimSiam.
                    &[repr_dim, (repr_dim / 2).max(1), repr_dim],
                    activation,
                    Init::He,
                    rng,
                )
                .with_batch_norm(true),
            ),
            SslVariant::BarlowTwins { .. } => None,
        };
        Self {
            variant,
            predictor,
            repr_dim,
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> SslVariant {
        self.variant
    }

    /// Representation dimensionality this head expects.
    pub fn repr_dim(&self) -> usize {
        self.repr_dim
    }

    /// `L_css(x_1, x_2)` on two representation batches (`B x d`).
    pub fn loss(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        z1: Var,
        z2: Var,
    ) -> Var {
        match self.variant {
            SslVariant::SimSiam => {
                let h = self.predictor.as_ref().expect("SimSiam has predictor");
                let p1 = h.forward(tape, binder, params, z1);
                let p2 = h.forward(tape, binder, params, z2);
                let sg2 = tape.detach(z2);
                let sg1 = tape.detach(z1);
                let c1 = tape.cosine_rows_mean(p1, sg2);
                let c2 = tape.cosine_rows_mean(p2, sg1);
                let s = tape.add(c1, c2);
                tape.scale(s, -0.5)
            }
            SslVariant::BarlowTwins { lambda } => barlow_loss(tape, z1, z2, lambda),
        }
    }

    /// Distillation alignment `L_dis`-style term (Eq. 9): aligns the
    /// *projected current* representation with a frozen target. For
    /// SimSiam this is the negative cosine (the distill projector plays
    /// the predictor's role, as in CaSSLe); for BarlowTwins it is the
    /// cross-correlation loss between projected output and target.
    ///
    /// `target` should be a constant (leaf of frozen-model outputs, plus
    /// any replay noise); no gradient flows into it regardless.
    pub fn align(&self, tape: &mut Tape, projected: Var, target: Var) -> Var {
        let frozen = tape.detach(target);
        match self.variant {
            SslVariant::SimSiam => {
                let c = tape.cosine_rows_mean(projected, frozen);
                tape.scale(c, -1.0)
            }
            SslVariant::BarlowTwins { lambda } => barlow_loss(tape, projected, frozen, lambda),
        }
    }
}

/// BarlowTwins loss (Eq. 4) between two `B x d` representation batches.
fn barlow_loss(tape: &mut Tape, z1: Var, z2: Var, lambda: f32) -> Var {
    let batch = tape.value(z1).rows().max(1);
    let d = tape.value(z1).cols();
    let s1 = tape.col_standardize(z1, 1e-4);
    let s2 = tape.col_standardize(z2, 1e-4);
    let s1t = tape.transpose(s1);
    let cc = tape.matmul(s1t, s2);
    let c = tape.scale(cc, 1.0 / batch as f32);
    // (C - I)², weighted 1 on the diagonal and λ off it. Both constant
    // leaves are pool-backed and set in place (fresh leaves, nothing has
    // read them yet) so repeated losses allocate nothing.
    let identity = tape.leaf_filled(d, d, 0.0);
    for i in 0..d {
        tape.value_mut(identity).set(i, i, 1.0);
    }
    let diff = tape.sub(c, identity);
    let sq = tape.square(diff);
    let w = tape.leaf_filled(d, d, lambda);
    for i in 0..d {
        tape.value_mut(w).set(i, i, 1.0);
    }
    let weighted = tape.mul_elem(sq, w);
    tape.sum(weighted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::gradcheck::check_gradients;
    use edsr_tensor::rng::seeded;
    use edsr_tensor::Matrix;

    fn head(variant: SslVariant, repr: usize, seed: u64) -> (SslHead, ParamSet) {
        let mut rng = seeded(seed);
        let mut ps = ParamSet::new();
        let h = SslHead::new(&mut ps, variant, repr, &mut rng);
        (h, ps)
    }

    fn eval_loss(head: &SslHead, ps: &ParamSet, z1: &Matrix, z2: &Matrix) -> f32 {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let v1 = tape.leaf(z1.clone());
        let v2 = tape.leaf(z2.clone());
        let l = head.loss(&mut tape, &mut binder, ps, v1, v2);
        tape.value(l).get(0, 0)
    }

    #[test]
    fn simsiam_loss_bounded() {
        let (h, ps) = head(SslVariant::SimSiam, 8, 210);
        let mut rng = seeded(211);
        let z1 = Matrix::randn(16, 8, 1.0, &mut rng);
        let z2 = Matrix::randn(16, 8, 1.0, &mut rng);
        let l = eval_loss(&h, &ps, &z1, &z2);
        assert!((-1.0..=1.0).contains(&l), "SimSiam loss out of range: {l}");
    }

    #[test]
    fn simsiam_aligned_views_lower_loss() {
        // A freshly initialized predictor gives no alignment guarantee
        // (the ranking below holds for only ~57% of init seeds), so first
        // optimize the SimSiam objective on aligned pairs — afterwards
        // aligned views must beat independent ones by a wide margin.
        let (h, mut ps) = head(SslVariant::SimSiam, 8, 212);
        let mut rng = seeded(213);
        let mut opt = edsr_nn::Adam::new(5e-3, 0.0);
        use edsr_nn::Optimizer as _;
        for _ in 0..200 {
            let z = Matrix::randn(16, 8, 1.0, &mut rng);
            let near = z.add(&Matrix::randn(16, 8, 0.01, &mut rng));
            let mut tape = Tape::new();
            let mut binder = Binder::new();
            let v1 = tape.leaf(z);
            let v2 = tape.leaf(near);
            let l = h.loss(&mut tape, &mut binder, &ps, v1, v2);
            let grads = tape.backward(l);
            ps.zero_grads();
            binder.accumulate_into(&grads, &mut ps);
            opt.step(&mut ps);
        }
        let z = Matrix::randn(16, 8, 1.0, &mut rng);
        let near = z.add(&Matrix::randn(16, 8, 0.01, &mut rng));
        let far = Matrix::randn(16, 8, 1.0, &mut rng);
        let l_near = eval_loss(&h, &ps, &z, &near);
        let l_far = eval_loss(&h, &ps, &z, &far);
        assert!(l_near < l_far, "aligned {l_near} vs far {l_far}");
    }

    #[test]
    fn simsiam_stopgrad_blocks_target_branch() {
        // Gradient w.r.t. z2 should come only from the p2→sg(z1) term's
        // predictor path, i.e. z2 gets gradient only through p2. We verify
        // the asymmetry: z2's gradient differs from what it would be
        // without stop-grad (a plain symmetric cosine).
        let (h, ps) = head(SslVariant::SimSiam, 6, 214);
        let mut rng = seeded(215);
        let z1m = Matrix::randn(4, 6, 1.0, &mut rng);
        let z2m = Matrix::randn(4, 6, 1.0, &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let z1 = tape.leaf(z1m);
        let z2 = tape.leaf(z2m);
        let l = h.loss(&mut tape, &mut binder, &ps, z1, z2);
        let grads = tape.backward(l);
        // Both inputs must still receive gradient (through the predictor).
        assert!(grads.get(z1).is_some());
        assert!(grads.get(z2).is_some());
    }

    #[test]
    fn simsiam_gradcheck_with_frozen_targets() {
        // Finite differences cannot validate a stop-gradient loss directly
        // (sg() deliberately makes the analytic gradient differ from the
        // true derivative). Instead, rebuild the SimSiam graph with the
        // detach targets frozen at their unperturbed values; the analytic
        // gradient of `SslHead::loss` is exactly the gradient of this
        // frozen-target function. Tanh predictor avoids ReLU kinks.
        let mut hrng = seeded(216);
        let mut ps = ParamSet::new();
        // Matches the head's predictor construction (incl. hidden BN).
        let pred = edsr_nn::Mlp::new(
            &mut ps,
            "p",
            &[4, 2, 4],
            Activation::Tanh,
            Init::He,
            &mut hrng,
        )
        .with_batch_norm(true);
        let mut rng = seeded(217);
        let z1 = Matrix::randn(3, 4, 1.0, &mut rng);
        let z2 = Matrix::randn(3, 4, 1.0, &mut rng);
        let (z1c, z2c) = (z1.clone(), z2.clone());
        check_gradients(&[z1, z2], 1e-3, 5e-2, |t, vars| {
            let mut binder = Binder::new();
            let p1 = pred.forward(t, &mut binder, &ps, vars[0]);
            let p2 = pred.forward(t, &mut binder, &ps, vars[1]);
            let t2 = t.leaf(z2c.clone()); // frozen sg(z2)
            let t1 = t.leaf(z1c.clone()); // frozen sg(z1)
            let c1 = t.cosine_rows_mean(p1, t2);
            let c2 = t.cosine_rows_mean(p2, t1);
            let s = t.add(c1, c2);
            t.scale(s, -0.5)
        });

        // And confirm the real head produces the same analytic gradient as
        // the frozen-target graph at this point.
        let mut hps = ParamSet::new();
        let mut hrng2 = seeded(216);
        let head = SslHead::with_predictor_activation(
            &mut hps,
            SslVariant::SimSiam,
            4,
            Activation::Tanh,
            &mut hrng2,
        );
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let v1 = tape.leaf(z1c.clone());
        let v2 = tape.leaf(z2c.clone());
        let l = head.loss(&mut tape, &mut binder, &hps, v1, v2);
        let g_head = tape.backward(l);

        let mut tape2 = Tape::new();
        let mut binder2 = Binder::new();
        let w1 = tape2.leaf(z1c.clone());
        let w2 = tape2.leaf(z2c.clone());
        let p1 = pred.forward(&mut tape2, &mut binder2, &ps, w1);
        let p2 = pred.forward(&mut tape2, &mut binder2, &ps, w2);
        let t2 = tape2.leaf(z2c);
        let t1 = tape2.leaf(z1c);
        let c1 = tape2.cosine_rows_mean(p1, t2);
        let c2 = tape2.cosine_rows_mean(p2, t1);
        let s = tape2.add(c1, c2);
        let l2 = tape2.scale(s, -0.5);
        let g_manual = tape2.backward(l2);

        let a = g_head.get(v1).expect("head z1 grad");
        let b = g_manual.get(w1).expect("manual z1 grad");
        assert!(a.max_abs_diff(b) < 1e-5, "head/manual gradient mismatch");
    }

    #[test]
    fn barlow_identical_decorrelated_views_near_zero() {
        // If z1 == z2 with perfectly decorrelated unit columns, C = I and
        // the loss vanishes. Construct an orthogonal-ish design.
        let (h, ps) = head(SslVariant::BarlowTwins { lambda: 5e-3 }, 4, 218);
        let mut rng = seeded(219);
        let z = Matrix::randn(256, 4, 1.0, &mut rng);
        let l = eval_loss(&h, &ps, &z, &z);
        assert!(l < 0.05, "BT loss on identical views: {l}");
    }

    #[test]
    fn barlow_penalizes_uncorrelated_views() {
        let (h, ps) = head(SslVariant::BarlowTwins { lambda: 5e-3 }, 4, 220);
        let mut rng = seeded(221);
        let z1 = Matrix::randn(64, 4, 1.0, &mut rng);
        let z2 = Matrix::randn(64, 4, 1.0, &mut rng);
        let l_indep = eval_loss(&h, &ps, &z1, &z2);
        let l_same = eval_loss(&h, &ps, &z1, &z1);
        assert!(
            l_indep > l_same + 0.5,
            "independent {l_indep} vs same {l_same}"
        );
    }

    #[test]
    fn barlow_gradcheck() {
        let (h, ps) = head(SslVariant::BarlowTwins { lambda: 0.01 }, 3, 222);
        let mut rng = seeded(223);
        let z1 = Matrix::randn(6, 3, 1.0, &mut rng);
        let z2 = Matrix::randn(6, 3, 1.0, &mut rng);
        check_gradients(&[z1, z2], 1e-3, 5e-2, |t, vars| {
            let mut binder = Binder::new();
            h.loss(t, &mut binder, &ps, vars[0], vars[1])
        });
    }

    #[test]
    fn align_simsiam_is_negative_cosine() {
        let (h, _ps) = head(SslVariant::SimSiam, 4, 224);
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::from_vec(1, 4, vec![1.0, 0.0, 0.0, 0.0]));
        let b = tape.leaf(Matrix::from_vec(1, 4, vec![2.0, 0.0, 0.0, 0.0]));
        let l = h.align(&mut tape, a, b);
        assert!((tape.value(l).get(0, 0) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn align_blocks_gradient_into_target() {
        let (h, _ps) = head(SslVariant::SimSiam, 4, 225);
        let mut rng = seeded(226);
        let mut tape = Tape::new();
        let proj = tape.leaf(Matrix::randn(3, 4, 1.0, &mut rng));
        let target = tape.leaf(Matrix::randn(3, 4, 1.0, &mut rng));
        let l = h.align(&mut tape, proj, target);
        let grads = tape.backward(l);
        assert!(grads.get(proj).is_some());
        assert!(
            grads.get(target).is_none(),
            "gradient leaked into frozen target"
        );
    }
}
