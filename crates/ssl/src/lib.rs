//! # edsr-ssl
//!
//! Contrastive self-supervised learning components of the EDSR
//! reproduction: the encoder `f(·)` (per-task adapter + backbone +
//! projector), the `L_css` objectives (SimSiam, Eq. 3; BarlowTwins,
//! Eq. 4), and the distillation head `p_dis` with `L_dis` (Eq. 9) and the
//! noise-enhanced replay form `L_rpl` (Eq. 16).

pub mod distill;
pub mod encoder;
pub mod losses;

pub use distill::DistillHead;
pub use encoder::{Encoder, EncoderConfig, StemConfig};
pub use losses::{SslHead, SslVariant};
