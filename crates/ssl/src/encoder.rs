//! The encoder `f(·)`: per-task input adapter → shared backbone →
//! projector, producing the representation `x = f(x)` the whole paper
//! operates on.
//!
//! Paper (§IV-A5): images use ResNet-18 + 2-layer MLP (2048-d reps);
//! tabular uses a 7-layer MLP whose *first layer is data-specific* to
//! unify heterogeneous input dims. This reproduction keeps exactly that
//! topology with MLP backbones: one `Linear` adapter per task-input-shape,
//! a shared hidden backbone, and a 2-layer projector.

use edsr_nn::{Activation, Binder, Conv2d, ConvShape, Init, Linear, Mlp, ParamId, ParamSet};
use edsr_tensor::{Matrix, Tape, Var};
use rand::rngs::StdRng;

/// The encoder's input stem.
#[derive(Debug, Clone)]
pub enum StemConfig {
    /// One linear adapter per task-input shape (the default; the paper's
    /// tabular setup and the MLP image encoder).
    PerTaskLinear,
    /// A convolutional stem (paper: CNN backbone): `Conv2d` → ReLU →
    /// linear projection to the hidden width. Single input shape only.
    Conv {
        /// Spatial layout of the (single) input shape.
        shape: ConvShape,
        /// Square kernel size.
        kernel: usize,
        /// Number of filters.
        filters: usize,
    },
}

/// Architecture description for [`Encoder::new`].
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Input dimensionality per adapter. Homogeneous benchmarks (images)
    /// pass one entry; the tabular stream passes one per increment.
    pub input_dims: Vec<usize>,
    /// Hidden width of adapter outputs and backbone layers.
    pub hidden_dim: usize,
    /// Number of hidden backbone layers (beyond the adapter).
    pub backbone_layers: usize,
    /// Representation dimensionality `d` (paper: 2048 images, 128 tabular).
    pub repr_dim: usize,
    /// Input stem (linear adapters or a convolutional stem).
    pub stem: StemConfig,
}

impl EncoderConfig {
    /// Convenience config for a single-input-shape benchmark.
    pub fn image(input_dim: usize, hidden_dim: usize, repr_dim: usize) -> Self {
        Self {
            input_dims: vec![input_dim],
            hidden_dim,
            backbone_layers: 1,
            repr_dim,
            stem: StemConfig::PerTaskLinear,
        }
    }

    /// Convenience config for a convolutional image encoder.
    pub fn conv_image(
        shape: ConvShape,
        kernel: usize,
        filters: usize,
        hidden_dim: usize,
        repr_dim: usize,
    ) -> Self {
        Self {
            input_dims: vec![shape.dim()],
            hidden_dim,
            backbone_layers: 1,
            repr_dim,
            stem: StemConfig::Conv {
                shape,
                kernel,
                filters,
            },
        }
    }

    /// Convenience config for the heterogeneous tabular stream.
    pub fn tabular(input_dims: Vec<usize>, hidden_dim: usize, repr_dim: usize) -> Self {
        Self {
            input_dims,
            hidden_dim,
            backbone_layers: 2,
            repr_dim,
            stem: StemConfig::PerTaskLinear,
        }
    }
}

/// The instantiated stem.
#[derive(Debug, Clone)]
enum Stem {
    Linear(Vec<Linear>),
    Conv { conv: Conv2d, proj: Linear },
}

/// The model `f(·)` (architecture only — weights live in a [`ParamSet`],
/// so the frozen old model `f̃` is simply a cloned set).
#[derive(Debug, Clone)]
pub struct Encoder {
    stem: Stem,
    backbone: Mlp,
    projector: Mlp,
    repr_dim: usize,
}

impl Encoder {
    /// Builds the encoder, registering all parameters in `params`.
    ///
    /// All adapters are created up front (the task schedule's input shapes
    /// are known), so snapshots of `params` are structurally compatible
    /// across increments.
    ///
    /// # Panics
    /// Panics if `input_dims` is empty.
    pub fn new(params: &mut ParamSet, cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        assert!(
            !cfg.input_dims.is_empty(),
            "Encoder: need at least one input dim"
        );
        let stem = match &cfg.stem {
            StemConfig::PerTaskLinear => Stem::Linear(
                cfg.input_dims
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        Linear::new(
                            params,
                            &format!("enc.adapter{i}"),
                            d,
                            cfg.hidden_dim,
                            Init::He,
                            rng,
                        )
                    })
                    .collect(),
            ),
            StemConfig::Conv {
                shape,
                kernel,
                filters,
            } => {
                assert_eq!(
                    cfg.input_dims.len(),
                    1,
                    "Encoder: conv stem requires a single input shape"
                );
                assert_eq!(
                    cfg.input_dims[0],
                    shape.dim(),
                    "Encoder: conv shape mismatch"
                );
                let conv = Conv2d::new(params, "enc.conv", *shape, *kernel, *filters, rng);
                let proj = Linear::new(
                    params,
                    "enc.convproj",
                    conv.out_dim(),
                    cfg.hidden_dim,
                    Init::He,
                    rng,
                );
                Stem::Conv { conv, proj }
            }
        };
        let mut backbone_dims = vec![cfg.hidden_dim];
        backbone_dims.extend(std::iter::repeat_n(cfg.hidden_dim, cfg.backbone_layers));
        let backbone = Mlp::new(
            params,
            "enc.backbone",
            &backbone_dims,
            Activation::Relu,
            Init::He,
            rng,
        )
        .with_batch_norm(true);
        let projector = Mlp::new(
            params,
            "enc.projector",
            &[cfg.hidden_dim, cfg.repr_dim, cfg.repr_dim],
            Activation::Relu,
            Init::He,
            rng,
        )
        .with_batch_norm(true);
        Self {
            stem,
            backbone,
            projector,
            repr_dim: cfg.repr_dim,
        }
    }

    /// Representation dimensionality `d`.
    pub fn repr_dim(&self) -> usize {
        self.repr_dim
    }

    /// Number of input adapters (a conv stem counts as one shared adapter).
    pub fn num_adapters(&self) -> usize {
        match &self.stem {
            Stem::Linear(adapters) => adapters.len(),
            Stem::Conv { .. } => 1,
        }
    }

    /// Adapter index used for `task` (single-adapter encoders share 0).
    fn adapter_for(&self, task: usize) -> usize {
        let n = self.num_adapters();
        if n == 1 {
            0
        } else {
            assert!(task < n, "Encoder: no adapter for task {task}");
            task
        }
    }

    /// The eval-mode compute graph for one adapter, flattened to a pure
    /// linear chain: ordered `(weight, bias, relu_after)` triples for
    /// adapter → backbone → projector. Eval mode never standardizes
    /// (see [`forward_mode`](Self::forward_eval)), so this chain *is* the
    /// whole serve-time forward: ReLU follows every layer except the final
    /// projector layer. Returns `None` for conv stems, whose first stage
    /// is not a single linear map (`edsr-quant` rejects those models).
    ///
    /// `adapter` indexes [`num_adapters`](Self::num_adapters), not tasks;
    /// single-adapter encoders share entry 0 across all tasks.
    pub fn eval_linear_chain(&self, adapter: usize) -> Option<Vec<(ParamId, ParamId, bool)>> {
        let adapters = match &self.stem {
            Stem::Linear(adapters) => adapters,
            Stem::Conv { .. } => return None,
        };
        let mut chain = Vec::with_capacity(1 + self.backbone.depth() + self.projector.depth());
        let (w, b) = adapters[adapter].param_ids();
        chain.push((w, b, true));
        // Mlp applies the activation between layers only, but the encoder
        // adds a ReLU after the backbone output, so every backbone layer
        // ends up ReLU-terminated.
        for pair in self.backbone.param_ids().chunks_exact(2) {
            chain.push((pair[0], pair[1], true));
        }
        let proj = self.projector.param_ids();
        let depth = self.projector.depth();
        for (i, pair) in proj.chunks_exact(2).enumerate() {
            chain.push((pair[0], pair[1], i + 1 < depth));
        }
        Some(chain)
    }

    /// Records the full (train-mode) forward pass; returns
    /// `(backbone_out, repr)`.
    ///
    /// `backbone_out` is the pre-projector feature (what DER distills on);
    /// `repr` is the representation `x` used everywhere else.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: Var,
        task: usize,
    ) -> (Var, Var) {
        self.forward_mode(tape, binder, params, x, task, true)
    }

    /// Eval-mode forward: batch standardization in the backbone and
    /// projector is skipped, so each output row depends only on its own
    /// input row. Identical to [`forward`](Self::forward) for single-row
    /// batches (where BN statistics are undefined and already skipped);
    /// this is the mode `edsr-serve` uses so batched responses are
    /// bit-identical to single-request responses.
    pub fn forward_eval(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: Var,
        task: usize,
    ) -> (Var, Var) {
        self.forward_mode(tape, binder, params, x, task, false)
    }

    fn forward_mode(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: Var,
        task: usize,
        train: bool,
    ) -> (Var, Var) {
        let h = match &self.stem {
            Stem::Linear(adapters) => {
                let adapter = &adapters[self.adapter_for(task)];
                adapter.forward(tape, binder, params, x)
            }
            Stem::Conv { conv, proj } => {
                let fmap = conv.forward(tape, binder, params, x);
                let fmap = tape.relu(fmap);
                proj.forward(tape, binder, params, fmap)
            }
        };
        let h = tape.relu(h);
        let features = if train {
            self.backbone.forward(tape, binder, params, h)
        } else {
            self.backbone.forward_eval(tape, binder, params, h)
        };
        let features = tape.relu(features);
        let repr = if train {
            self.projector.forward(tape, binder, params, features)
        } else {
            self.projector.forward_eval(tape, binder, params, features)
        };
        (features, repr)
    }

    /// Records a no-gradient-needed representation forward on a
    /// caller-provided (typically auxiliary) tape, returning the repr node.
    /// Unlike [`represent`](Self::represent) the value stays pool-backed on
    /// `tape` — borrow it via `tape.value(var)` instead of cloning it out.
    pub fn represent_on(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: &Matrix,
        task: usize,
    ) -> Var {
        let input = tape.leaf_copy(x);
        let (_, repr) = self.forward(tape, binder, params, input, task);
        repr
    }

    /// Eval-mode sibling of [`represent_on`](Self::represent_on): the
    /// forward skips batch standardization, making every output row
    /// independent of its batch-mates (see
    /// [`forward_eval`](Self::forward_eval)).
    pub fn represent_eval_on(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        params: &ParamSet,
        x: &Matrix,
        task: usize,
    ) -> Var {
        let input = tape.leaf_copy(x);
        let (_, repr) = self.forward_eval(tape, binder, params, input, task);
        repr
    }

    /// Inference-only eval-mode representation extraction.
    pub fn represent_eval(&self, params: &ParamSet, x: &Matrix, task: usize) -> Matrix {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let repr = self.represent_eval_on(&mut tape, &mut binder, params, x, task);
        tape.value(repr).clone()
    }

    /// Inference-only representation extraction (no caller-visible tape).
    pub fn represent(&self, params: &ParamSet, x: &Matrix, task: usize) -> Matrix {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let repr = self.represent_on(&mut tape, &mut binder, params, x, task);
        tape.value(repr).clone()
    }

    /// Inference-only backbone features (DER's distillation medium).
    pub fn features(&self, params: &ParamSet, x: &Matrix, task: usize) -> Matrix {
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let input = tape.leaf_copy(x);
        let (features, _) = self.forward(&mut tape, &mut binder, params, input, task);
        tape.value(features).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edsr_tensor::rng::seeded;

    #[test]
    fn image_encoder_shapes() {
        let mut rng = seeded(200);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(&mut ps, &EncoderConfig::image(48, 32, 16), &mut rng);
        assert_eq!(enc.repr_dim(), 16);
        assert_eq!(enc.num_adapters(), 1);
        let x = Matrix::randn(5, 48, 1.0, &mut rng);
        let r = enc.represent(&ps, &x, 0);
        assert_eq!(r.shape(), (5, 16));
        let f = enc.features(&ps, &x, 0);
        assert_eq!(f.shape(), (5, 32));
    }

    #[test]
    fn single_adapter_shared_across_tasks() {
        let mut rng = seeded(201);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(&mut ps, &EncoderConfig::image(8, 8, 4), &mut rng);
        let x = Matrix::randn(2, 8, 1.0, &mut rng);
        let a = enc.represent(&ps, &x, 0);
        let b = enc.represent(&ps, &x, 7);
        assert_eq!(
            a.max_abs_diff(&b),
            0.0,
            "shared adapter must ignore task id"
        );
    }

    #[test]
    fn tabular_adapters_unify_dimensions() {
        let mut rng = seeded(202);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(
            &mut ps,
            &EncoderConfig::tabular(vec![16, 17, 14], 24, 12),
            &mut rng,
        );
        assert_eq!(enc.num_adapters(), 3);
        for (task, d) in [16usize, 17, 14].iter().enumerate() {
            let x = Matrix::randn(3, *d, 1.0, &mut rng);
            let r = enc.represent(&ps, &x, task);
            assert_eq!(r.shape(), (3, 12));
        }
    }

    #[test]
    #[should_panic(expected = "no adapter for task")]
    fn missing_adapter_panics() {
        let mut rng = seeded(203);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(&mut ps, &EncoderConfig::tabular(vec![4, 5], 8, 4), &mut rng);
        let x = Matrix::randn(1, 9, 1.0, &mut rng);
        let _ = enc.represent(&ps, &x, 2);
    }

    #[test]
    fn eval_represent_is_row_independent_and_matches_single_row() {
        let mut rng = seeded(208);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(&mut ps, &EncoderConfig::image(12, 16, 8), &mut rng);
        let x = Matrix::randn(5, 12, 1.0, &mut rng);
        let batched = enc.represent_eval(&ps, &x, 0);
        for i in 0..x.rows() {
            let row = Matrix::from_vec(1, 12, x.row(i).to_vec());
            let solo_eval = enc.represent_eval(&ps, &row, 0);
            let solo_train = enc.represent(&ps, &row, 0);
            let batch_bits: Vec<u32> = batched.row(i).iter().map(|v| v.to_bits()).collect();
            let eval_bits: Vec<u32> = solo_eval.row(0).iter().map(|v| v.to_bits()).collect();
            let train_bits: Vec<u32> = solo_train.row(0).iter().map(|v| v.to_bits()).collect();
            assert_eq!(batch_bits, eval_bits, "row {i} depends on batch-mates");
            assert_eq!(
                eval_bits, train_bits,
                "row {i}: eval and train modes disagree on a single row"
            );
        }
    }

    #[test]
    fn snapshot_clone_freezes_old_model() {
        let mut rng = seeded(204);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(&mut ps, &EncoderConfig::image(8, 8, 4), &mut rng);
        let x = Matrix::randn(2, 8, 1.0, &mut rng);
        let before = enc.represent(&ps, &x, 0);
        let frozen = ps.snapshot();

        // Mutate the live parameters.
        for id in ps.ids().collect::<Vec<_>>() {
            ps.value_mut(id).scale_inplace(1.3);
        }
        let after = enc.represent(&ps, &x, 0);
        assert!(after.max_abs_diff(&before) > 1e-4);

        // Restore → old behaviour returns.
        ps.restore(&frozen);
        let restored = enc.represent(&ps, &x, 0);
        assert!(restored.max_abs_diff(&before) < 1e-6);
    }

    #[test]
    fn conv_stem_shapes_and_gradients() {
        let mut rng = seeded(206);
        let mut ps = ParamSet::new();
        let shape = ConvShape {
            channels: 3,
            height: 6,
            width: 6,
        };
        let cfg = EncoderConfig::conv_image(shape, 3, 4, 24, 12);
        let enc = Encoder::new(&mut ps, &cfg, &mut rng);
        assert_eq!(enc.num_adapters(), 1);
        let x = Matrix::randn(5, shape.dim(), 1.0, &mut rng);
        let r = enc.represent(&ps, &x, 0);
        assert_eq!(r.shape(), (5, 12));

        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let vx = tape.leaf(x);
        let (_, repr) = enc.forward(&mut tape, &mut binder, &ps, vx, 0);
        let sq = tape.square(repr);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        ps.zero_grads();
        binder.accumulate_into(&grads, &mut ps);
        let conv_grad: f32 = ps
            .ids()
            .filter(|&id| ps.name(id).starts_with("enc.conv"))
            .map(|id| ps.grad(id).frobenius_norm())
            .sum();
        assert!(conv_grad > 0.0, "conv stem received no gradient");
    }

    #[test]
    #[should_panic(expected = "conv shape mismatch")]
    fn conv_stem_dim_mismatch_panics() {
        let mut rng = seeded(207);
        let mut ps = ParamSet::new();
        let shape = ConvShape {
            channels: 1,
            height: 4,
            width: 4,
        };
        let mut cfg = EncoderConfig::conv_image(shape, 3, 2, 8, 4);
        cfg.input_dims = vec![99];
        let _ = Encoder::new(&mut ps, &cfg, &mut rng);
    }

    #[test]
    fn gradients_reach_all_components() {
        let mut rng = seeded(205);
        let mut ps = ParamSet::new();
        let enc = Encoder::new(&mut ps, &EncoderConfig::image(6, 10, 5), &mut rng);
        let mut tape = Tape::new();
        let mut binder = Binder::new();
        let x = tape.leaf(Matrix::randn(4, 6, 1.0, &mut rng));
        let (_, repr) = enc.forward(&mut tape, &mut binder, &ps, x, 0);
        let sq = tape.square(repr);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        ps.zero_grads();
        binder.accumulate_into(&grads, &mut ps);
        let nonzero = ps
            .ids()
            .filter(|&id| ps.grad(id).frobenius_norm() > 0.0)
            .count();
        // Adapter (w,b) + backbone (w,b) + projector 2×(w,b) = 8 params.
        assert!(nonzero >= 6, "only {nonzero} params received gradient");
    }
}
