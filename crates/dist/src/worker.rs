//! The worker: a full training replica driven by the parameter server.
//!
//! A worker builds the *entire* run locally from the Welcome's
//! [`DistSpec`] — data sequence, augmenters, model, method — exactly as
//! `edsr run` would, then enters a PULL loop. Every work item carries
//! the canonical parameter version and RNG position to start from, so
//! the worker holds no authoritative state: it can crash, reconnect,
//! and recompute any item bit-identically. Gradients are computed via
//! [`edsr_cl::compute_step_grads`] (a no-op optimizer captures them
//! without updating parameters) and shipped back with the post-step RNG
//! state; boundary ops (`begin_task`/`end_task`) run redundantly on
//! every worker and are cross-checked at a server barrier.
//!
//! For chaos testing, each connection attempt can be wrapped in an
//! `edsr-serve` [`FaultyStream`]: `WorkerOptions::chaos` holds one fault
//! plan per *attempt* (consumed in order, later attempts run clean), so
//! an injected disconnect cannot re-arm itself into a livelock.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use edsr_cl::{compute_step_grads, evaluate_cell, ContinualModel, Method, ModelConfig};
use edsr_data::{Augmenter, Dataset, TaskSequence};
use edsr_nn::io::params_to_bytes;
use edsr_nn::Workspace;
use edsr_serve::{FaultyStream, WireFaultPlan};
use edsr_tensor::rng::seeded;
use rand::rngs::StdRng;

use crate::codec::{decode_tensors, encode_tensors, tensor_bits};
use crate::protocol::{ParamsBlob, PushBody, Request, Response, WorkItem, DIST_PROTOCOL_VERSION};
use crate::spec::{build_method, preset_for, DistSpec};
use crate::DistError;

/// Worker behaviour knobs.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Fault plans, one per connection attempt (first connect uses
    /// `chaos[0]`, the reconnect after it `chaos[1]`, …). Attempts past
    /// the end of the list run on a clean stream.
    pub chaos: Vec<WireFaultPlan>,
    /// Give up after this many reconnects (0 uses the default of 64).
    pub max_reconnects: usize,
    /// Delay between reconnect attempts (0 uses the default of 20ms).
    pub reconnect_delay_ms: u64,
}

impl WorkerOptions {
    fn max_reconnects(&self) -> usize {
        if self.max_reconnects == 0 {
            64
        } else {
            self.max_reconnects
        }
    }

    fn reconnect_delay(&self) -> Duration {
        Duration::from_millis(if self.reconnect_delay_ms == 0 {
            20
        } else {
            self.reconnect_delay_ms
        })
    }
}

/// What a worker did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Assigned worker id.
    pub worker_id: u32,
    /// Training steps computed (including superseded recomputations).
    pub steps: u64,
    /// Evaluation cells computed.
    pub eval_cells: u64,
    /// Boundary ops run.
    pub boundaries: u64,
    /// Reconnects performed.
    pub reconnects: u64,
    /// Last parameter version held.
    pub final_version: u64,
    /// Wire faults injected across all chaos-wrapped connections.
    pub faults_injected: u64,
}

/// One live connection, possibly wrapped in a fault injector.
enum Transport {
    Plain(TcpStream),
    Faulty(FaultyStream<TcpStream>),
}

impl Transport {
    fn injected(&self) -> u64 {
        match self {
            Transport::Plain(_) => 0,
            Transport::Faulty(s) => s.injected(),
        }
    }
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.read(buf),
            Transport::Faulty(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Plain(s) => s.write(buf),
            Transport::Faulty(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Plain(s) => s.flush(),
            Transport::Faulty(s) => s.flush(),
        }
    }
}

/// The replica a worker reconstructs from the Welcome spec. Built once
/// — method state accumulates across reconnects and must never reset.
struct Built {
    seq: TaskSequence,
    augmenters: Vec<Augmenter>,
    model: ContinualModel,
    method: Box<dyn Method>,
    ws: Workspace,
    spec: DistSpec,
}

fn build(spec: DistSpec) -> Result<Built, DistError> {
    let preset = preset_for(&spec).ok_or_else(|| {
        DistError::Failed(format!(
            "server spec names unknown preset {:?}",
            spec.preset
        ))
    })?;
    let (seq, augmenters) = preset.build_with_augmenters(&mut seeded(spec.seed));
    // Cross-increment shape validation through the structured try-variants:
    // a malformed spec/preset combination surfaces here as a DistError
    // instead of a panic deep inside an increment.
    let train_parts: Vec<&Dataset> = seq.tasks.iter().map(|t| &t.train).collect();
    Dataset::try_concat("spec-validation", &train_parts)
        .map_err(|e| DistError::Failed(format!("spec data validation: {e}")))?;
    let model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(spec.seed + 1000),
    );
    let method = build_method(&spec, &preset).ok_or_else(|| {
        DistError::Failed(format!(
            "server spec names unknown method {:?}",
            spec.method
        ))
    })?;
    Ok(Built {
        seq,
        augmenters,
        model,
        method,
        ws: Workspace::new(),
        spec,
    })
}

/// Cached result of the last boundary op, keyed by barrier generation.
/// A boundary item re-pulled after a reconnect mid-barrier must not
/// re-run the op (method state already advanced); the cached report is
/// re-sent instead.
#[derive(Clone, Copy)]
struct BoundaryDone {
    gen: u64,
    rng: [u64; 4],
    state_crc: u32,
    params_crc: u32,
}

/// A process-unique, time-salted session token. Registration on the
/// server is keyed by it, so retrying a HELLO whose Welcome got lost
/// re-attaches instead of leaking a worker slot. Plays no part in any
/// training computation, so its entropy source cannot affect
/// determinism.
fn session_token() -> u64 {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let salt = (u64::from(std::process::id()) << 32) ^ COUNTER.fetch_add(1, Ordering::Relaxed);
    (nanos ^ salt.rotate_left(17)).max(1)
}

struct Worker {
    opts: WorkerOptions,
    built: Option<Built>,
    worker_id: u32,
    token: u64,
    held_version: u64,
    held_bits: Vec<Vec<u32>>,
    last_boundary: Option<BoundaryDone>,
    sparse_threshold: f32,
    poll_ms: u64,
    report: WorkerReport,
}

/// Errors that should trigger a reconnect rather than abort the worker:
/// socket failures, responses that failed their CRC, and server-side
/// `ERR_CORRUPT` rejections (the request was corrupted in flight and
/// never acted on).
fn transient(e: &DistError) -> bool {
    matches!(
        e,
        DistError::Io(_)
            | DistError::Protocol(_)
            | DistError::Rejected {
                code: crate::protocol::ERR_CORRUPT,
                ..
            }
    )
}

fn exchange(conn: &mut Transport, req: &Request) -> Result<Response, DistError> {
    edsr_wire::write_frame(conn, &req.encode()).map_err(frame_err)?;
    let mut buf = Vec::new();
    match edsr_wire::read_frame(conn, &mut buf).map_err(frame_err)? {
        true => {}
        false => {
            return Err(DistError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )))
        }
    }
    Response::decode(&buf).map_err(DistError::Protocol)
}

fn frame_err(e: edsr_wire::FrameError) -> DistError {
    match e {
        edsr_wire::FrameError::Io(io) => DistError::Io(io),
        other => DistError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            other.to_string(),
        )),
    }
}

/// Maps a server `Err` response to a `DistError`.
fn rejected(code: u16, message: String) -> DistError {
    DistError::Rejected { code, message }
}

impl Worker {
    fn connect(&mut self, addr: &str, attempt: usize) -> Result<Transport, DistError> {
        let stream = TcpStream::connect(addr).map_err(DistError::Io)?;
        let _ = stream.set_nodelay(true);
        // A stuck server should surface as an error, not a hang; the
        // server replies to every request promptly by design.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        Ok(match self.opts.chaos.get(attempt) {
            Some(plan) => Transport::Faulty(FaultyStream::new(stream, plan.clone())),
            None => Transport::Plain(stream),
        })
    }

    fn hello(&mut self, conn: &mut Transport) -> Result<(), DistError> {
        let resp = exchange(
            conn,
            &Request::Hello {
                proto: DIST_PROTOCOL_VERSION,
                token: self.token,
            },
        )?;
        match resp {
            Response::Welcome {
                worker,
                sparse_threshold,
                poll_ms,
                spec,
                ..
            } => {
                self.worker_id = worker;
                self.sparse_threshold = sparse_threshold;
                self.poll_ms = poll_ms.max(1);
                if self.built.is_none() {
                    self.built = Some(build(spec)?);
                }
                Ok(())
            }
            Response::Err { code, message } => Err(rejected(code, message)),
            other => Err(DistError::Failed(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// Installs a parameter payload into the local model, maintaining
    /// the XOR baseline bits.
    fn apply_params(&mut self, blob: &ParamsBlob) -> Result<(), DistError> {
        let built = self.built.as_mut().expect("built before first pull");
        let decoded = match blob.base_version {
            Some(base) => {
                if base != self.held_version || self.held_bits.is_empty() {
                    return Err(DistError::Failed(format!(
                        "server sent a delta against version {base}, worker holds {}",
                        self.held_version
                    )));
                }
                decode_tensors(&blob.payload, Some(&self.held_bits))
            }
            None => decode_tensors(&blob.payload, None),
        }
        .map_err(|e| DistError::Failed(format!("parameter payload: {e}")))?;
        let ids: Vec<_> = built.model.params.ids().collect();
        if decoded.len() != ids.len() {
            return Err(DistError::Failed(format!(
                "parameter payload has {} tensors, model has {}",
                decoded.len(),
                ids.len()
            )));
        }
        for (id, t) in ids.iter().zip(&decoded) {
            let dst = built.model.params.value_mut(*id).data_mut();
            if dst.len() != t.len() {
                return Err(DistError::Failed("parameter payload shape mismatch".into()));
            }
            dst.copy_from_slice(t);
        }
        let slices: Vec<&[f32]> = decoded.iter().map(Vec::as_slice).collect();
        self.held_bits = tensor_bits(&slices);
        self.held_version = blob.version;
        self.report.final_version = blob.version;
        Ok(())
    }

    fn run_boundary(
        &mut self,
        task: usize,
        end: bool,
        gen: u64,
        params: &ParamsBlob,
        rng: [u64; 4],
    ) -> Result<BoundaryDone, DistError> {
        if let Some(done) = self.last_boundary {
            if done.gen == gen {
                return Ok(done); // op already ran; re-send the cached report
            }
        }
        self.apply_params(params)?;
        let built = self.built.as_mut().expect("built before first pull");
        let mut r = StdRng::from_state(rng);
        let task_data = &built.seq.tasks[task];
        if end {
            built.method.end_task(
                &mut built.model,
                task,
                &task_data.train,
                &built.augmenters[task],
                &mut r,
            );
        } else {
            built
                .method
                .begin_task(&mut built.model, task, &task_data.train, &mut r);
        }
        self.report.boundaries += 1;
        let state_crc = edsr_wire::crc32(&built.method.save_state().unwrap_or_default());
        let params_crc = edsr_wire::crc32(&params_to_bytes(&built.model.params));
        let done = BoundaryDone {
            gen,
            rng: r.state(),
            state_crc,
            params_crc,
        };
        self.last_boundary = Some(done);
        Ok(done)
    }

    fn barrier(&mut self, conn: &mut Transport, done: BoundaryDone) -> Result<(), DistError> {
        loop {
            let resp = exchange(
                conn,
                &Request::Barrier {
                    worker: self.worker_id,
                    gen: done.gen,
                    rng: done.rng,
                    state_crc: done.state_crc,
                    params_crc: done.params_crc,
                },
            )?;
            match resp {
                Response::Barrier { released: true, .. } => return Ok(()),
                Response::Barrier {
                    released: false,
                    poll_ms,
                } => std::thread::sleep(Duration::from_millis(poll_ms.max(1))),
                Response::Err { code, message } => return Err(rejected(code, message)),
                other => {
                    return Err(DistError::Failed(format!(
                        "expected Barrier, got {other:?}"
                    )))
                }
            }
        }
    }

    fn run_step(
        &mut self,
        task: usize,
        lr: f32,
        batch: &[u32],
        params: &ParamsBlob,
        rng: [u64; 4],
    ) -> Result<PushBody, DistError> {
        self.apply_params(params)?;
        let built = self.built.as_mut().expect("built before first pull");
        let mut r = StdRng::from_state(rng);
        let idx: Vec<usize> = batch.iter().map(|&i| i as usize).collect();
        let batch_m = built.seq.tasks[task].train.inputs.select_rows(&idx);
        let loss = compute_step_grads(
            built.method.as_mut(),
            &mut built.model,
            &built.augmenters,
            &batch_m,
            task,
            lr,
            &mut built.ws,
            &mut r,
        );
        self.report.steps += 1;
        // Non-finite losses short-circuit before gradients are written;
        // ship an empty payload — the server fails the run on the loss
        // value before it would look at the gradients.
        let grads = if loss.is_finite() {
            let ids: Vec<_> = built.model.params.ids().collect();
            let tensors: Vec<&[f32]> = ids
                .iter()
                .map(|id| built.model.params.grad(*id).data())
                .collect();
            encode_tensors(&tensors, None, self.sparse_threshold)
                .map_err(|e| DistError::Failed(format!("gradient encode: {e}")))?
        } else {
            encode_tensors(&[], None, self.sparse_threshold)
                .map_err(|e| DistError::Failed(format!("gradient encode: {e}")))?
        };
        Ok(PushBody::Grads {
            version: params.version,
            shard: 0,
            shards: 1,
            loss,
            rng: r.state(),
            grads,
        })
    }

    fn run_eval(
        &mut self,
        task: usize,
        col: usize,
        params: &ParamsBlob,
    ) -> Result<PushBody, DistError> {
        self.apply_params(params)?;
        let built = self.built.as_ref().expect("built before first pull");
        let acc = evaluate_cell(&built.model, &mut &built.seq, col, built.spec.train.eval_k)
            .map_err(|e| DistError::Failed(format!("eval cell {col}: {e}")))?;
        self.report.eval_cells += 1;
        Ok(PushBody::EvalCell {
            task: task as u32,
            col: col as u32,
            acc,
        })
    }

    fn push(&mut self, conn: &mut Transport, body: PushBody) -> Result<(), DistError> {
        let resp = exchange(
            conn,
            &Request::Push {
                worker: self.worker_id,
                body,
            },
        )?;
        match resp {
            Response::Ack { .. } => Ok(()),
            Response::Err { code, message } => Err(rejected(code, message)),
            other => Err(DistError::Failed(format!("expected Ack, got {other:?}"))),
        }
    }

    /// One connection's work loop; returns `Ok(true)` when the run is
    /// done, `Ok(false)` never (loops), `Err` on any failure — transient
    /// ones trigger a reconnect in the caller.
    fn serve_connection(&mut self, conn: &mut Transport) -> Result<bool, DistError> {
        loop {
            let resp = exchange(
                conn,
                &Request::Pull {
                    worker: self.worker_id,
                    have_version: self.held_version,
                },
            )?;
            let item = match resp {
                Response::Work(item) => item,
                Response::Err { code, message } => return Err(rejected(code, message)),
                other => {
                    return Err(DistError::Failed(format!(
                        "expected a work item, got {other:?}"
                    )))
                }
            };
            match item {
                WorkItem::Wait { poll_ms } => {
                    std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
                }
                WorkItem::Boundary {
                    task,
                    end,
                    gen,
                    params,
                    rng,
                } => {
                    let done = self.run_boundary(task as usize, end, gen, &params, rng)?;
                    self.barrier(conn, done)?;
                }
                WorkItem::Step {
                    task,
                    lr,
                    batch,
                    params,
                    rng,
                    ..
                } => {
                    let body = self.run_step(task as usize, lr, &batch, &params, rng)?;
                    self.push(conn, body)?;
                }
                WorkItem::Eval { task, col, params } => {
                    let body = self.run_eval(task as usize, col as usize, &params)?;
                    self.push(conn, body)?;
                }
                WorkItem::Done => return Ok(true),
            }
        }
    }
}

/// Runs a worker against the parameter server at `addr` until the run
/// completes (`Done`), the server rejects it, or the reconnect budget is
/// exhausted.
pub fn run_worker(addr: &str, opts: WorkerOptions) -> Result<WorkerReport, DistError> {
    let max_reconnects = opts.max_reconnects();
    let delay = opts.reconnect_delay();
    let mut w = Worker {
        opts,
        built: None,
        worker_id: 0,
        token: session_token(),
        held_version: 0,
        held_bits: Vec::new(),
        last_boundary: None,
        sparse_threshold: 0.25,
        poll_ms: 5,
        report: WorkerReport::default(),
    };
    let mut attempt = 0usize;
    loop {
        let result = (|| -> Result<bool, DistError> {
            let mut conn = w.connect(addr, attempt)?;
            let served = (|| {
                w.hello(&mut conn)?;
                w.serve_connection(&mut conn)
            })();
            w.report.faults_injected += conn.injected();
            served
        })();
        attempt += 1;
        match result {
            Ok(true) => {
                w.report.worker_id = w.worker_id;
                w.report.reconnects = (attempt - 1) as u64;
                if edsr_obs::enabled() {
                    edsr_obs::counter("dist/worker_steps", w.report.steps);
                    edsr_obs::counter("dist/worker_reconnects", w.report.reconnects);
                }
                return Ok(w.report);
            }
            Ok(false) => unreachable!("serve_connection loops until Done or error"),
            Err(e) if transient(&e) => {
                if attempt > max_reconnects {
                    return Err(e);
                }
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
    }
}
