//! Sparse/delta tensor codec for gradient pushes and parameter pulls.
//!
//! A tensor set (gradients of every parameter, or every parameter's
//! values) is encoded per tensor in one of three modes:
//!
//! - [`MODE_DENSE_RAW`] — all `len` values as raw f32 little-endian bits.
//! - [`MODE_SPARSE_RAW`] — only entries whose value **bits** are nonzero,
//!   as `(index: u32, bits: u32)` pairs.
//! - [`MODE_SPARSE_XOR`] — only entries whose bits differ from a shared
//!   baseline, as `(index: u32, bits ^ base_bits)` pairs; decoding XORs
//!   the delta back onto the baseline.
//!
//! Everything is defined over *bit patterns*, never float arithmetic:
//! `-0.0` and NaN payloads survive the round trip exactly (an additive
//! delta would turn `-0.0` into `+0.0` and lose bit-identity, which is
//! the whole contract of the dist layer). The encoder picks, per tensor,
//! the cheaper of raw-sparse and xor-sparse and falls back to dense when
//! the surviving entry count exceeds `threshold × len` — a sparse entry
//! costs 8 bytes against dense's 4, so the default threshold (0.25)
//! keeps sparse strictly cheaper.
//!
//! Wire layout (all little-endian):
//!
//! ```text
//! count: u32                      number of tensors
//! per tensor:
//!   len:  u32                     element count
//!   mode: u8                      0 dense | 1 sparse-raw | 2 sparse-xor
//!   dense:  len × f32 bits
//!   sparse: nnz u32, nnz × (index u32, bits u32)
//! ```

use std::fmt;

/// Every element shipped as raw f32 bits.
pub const MODE_DENSE_RAW: u8 = 0;
/// Only bit-nonzero elements shipped, against an implicit all-zero base.
pub const MODE_SPARSE_RAW: u8 = 1;
/// Only changed elements shipped, as XOR deltas against a shared baseline.
pub const MODE_SPARSE_XOR: u8 = 2;

/// Decode/encode failures of the tensor codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorCodecError {
    /// Payload ended before the declared data.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// Unknown per-tensor mode byte.
    BadMode(u8),
    /// A sparse entry's index is out of range for its tensor.
    BadIndex {
        /// The offending index.
        index: u32,
        /// The tensor's element count.
        len: u32,
    },
    /// An XOR-mode tensor was (de)coded without a matching baseline —
    /// wrong tensor count, wrong length, or no baseline at all.
    BaselineMismatch(String),
    /// Bytes remained after the declared tensors.
    Trailing(usize),
}

impl fmt::Display for TensorCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorCodecError::Truncated { expected, got } => {
                write!(f, "codec truncated: needed {expected} bytes, had {got}")
            }
            TensorCodecError::BadMode(m) => write!(f, "codec: unknown tensor mode {m}"),
            TensorCodecError::BadIndex { index, len } => {
                write!(f, "codec: sparse index {index} out of range for len {len}")
            }
            TensorCodecError::BaselineMismatch(m) => write!(f, "codec baseline mismatch: {m}"),
            TensorCodecError::Trailing(n) => write!(f, "codec: {n} trailing bytes"),
        }
    }
}

impl std::error::Error for TensorCodecError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TensorCodecError> {
        let got = self.bytes.len() - self.pos;
        if got < n {
            return Err(TensorCodecError::Truncated { expected: n, got });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TensorCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TensorCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// Checks an encoder/decoder baseline against the tensor set shape.
fn check_baseline(
    baseline: &[Vec<u32>],
    count: usize,
    which: usize,
    len: usize,
) -> Result<(), TensorCodecError> {
    if baseline.len() != count {
        return Err(TensorCodecError::BaselineMismatch(format!(
            "baseline has {} tensors, payload has {count}",
            baseline.len()
        )));
    }
    if baseline[which].len() != len {
        return Err(TensorCodecError::BaselineMismatch(format!(
            "tensor {which}: baseline len {} vs payload len {len}",
            baseline[which].len()
        )));
    }
    Ok(())
}

/// Encodes a tensor set. `baseline` (bit patterns, same shapes) enables
/// XOR-delta mode; `threshold` is the max surviving-entry density for a
/// sparse mode (above it the tensor ships dense).
pub fn encode_tensors(
    tensors: &[&[f32]],
    baseline: Option<&[Vec<u32>]>,
    threshold: f32,
) -> Result<Vec<u8>, TensorCodecError> {
    let mut out = Vec::new();
    put_u32(&mut out, tensors.len() as u32);
    for (which, t) in tensors.iter().enumerate() {
        let base = match baseline {
            Some(b) => {
                check_baseline(b, tensors.len(), which, t.len())?;
                Some(&b[which])
            }
            None => None,
        };
        put_u32(&mut out, t.len() as u32);
        let raw_nnz = t.iter().filter(|v| v.to_bits() != 0).count();
        let (mode, nnz) = match base {
            Some(b) => {
                let xor_nnz = t
                    .iter()
                    .zip(b.iter())
                    .filter(|(v, &bb)| v.to_bits() ^ bb != 0)
                    .count();
                if xor_nnz < raw_nnz {
                    (MODE_SPARSE_XOR, xor_nnz)
                } else {
                    (MODE_SPARSE_RAW, raw_nnz)
                }
            }
            None => (MODE_SPARSE_RAW, raw_nnz),
        };
        if nnz as f64 > f64::from(threshold) * t.len() as f64 {
            out.push(MODE_DENSE_RAW);
            for v in *t {
                out.extend_from_slice(&v.to_le_bytes());
            }
            continue;
        }
        out.push(mode);
        put_u32(&mut out, nnz as u32);
        match mode {
            MODE_SPARSE_RAW => {
                for (i, v) in t.iter().enumerate() {
                    if v.to_bits() != 0 {
                        put_u32(&mut out, i as u32);
                        put_u32(&mut out, v.to_bits());
                    }
                }
            }
            MODE_SPARSE_XOR => {
                let b = base.expect("xor mode implies a baseline");
                for (i, (v, &bb)) in t.iter().zip(b.iter()).enumerate() {
                    let delta = v.to_bits() ^ bb;
                    if delta != 0 {
                        put_u32(&mut out, i as u32);
                        put_u32(&mut out, delta);
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    Ok(out)
}

/// Decodes a tensor set produced by [`encode_tensors`]. `baseline` must
/// be the same bit patterns the encoder used whenever any tensor is in
/// XOR mode.
pub fn decode_tensors(
    bytes: &[u8],
    baseline: Option<&[Vec<u32>]>,
) -> Result<Vec<Vec<f32>>, TensorCodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for which in 0..count {
        let len = r.u32()? as usize;
        let mode = r.u8()?;
        let mut bits: Vec<u32> = match mode {
            MODE_DENSE_RAW => {
                let raw = r.take(len * 4)?;
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
            MODE_SPARSE_RAW => vec![0u32; len],
            MODE_SPARSE_XOR => {
                let b = baseline.ok_or_else(|| {
                    TensorCodecError::BaselineMismatch(format!(
                        "tensor {which} is xor-coded but no baseline was supplied"
                    ))
                })?;
                check_baseline(b, count, which, len)?;
                b[which].clone()
            }
            m => return Err(TensorCodecError::BadMode(m)),
        };
        if mode != MODE_DENSE_RAW {
            let nnz = r.u32()? as usize;
            for _ in 0..nnz {
                let index = r.u32()?;
                let value = r.u32()?;
                let slot = bits
                    .get_mut(index as usize)
                    .ok_or(TensorCodecError::BadIndex {
                        index,
                        len: len as u32,
                    })?;
                match mode {
                    MODE_SPARSE_RAW => *slot = value,
                    _ => *slot ^= value,
                }
            }
        }
        out.push(bits.into_iter().map(f32::from_bits).collect());
    }
    if r.pos != bytes.len() {
        return Err(TensorCodecError::Trailing(bytes.len() - r.pos));
    }
    Ok(out)
}

/// The bit patterns of a tensor set — the baseline form both sides keep.
pub fn tensor_bits(tensors: &[&[f32]]) -> Vec<Vec<u32>> {
    tensors
        .iter()
        .map(|t| t.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(tensors: &[Vec<f32>], baseline: Option<&[Vec<u32>]>, threshold: f32) {
        let refs: Vec<&[f32]> = tensors.iter().map(|t| t.as_slice()).collect();
        let bytes = encode_tensors(&refs, baseline, threshold).expect("encode");
        let back = decode_tensors(&bytes, baseline).expect("decode");
        assert_eq!(back.len(), tensors.len());
        for (a, b) in tensors.iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-identity violated");
            }
        }
    }

    #[test]
    fn empty_set_and_empty_tensors() {
        roundtrip(&[], None, 0.25);
        roundtrip(&[vec![], vec![]], None, 0.25);
        roundtrip(&[vec![]], Some(&[vec![]]), 0.25);
    }

    #[test]
    fn all_zero_tensor_is_tiny() {
        let t = vec![vec![0.0f32; 4096]];
        let refs: Vec<&[f32]> = t.iter().map(|x| x.as_slice()).collect();
        let bytes = encode_tensors(&refs, None, 0.25).unwrap();
        // count + len + mode + nnz — no entries.
        assert_eq!(bytes.len(), 4 + 4 + 1 + 4);
        roundtrip(&t, None, 0.25);
    }

    #[test]
    fn fully_dense_tensor_falls_back_to_raw() {
        let t = vec![(0..1024).map(|i| i as f32 + 0.5).collect::<Vec<f32>>()];
        let refs: Vec<&[f32]> = t.iter().map(|x| x.as_slice()).collect();
        let bytes = encode_tensors(&refs, None, 0.25).unwrap();
        assert_eq!(bytes[8], MODE_DENSE_RAW);
        assert_eq!(bytes.len(), 4 + 4 + 1 + 1024 * 4);
        roundtrip(&t, None, 0.25);
    }

    #[test]
    fn negative_zero_and_nan_survive_bit_exactly() {
        let t = vec![vec![
            -0.0f32,
            0.0,
            f32::NAN,
            f32::from_bits(0x7fc0_1234), // NaN with a payload
            f32::NEG_INFINITY,
            1.0e-45, // subnormal
        ]];
        roundtrip(&t, None, 1.0);
        // And through the xor path, against a baseline of ordinary values.
        let base = tensor_bits(&[&[1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        roundtrip(&t, Some(&base), 1.0);
    }

    #[test]
    fn tile_edge_lengths() {
        // Lengths that straddle typical SIMD tile edges: 1, 7, 8, 9, 63,
        // 64, 65 — off-by-one bugs in chunked encode/decode live here.
        for len in [1usize, 7, 8, 9, 63, 64, 65] {
            let dense: Vec<f32> = (0..len).map(|i| (i as f32) - 3.0).collect();
            let mut sparse = vec![0.0f32; len];
            sparse[len / 2] = 42.0;
            roundtrip(&[dense.clone(), sparse.clone()], None, 0.25);
            let base = tensor_bits(&[dense.as_slice(), sparse.as_slice()]);
            roundtrip(&[dense, sparse], Some(&base), 0.25);
        }
    }

    #[test]
    fn xor_mode_chosen_when_baseline_close() {
        // 1000 elements, only 3 differ from the baseline: xor-sparse wins.
        let base_vals: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut t = base_vals.clone();
        t[10] = -1.0;
        t[500] = 2.5;
        t[999] = f32::MIN_POSITIVE;
        let base = tensor_bits(&[base_vals.as_slice()]);
        let bytes = encode_tensors(&[&t], Some(&base), 0.25).unwrap();
        assert_eq!(bytes[8], MODE_SPARSE_XOR);
        assert_eq!(bytes.len(), 4 + 4 + 1 + 4 + 3 * 8);
        let back = decode_tensors(&bytes, Some(&base)).unwrap();
        for (x, y) in t.iter().zip(&back[0]) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn xor_payload_without_baseline_is_rejected() {
        let base_vals = vec![1.0f32; 64];
        let t: Vec<f32> = base_vals.iter().map(|v| v + 0.0).collect();
        let mut changed = t.clone();
        changed[0] = 9.0;
        let base = tensor_bits(&[base_vals.as_slice()]);
        let bytes = encode_tensors(&[&changed], Some(&base), 0.25).unwrap();
        assert_eq!(bytes[8], MODE_SPARSE_XOR);
        assert!(matches!(
            decode_tensors(&bytes, None),
            Err(TensorCodecError::BaselineMismatch(_))
        ));
        // Wrong-shape baseline is rejected too.
        let short = tensor_bits(&[&base_vals[..32]]);
        assert!(matches!(
            decode_tensors(&bytes, Some(&short)),
            Err(TensorCodecError::BaselineMismatch(_))
        ));
    }

    #[test]
    fn corrupt_payloads_are_structured_errors() {
        let t = [vec![1.0f32, 0.0, 3.0]];
        let refs: Vec<&[f32]> = t.iter().map(|x| x.as_slice()).collect();
        let bytes = encode_tensors(&refs, None, 1.0).unwrap();
        // Every truncation point errors, never panics.
        for cut in 0..bytes.len() {
            assert!(decode_tensors(&bytes[..cut], None).is_err());
        }
        // Trailing garbage detected.
        let mut extra = bytes.clone();
        extra.push(0xFF);
        assert!(matches!(
            decode_tensors(&extra, None),
            Err(TensorCodecError::Trailing(1))
        ));
        // Unknown mode detected.
        let mut bad = bytes;
        bad[8] = 9;
        assert!(matches!(
            decode_tensors(&bad, None),
            Err(TensorCodecError::BadMode(9))
        ));
    }

    #[test]
    fn out_of_range_sparse_index_is_rejected() {
        // count=1, len=2, mode=sparse-raw, nnz=1, entry (index 5, bits 1).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.push(MODE_SPARSE_RAW);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_tensors(&bytes, None),
            Err(TensorCodecError::BadIndex { index: 5, len: 2 })
        ));
    }

    /// Arbitrary f32 from raw bits: covers NaN payloads, infinities,
    /// subnormals, and both zeros — the codec must be bit-transparent to
    /// all of them.
    fn any_f32_bits() -> impl Strategy<Value = f32> {
        any::<u32>().prop_map(f32::from_bits)
    }

    fn tensor_strategy() -> impl Strategy<Value = Vec<f32>> {
        // Mix dense-random and mostly-zero tensors so both sparse and
        // dense paths are exercised.
        prop_oneof![
            collection::vec(any_f32_bits(), 0..80),
            collection::vec(
                // ~80% exact zeros, the rest arbitrary bit patterns.
                any::<u32>().prop_map(|b| if b % 5 != 0 {
                    0.0f32
                } else {
                    f32::from_bits(b)
                }),
                0..80
            ),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip_bit_identity_no_baseline(
            tensors in collection::vec(tensor_strategy(), 0..5),
            threshold in 0.0f32..1.001,
        ) {
            roundtrip(&tensors, None, threshold);
        }

        #[test]
        fn roundtrip_bit_identity_with_baseline(
            pairs in collection::vec(
                (0usize..60).prop_flat_map(|len| (
                    collection::vec(any_f32_bits(), len..=len),
                    collection::vec(any_f32_bits(), len..=len),
                )),
                0..5,
            ),
            threshold in 0.0f32..1.001,
        ) {
            let tensors: Vec<Vec<f32>> = pairs.iter().map(|(t, _)| t.clone()).collect();
            let base_vals: Vec<&[f32]> = pairs.iter().map(|(_, b)| b.as_slice()).collect();
            let baseline = tensor_bits(&base_vals);
            roundtrip(&tensors, Some(&baseline), threshold);
        }
    }
}
