//! The run specification shipped to workers inside a Welcome.
//!
//! A [`DistSpec`] is everything a worker needs to reconstruct the exact
//! replica the server holds: preset name, method name, seed, optional
//! memory-budget override, and the full training configuration. Workers
//! build their data sequence / model / method from the spec and *nothing
//! else* — any out-of-band configuration would be a determinism hazard.

use edsr_cl::{Cassle, Der, Finetune, Lump, Method, OptimizerKind, Si, TrainConfig};
use edsr_core::{CompEmb, Edsr, R2r};
use edsr_data::{cifar100_sim, cifar10_sim, domainnet_sim, test_sim, tiny_imagenet_sim, Preset};

use crate::protocol::{Cursor, ProtoError, Writer};

/// A self-contained description of one distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSpec {
    /// Benchmark preset name (`cifar10`, `test`, …).
    pub preset: String,
    /// Method name (`edsr`, `finetune`, …).
    pub method: String,
    /// Master seed; data, model, and run RNGs derive from it exactly as
    /// the single-process `edsr run` command does.
    pub seed: u64,
    /// Override of the preset's total memory budget (`--memory`).
    pub memory_total: Option<usize>,
    /// Full training configuration.
    pub train: TrainConfig,
}

impl DistSpec {
    /// Builds a spec from CLI-level inputs.
    pub fn new(
        preset: &str,
        method: &str,
        seed: u64,
        train: &TrainConfig,
        memory_total: Option<usize>,
    ) -> Self {
        Self {
            preset: preset.to_string(),
            method: method.to_string(),
            seed,
            memory_total,
            train: train.clone(),
        }
    }

    /// The training configuration (a clone — `TrainConfig` is small).
    pub fn train_config(&self) -> TrainConfig {
        self.train.clone()
    }

    /// Serializes onto a protocol writer.
    pub fn write(&self, w: &mut Writer) {
        w.string(&self.preset);
        w.string(&self.method);
        w.u64(self.seed);
        match self.memory_total {
            Some(m) => {
                w.u8(1);
                w.u64(m as u64);
            }
            None => w.u8(0),
        }
        let t = &self.train;
        w.u64(t.epochs_per_task as u64);
        w.u64(t.batch_size as u64);
        w.u64(t.replay_batch as u64);
        w.f32(t.lr);
        w.f32(t.momentum);
        w.f32(t.weight_decay);
        w.u8(match t.optimizer {
            OptimizerKind::Sgd => 0,
            OptimizerKind::Adam => 1,
        });
        w.u64(t.eval_k as u64);
        w.u64(t.multitask_epoch_multiplier as u64);
        w.f32(t.cosine_floor);
    }

    /// Deserializes from a protocol cursor.
    pub fn read(c: &mut Cursor) -> Result<Self, ProtoError> {
        let preset = c.string()?;
        let method = c.string()?;
        let seed = c.u64()?;
        let memory_total = match c.u8()? {
            0 => None,
            1 => Some(c.u64()? as usize),
            k => return Err(ProtoError::BadKind(k)),
        };
        let mut train = TrainConfig::image();
        train.epochs_per_task = c.u64()? as usize;
        train.batch_size = c.u64()? as usize;
        train.replay_batch = c.u64()? as usize;
        train.lr = c.f32()?;
        train.momentum = c.f32()?;
        train.weight_decay = c.f32()?;
        train.optimizer = match c.u8()? {
            0 => OptimizerKind::Sgd,
            1 => OptimizerKind::Adam,
            k => return Err(ProtoError::BadKind(k)),
        };
        train.eval_k = c.u64()? as usize;
        train.multitask_epoch_multiplier = c.u64()? as usize;
        train.cosine_floor = c.f32()?;
        Ok(Self {
            preset,
            method,
            seed,
            memory_total,
            train,
        })
    }
}

/// Resolves a preset name exactly as the `edsr run` CLI does, applying
/// the spec-level memory override.
pub fn preset_for(spec: &DistSpec) -> Option<Preset> {
    let preset = match spec.preset.as_str() {
        "cifar10" => cifar10_sim(),
        "cifar100" => cifar100_sim(),
        "tiny-imagenet" | "tiny" => tiny_imagenet_sim(),
        "domainnet" => domainnet_sim(),
        "test" => test_sim(),
        _ => return None,
    };
    Some(match spec.memory_total {
        Some(m) => preset.with_memory_total(m),
        None => preset,
    })
}

/// Instantiates the method exactly as the `edsr run` CLI does (same
/// hyper-parameters derived from the preset and training config).
pub fn build_method(spec: &DistSpec, preset: &Preset) -> Option<Box<dyn Method>> {
    let budget = preset.per_task_budget();
    let replay_batch = spec.train.replay_batch;
    let noise_k = preset.noise_neighbors;
    Some(match spec.method.as_str() {
        "finetune" => Box::new(Finetune::new()),
        "si" => Box::new(Si::new(0.1)),
        "der" => Box::new(Der::new(budget, replay_batch, 0.5)),
        "lump" => Box::new(Lump::new(budget)),
        "cassle" => Box::new(Cassle::new()),
        "edsr" => Box::new(Edsr::paper_default(budget, replay_batch, noise_k)),
        "compemb" => Box::new(CompEmb::new(budget, replay_batch)),
        "r2r" => Box::new(R2r::new(budget, replay_batch, 4)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        let mut train = TrainConfig::image();
        train.epochs_per_task = 3;
        train.optimizer = OptimizerKind::Sgd;
        train.cosine_floor = 0.5;
        for memory in [None, Some(0), Some(24)] {
            let spec = DistSpec::new("test", "edsr", 42, &train, memory);
            let mut w = Writer::new();
            spec.write(&mut w);
            let bytes = w.into_bytes();
            let mut c = Cursor::new(&bytes);
            let back = DistSpec::read(&mut c).unwrap();
            c.finish().unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn preset_resolution_matches_cli() {
        let spec = DistSpec::new("test", "edsr", 11, &TrainConfig::image(), None);
        let p = preset_for(&spec).unwrap();
        assert_eq!(p.memory_total, test_sim().memory_total);

        let spec = DistSpec::new("tiny", "edsr", 11, &TrainConfig::image(), Some(99));
        let p = preset_for(&spec).unwrap();
        assert_eq!(p.memory_total, 99);
        assert_eq!(p.name, tiny_imagenet_sim().name);

        let spec = DistSpec::new("nope", "edsr", 11, &TrainConfig::image(), None);
        assert!(preset_for(&spec).is_none());
    }

    #[test]
    fn every_method_name_builds() {
        let train = TrainConfig::image();
        for name in [
            "finetune", "si", "der", "lump", "cassle", "edsr", "compemb", "r2r",
        ] {
            let spec = DistSpec::new("test", name, 11, &train, None);
            let preset = preset_for(&spec).unwrap();
            assert!(build_method(&spec, &preset).is_some(), "{name}");
        }
        let spec = DistSpec::new("test", "multitask", 11, &train, None);
        let preset = preset_for(&spec).unwrap();
        assert!(build_method(&spec, &preset).is_none());
    }
}
