//! The versioned parameter-server wire protocol.
//!
//! Frames ride `edsr-wire`'s length-prefixed transport (the same framing
//! `edsr-serve` speaks). Every request starts with a 1-byte op; every
//! response starts with a 1-byte kind. Malformed traffic decodes to a
//! structured [`ProtoError`], and servers answer bad requests with
//! [`Response::Err`] carrying an `ERR_*` code — mirroring `edsr-serve`'s
//! error idiom so clients can distinguish "retry", "rebuild", and "give
//! up" without string matching.
//!
//! Ops: HELLO registers (or re-attaches) a worker and returns the run
//! spec; PULL asks for work (parameters travel inside the work item,
//! delta-coded when the server knows what the worker already holds);
//! PUSH delivers gradients or an evaluated accuracy cell; BARRIER
//! reports boundary-op completion and polls for release; STATS snapshots
//! the server's counters; SHUTDOWN requests an orderly stop.

use std::fmt;

use crate::spec::DistSpec;

/// Protocol version — bumped on any incompatible wire change. A HELLO
/// carrying a different version is rejected with [`ERR_BAD_REQUEST`].
pub const DIST_PROTOCOL_VERSION: u16 = 1;

/// Register a worker (or re-attach after a reconnect).
pub const OP_HELLO: u8 = 1;
/// Ask for the next work item.
pub const OP_PULL: u8 = 2;
/// Deliver gradients or an evaluation cell.
pub const OP_PUSH: u8 = 3;
/// Report boundary completion / poll for barrier release.
pub const OP_BARRIER: u8 = 4;
/// Snapshot server counters.
pub const OP_STATS: u8 = 5;
/// Request an orderly server stop.
pub const OP_SHUTDOWN: u8 = 6;

/// Malformed or version-mismatched request.
pub const ERR_BAD_REQUEST: u16 = 1;
/// The worker id is not registered (stale or foreign session).
pub const ERR_UNKNOWN_WORKER: u16 = 2;
/// Workers disagreed on state that must be bit-identical.
pub const ERR_DESYNC: u16 = 3;
/// The server is shutting down; no more work will be issued.
pub const ERR_SHUTTING_DOWN: u16 = 4;
/// Internal server failure (details in the message).
pub const ERR_INTERNAL: u16 = 5;
/// A training step produced a non-finite loss.
pub const ERR_DIVERGED: u16 = 6;
/// The request failed its CRC (or didn't parse at all). Requests only
/// come from our own worker code, so this means wire corruption, and
/// the client should simply retry — the request was never acted on.
pub const ERR_CORRUPT: u16 = 7;

const KIND_WELCOME: u8 = 1;
const KIND_WORK: u8 = 2;
const KIND_ACK: u8 = 3;
const KIND_BARRIER: u8 = 4;
const KIND_STATS: u8 = 5;
const KIND_ERR: u8 = 6;

const ITEM_WAIT: u8 = 0;
const ITEM_BOUNDARY: u8 = 1;
const ITEM_STEP: u8 = 2;
const ITEM_EVAL: u8 = 3;
const ITEM_DONE: u8 = 4;

const PUSH_GRADS: u8 = 1;
const PUSH_EVAL: u8 = 2;

/// Cap on variable-length fields (strings, batch index lists) so a
/// corrupt length prefix cannot trigger a huge allocation; tensor
/// payloads are separately bounded by the frame cap.
const MAX_LIST: usize = 1 << 20;

/// Decode failures of the dist protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the declared data.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// Unknown request op byte.
    BadOp(u8),
    /// Unknown response/item/body kind byte.
    BadKind(u8),
    /// A length field exceeds the sanity cap.
    TooLarge(usize),
    /// A string field is not UTF-8.
    BadString,
    /// Bytes remained after the declared message.
    Trailing(usize),
    /// The message's CRC trailer does not match its body.
    BadCrc {
        /// CRC the trailer carried.
        expected: u32,
        /// CRC computed over the body.
        got: u32,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { expected, got } => {
                write!(f, "message truncated: needed {expected} bytes, had {got}")
            }
            ProtoError::BadOp(op) => write!(f, "unknown request op {op}"),
            ProtoError::BadKind(k) => write!(f, "unknown message kind {k}"),
            ProtoError::TooLarge(n) => write!(f, "length field {n} exceeds cap"),
            ProtoError::BadString => write!(f, "string field is not utf-8"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::BadCrc { expected, got } => {
                write!(
                    f,
                    "message crc mismatch: trailer {expected:08x}, body {got:08x}"
                )
            }
        }
    }
}

/// Appends the CRC trailer to a message body. Frames on the dist wire
/// carry gradients whose silent corruption would break bit-identity, so
/// — unlike `edsr-serve`'s query protocol — every message is sealed with
/// a CRC32 of its body (the same checksum the checkpoint envelope uses).
fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let crc = edsr_wire::crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

/// Verifies and strips the CRC trailer, returning the body.
fn open(bytes: &[u8]) -> Result<&[u8], ProtoError> {
    if bytes.len() < 4 {
        return Err(ProtoError::Truncated {
            expected: 4,
            got: bytes.len(),
        });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(trailer.try_into().unwrap());
    let got = edsr_wire::crc32(body);
    if expected != got {
        return Err(ProtoError::BadCrc { expected, got });
    }
    Ok(body)
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Bounds-checked cursor shared by every codec in this crate.
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a message payload.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let got = self.bytes.len() - self.pos;
        if got < n {
            return Err(ProtoError::Truncated { expected: n, got });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian f32.
    pub fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads four u64s — an `StdRng` state.
    pub fn rng_state(&mut self) -> Result<[u64; 4], ProtoError> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }

    /// Reads a u32-length-prefixed byte blob (capped by the frame size).
    pub fn blob(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        if len > edsr_wire::MAX_FRAME {
            return Err(ProtoError::TooLarge(len));
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a u32-length-prefixed UTF-8 string (capped).
    pub fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_LIST {
            return Err(ProtoError::TooLarge(len));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| ProtoError::BadString)
    }

    /// Reads a u32-length-prefixed list of u32s (capped).
    pub fn u32_list(&mut self) -> Result<Vec<u32>, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_LIST {
            return Err(ProtoError::TooLarge(len));
        }
        let raw = self.take(len * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Fails unless the whole payload was consumed.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.pos != self.bytes.len() {
            return Err(ProtoError::Trailing(self.bytes.len() - self.pos));
        }
        Ok(())
    }
}

/// Little-endian writer mirror of [`Cursor`].
#[derive(Default)]
pub struct Writer {
    out: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f32.
    pub fn f32(&mut self, v: f32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `StdRng` state.
    pub fn rng_state(&mut self, s: [u64; 4]) {
        for w in s {
            self.u64(w);
        }
    }

    /// Appends a u32-length-prefixed byte blob.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.out.extend_from_slice(b);
    }

    /// Appends a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }

    /// Appends a u32-length-prefixed list of u32s.
    pub fn u32_list(&mut self, l: &[u32]) {
        self.u32(l.len() as u32);
        for v in l {
            self.u32(*v);
        }
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------------

/// A versioned parameter payload inside a work item. `base_version`
/// names the snapshot the XOR-delta codec used (`None` = self-contained
/// dense/sparse-raw payload).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamsBlob {
    /// Version of the parameters carried.
    pub version: u64,
    /// The delta baseline's version, when XOR-coded.
    pub base_version: Option<u64>,
    /// `codec::encode_tensors` payload.
    pub payload: Vec<u8>,
}

impl ParamsBlob {
    fn write(&self, w: &mut Writer) {
        w.u64(self.version);
        match self.base_version {
            Some(v) => {
                w.u8(1);
                w.u64(v);
            }
            None => w.u8(0),
        }
        w.blob(&self.payload);
    }

    fn read(c: &mut Cursor) -> Result<Self, ProtoError> {
        let version = c.u64()?;
        let base_version = match c.u8()? {
            0 => None,
            1 => Some(c.u64()?),
            k => return Err(ProtoError::BadKind(k)),
        };
        Ok(Self {
            version,
            base_version,
            payload: c.blob()?,
        })
    }
}

/// What a worker pushes back to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum PushBody {
    /// The gradients of one training-step shard.
    Grads {
        /// Parameter version the gradients were computed against.
        version: u64,
        /// Which shard of the step this is.
        shard: u32,
        /// Total shards in the step (1 in synchronous mode).
        shards: u32,
        /// The step's loss (non-finite reports divergence).
        loss: f32,
        /// RNG state after the step — adopted by the server as the
        /// canonical stream position.
        rng: [u64; 4],
        /// `codec::encode_tensors` payload of every parameter's gradient.
        grads: Vec<u8>,
    },
    /// One evaluated accuracy-matrix cell.
    EvalCell {
        /// The row (just-finished increment).
        task: u32,
        /// The column.
        col: u32,
        /// `A_{task,col}` under the current parameters.
        acc: f32,
    },
}

/// Client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register or re-attach a worker. `token` is a client-generated
    /// session token (nonzero): the first HELLO carrying it claims a
    /// worker slot, and every later HELLO with the same token re-attaches
    /// to that slot — so a lost Welcome can be retried without leaking a
    /// slot (registration is idempotent in the token).
    Hello {
        /// Must equal [`DIST_PROTOCOL_VERSION`].
        proto: u16,
        /// Client-generated session token; must be nonzero.
        token: u64,
    },
    /// Ask for work. `have_version` names the parameter snapshot the
    /// worker still holds (0 = none), enabling delta-coded replies.
    Pull {
        /// The worker's id from its Welcome.
        worker: u32,
        /// Last parameter version fully decoded by this worker.
        have_version: u64,
    },
    /// Deliver a result.
    Push {
        /// The worker's id.
        worker: u32,
        /// The result payload.
        body: PushBody,
    },
    /// Report boundary completion for barrier `gen` and poll for release.
    Barrier {
        /// The worker's id.
        worker: u32,
        /// The barrier generation from the boundary work item.
        gen: u64,
        /// RNG state after running the boundary op.
        rng: [u64; 4],
        /// CRC32 of the method's serialized state after the boundary op.
        state_crc: u32,
        /// CRC32 of the parameter bits after the boundary op — catches
        /// methods that mutate parameters outside training steps, which
        /// the dist layer cannot support.
        params_crc: u32,
    },
    /// Snapshot server counters.
    Stats,
    /// Request an orderly server stop.
    Shutdown,
}

/// One unit of work handed to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkItem {
    /// Nothing ready; poll again after `poll_ms`.
    Wait {
        /// Suggested client-side delay before the next PULL.
        poll_ms: u64,
    },
    /// Run a task-boundary op (`begin_task` / `end_task`) on the given
    /// parameters and RNG position, then BARRIER with `gen`.
    Boundary {
        /// Increment index.
        task: u32,
        /// `false` = begin_task, `true` = end_task.
        end: bool,
        /// Barrier generation to report completion against.
        gen: u64,
        /// Parameters to install first.
        params: ParamsBlob,
        /// Canonical RNG position to start from.
        rng: [u64; 4],
    },
    /// Compute one training step's gradients and PUSH them back.
    Step {
        /// Increment index.
        task: u32,
        /// Epoch within the increment.
        epoch: u32,
        /// Step within the epoch.
        step: u32,
        /// This worker's shard of the step.
        shard: u32,
        /// Total shards (1 in synchronous mode).
        shards: u32,
        /// Effective learning rate (methods may read it off the
        /// optimizer inside their loss).
        lr: f32,
        /// Row indices of the batch in the increment's train split.
        batch: Vec<u32>,
        /// Parameters to install first.
        params: ParamsBlob,
        /// Canonical RNG position to start from.
        rng: [u64; 4],
    },
    /// Evaluate one accuracy cell and PUSH it back.
    Eval {
        /// The row (just-finished increment).
        task: u32,
        /// The column to evaluate.
        col: u32,
        /// Parameters to install first.
        params: ParamsBlob,
    },
    /// The run is complete; disconnect.
    Done,
}

/// Server counters, readable over STATS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistStats {
    /// Configured worker count.
    pub workers: u32,
    /// Workers currently registered.
    pub registered: u32,
    /// Current increment (or last, once draining).
    pub task: u32,
    /// Current epoch within the increment.
    pub epoch: u32,
    /// Current parameter version (= optimizer steps applied).
    pub version: u64,
    /// PULL requests served.
    pub pulls: u64,
    /// PUSH requests received.
    pub pushes: u64,
    /// Bytes of parameter payloads sent.
    pub pull_bytes: u64,
    /// Bytes of gradient payloads received.
    pub push_bytes: u64,
    /// Steps applied.
    pub steps: u64,
    /// Work items reissued after a push timeout.
    pub reissues: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Evaluation cells received.
    pub eval_cells: u64,
}

/// Server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// HELLO accepted.
    Welcome {
        /// The worker's assigned id (stable across reconnects).
        worker: u32,
        /// Total workers the run expects.
        workers: u32,
        /// Server's reissue timeout — a worker should expect its pushes
        /// to be superseded after roughly this long.
        push_timeout_ms: u64,
        /// Density cutoff the worker should use when encoding gradients.
        sparse_threshold: f32,
        /// Suggested polling delay for Wait/Barrier loops.
        poll_ms: u64,
        /// The full run specification (worker builds data/model/method
        /// from this, nothing else).
        spec: DistSpec,
    },
    /// A work item (PULL reply).
    Work(WorkItem),
    /// A push was received; `applied` is false for stale duplicates.
    Ack {
        /// Whether the push changed server state.
        applied: bool,
    },
    /// Barrier poll result.
    Barrier {
        /// True once every worker has arrived and state was verified.
        released: bool,
        /// Suggested delay before re-polling when not released.
        poll_ms: u64,
    },
    /// Counter snapshot (STATS reply).
    Stats(DistStats),
    /// Structured failure.
    Err {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

impl Request {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Hello { proto, token } => {
                w.u8(OP_HELLO);
                w.u16(*proto);
                w.u64(*token);
            }
            Request::Pull {
                worker,
                have_version,
            } => {
                w.u8(OP_PULL);
                w.u32(*worker);
                w.u64(*have_version);
            }
            Request::Push { worker, body } => {
                w.u8(OP_PUSH);
                w.u32(*worker);
                match body {
                    PushBody::Grads {
                        version,
                        shard,
                        shards,
                        loss,
                        rng,
                        grads,
                    } => {
                        w.u8(PUSH_GRADS);
                        w.u64(*version);
                        w.u32(*shard);
                        w.u32(*shards);
                        w.f32(*loss);
                        w.rng_state(*rng);
                        w.blob(grads);
                    }
                    PushBody::EvalCell { task, col, acc } => {
                        w.u8(PUSH_EVAL);
                        w.u32(*task);
                        w.u32(*col);
                        w.f32(*acc);
                    }
                }
            }
            Request::Barrier {
                worker,
                gen,
                rng,
                state_crc,
                params_crc,
            } => {
                w.u8(OP_BARRIER);
                w.u32(*worker);
                w.u64(*gen);
                w.rng_state(*rng);
                w.u32(*state_crc);
                w.u32(*params_crc);
            }
            Request::Stats => w.u8(OP_STATS),
            Request::Shutdown => w.u8(OP_SHUTDOWN),
        }
        seal(w.into_bytes())
    }

    /// Parses a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let body = open(bytes)?;
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_HELLO => Request::Hello {
                proto: c.u16()?,
                token: c.u64()?,
            },
            OP_PULL => Request::Pull {
                worker: c.u32()?,
                have_version: c.u64()?,
            },
            OP_PUSH => {
                let worker = c.u32()?;
                let body = match c.u8()? {
                    PUSH_GRADS => PushBody::Grads {
                        version: c.u64()?,
                        shard: c.u32()?,
                        shards: c.u32()?,
                        loss: c.f32()?,
                        rng: c.rng_state()?,
                        grads: c.blob()?,
                    },
                    PUSH_EVAL => PushBody::EvalCell {
                        task: c.u32()?,
                        col: c.u32()?,
                        acc: c.f32()?,
                    },
                    k => return Err(ProtoError::BadKind(k)),
                };
                Request::Push { worker, body }
            }
            OP_BARRIER => Request::Barrier {
                worker: c.u32()?,
                gen: c.u64()?,
                rng: c.rng_state()?,
                state_crc: c.u32()?,
                params_crc: c.u32()?,
            },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(ProtoError::BadOp(op)),
        };
        c.finish()?;
        Ok(req)
    }
}

fn write_item(w: &mut Writer, item: &WorkItem) {
    match item {
        WorkItem::Wait { poll_ms } => {
            w.u8(ITEM_WAIT);
            w.u64(*poll_ms);
        }
        WorkItem::Boundary {
            task,
            end,
            gen,
            params,
            rng,
        } => {
            w.u8(ITEM_BOUNDARY);
            w.u32(*task);
            w.u8(u8::from(*end));
            w.u64(*gen);
            params.write(w);
            w.rng_state(*rng);
        }
        WorkItem::Step {
            task,
            epoch,
            step,
            shard,
            shards,
            lr,
            batch,
            params,
            rng,
        } => {
            w.u8(ITEM_STEP);
            w.u32(*task);
            w.u32(*epoch);
            w.u32(*step);
            w.u32(*shard);
            w.u32(*shards);
            w.f32(*lr);
            w.u32_list(batch);
            params.write(w);
            w.rng_state(*rng);
        }
        WorkItem::Eval { task, col, params } => {
            w.u8(ITEM_EVAL);
            w.u32(*task);
            w.u32(*col);
            params.write(w);
        }
        WorkItem::Done => w.u8(ITEM_DONE),
    }
}

fn read_item(c: &mut Cursor) -> Result<WorkItem, ProtoError> {
    Ok(match c.u8()? {
        ITEM_WAIT => WorkItem::Wait { poll_ms: c.u64()? },
        ITEM_BOUNDARY => WorkItem::Boundary {
            task: c.u32()?,
            end: c.u8()? != 0,
            gen: c.u64()?,
            params: ParamsBlob::read(c)?,
            rng: c.rng_state()?,
        },
        ITEM_STEP => WorkItem::Step {
            task: c.u32()?,
            epoch: c.u32()?,
            step: c.u32()?,
            shard: c.u32()?,
            shards: c.u32()?,
            lr: c.f32()?,
            batch: c.u32_list()?,
            params: ParamsBlob::read(c)?,
            rng: c.rng_state()?,
        },
        ITEM_EVAL => WorkItem::Eval {
            task: c.u32()?,
            col: c.u32()?,
            params: ParamsBlob::read(c)?,
        },
        ITEM_DONE => WorkItem::Done,
        k => return Err(ProtoError::BadKind(k)),
    })
}

impl Response {
    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Welcome {
                worker,
                workers,
                push_timeout_ms,
                sparse_threshold,
                poll_ms,
                spec,
            } => {
                w.u8(KIND_WELCOME);
                w.u32(*worker);
                w.u32(*workers);
                w.u64(*push_timeout_ms);
                w.f32(*sparse_threshold);
                w.u64(*poll_ms);
                spec.write(&mut w);
            }
            Response::Work(item) => {
                w.u8(KIND_WORK);
                write_item(&mut w, item);
            }
            Response::Ack { applied } => {
                w.u8(KIND_ACK);
                w.u8(u8::from(*applied));
            }
            Response::Barrier { released, poll_ms } => {
                w.u8(KIND_BARRIER);
                w.u8(u8::from(*released));
                w.u64(*poll_ms);
            }
            Response::Stats(s) => {
                w.u8(KIND_STATS);
                w.u32(s.workers);
                w.u32(s.registered);
                w.u32(s.task);
                w.u32(s.epoch);
                w.u64(s.version);
                w.u64(s.pulls);
                w.u64(s.pushes);
                w.u64(s.pull_bytes);
                w.u64(s.push_bytes);
                w.u64(s.steps);
                w.u64(s.reissues);
                w.u64(s.barriers);
                w.u64(s.eval_cells);
            }
            Response::Err { code, message } => {
                w.u8(KIND_ERR);
                w.u16(*code);
                w.string(message);
            }
        }
        seal(w.into_bytes())
    }

    /// Parses a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let body = open(bytes)?;
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            KIND_WELCOME => Response::Welcome {
                worker: c.u32()?,
                workers: c.u32()?,
                push_timeout_ms: c.u64()?,
                sparse_threshold: c.f32()?,
                poll_ms: c.u64()?,
                spec: DistSpec::read(&mut c)?,
            },
            KIND_WORK => Response::Work(read_item(&mut c)?),
            KIND_ACK => Response::Ack {
                applied: c.u8()? != 0,
            },
            KIND_BARRIER => Response::Barrier {
                released: c.u8()? != 0,
                poll_ms: c.u64()?,
            },
            KIND_STATS => Response::Stats(DistStats {
                workers: c.u32()?,
                registered: c.u32()?,
                task: c.u32()?,
                epoch: c.u32()?,
                version: c.u64()?,
                pulls: c.u64()?,
                pushes: c.u64()?,
                pull_bytes: c.u64()?,
                push_bytes: c.u64()?,
                steps: c.u64()?,
                reissues: c.u64()?,
                barriers: c.u64()?,
                eval_cells: c.u64()?,
            }),
            KIND_ERR => Response::Err {
                code: c.u16()?,
                message: c.string()?,
            },
            k => return Err(ProtoError::BadKind(k)),
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> DistSpec {
        DistSpec::new("test", "edsr", 11, &edsr_cl::TrainConfig::image(), Some(24))
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                proto: DIST_PROTOCOL_VERSION,
                token: 7,
            },
            Request::Pull {
                worker: 2,
                have_version: 17,
            },
            Request::Push {
                worker: 1,
                body: PushBody::Grads {
                    version: 9,
                    shard: 0,
                    shards: 1,
                    loss: 3.25,
                    rng: [1, 2, 3, 4],
                    grads: vec![0xAA; 37],
                },
            },
            Request::Push {
                worker: 0,
                body: PushBody::EvalCell {
                    task: 2,
                    col: 1,
                    acc: 0.875,
                },
            },
            Request::Barrier {
                worker: 3,
                gen: 5,
                rng: [u64::MAX, 0, 7, 8],
                state_crc: 0xDEAD_BEEF,
                params_crc: 0x1234_5678,
            },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        let params = ParamsBlob {
            version: 4,
            base_version: Some(3),
            payload: vec![1, 2, 3],
        };
        vec![
            Response::Welcome {
                worker: 1,
                workers: 3,
                push_timeout_ms: 2000,
                sparse_threshold: 0.25,
                poll_ms: 5,
                spec: spec(),
            },
            Response::Work(WorkItem::Wait { poll_ms: 7 }),
            Response::Work(WorkItem::Boundary {
                task: 1,
                end: true,
                gen: 9,
                params: params.clone(),
                rng: [9, 8, 7, 6],
            }),
            Response::Work(WorkItem::Step {
                task: 0,
                epoch: 2,
                step: 5,
                shard: 0,
                shards: 1,
                lr: 3e-3,
                batch: vec![5, 1, 9, 0],
                params: ParamsBlob {
                    version: 11,
                    base_version: None,
                    payload: vec![],
                },
                rng: [1, 1, 2, 3],
            }),
            Response::Work(WorkItem::Eval {
                task: 2,
                col: 0,
                params,
            }),
            Response::Work(WorkItem::Done),
            Response::Ack { applied: false },
            Response::Barrier {
                released: true,
                poll_ms: 5,
            },
            Response::Stats(DistStats {
                workers: 2,
                steps: 40,
                ..DistStats::default()
            }),
            Response::Err {
                code: ERR_DESYNC,
                message: "rng state mismatch at barrier 3".into(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn truncations_are_structured_errors() {
        for req in sample_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
        for resp in sample_responses() {
            let bytes = resp.encode();
            for cut in 0..bytes.len() {
                assert!(Response::decode(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // Re-seal a valid body with one extra byte so only the Trailing
        // check can object.
        let sealed = Request::Stats.encode();
        let mut body = sealed[..sealed.len() - 4].to_vec();
        body.push(0);
        assert_eq!(Request::decode(&seal(body)), Err(ProtoError::Trailing(1)));
    }

    #[test]
    fn unknown_ops_rejected() {
        assert_eq!(Request::decode(&seal(vec![99])), Err(ProtoError::BadOp(99)));
        assert_eq!(
            Response::decode(&seal(vec![99])),
            Err(ProtoError::BadKind(99))
        );
    }

    #[test]
    fn corrupted_bytes_fail_the_crc() {
        let good = Request::Pull {
            worker: 1,
            have_version: 3,
        }
        .encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let err = Request::decode(&bad).unwrap_err();
            assert!(
                matches!(err, ProtoError::BadCrc { .. }),
                "flipping byte {i} gave {err:?}, expected a crc failure"
            );
        }
    }

    proptest! {
        #[test]
        fn decoder_never_panics_on_noise(bytes in collection::vec(any::<u8>(), 0..256)) {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
    }
}
