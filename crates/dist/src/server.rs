//! The parameter server: owns the canonical model, optimizer, and RNG
//! stream, and drives the run as a lockstep state machine.
//!
//! # Determinism model (DESIGN.md §14)
//!
//! The BarlowTwins objective is not sample-separable, so a training
//! step's gradient is computed *whole* by exactly one worker and applied
//! in strict step order — the server never averages concurrent
//! gradients. What distributes is everything around the steps:
//! evaluation cells fan out across workers (they are RNG-free and pure
//! in the model), and task-boundary ops run redundantly on every worker
//! from identical inputs, verified at a barrier.
//!
//! The server is the single owner of the canonical RNG stream. It
//! replays the exact draw order of the in-process runner: `begin_task`
//! (on workers, state adopted at the barrier) → per-epoch batch shuffle
//! (computed server-side) → per-step `train_step` draws (on the worker,
//! post-state pushed back with the gradients) → `end_task` (workers,
//! barrier) → evaluation (no draws). Because every work item carries
//! the exact RNG position to start from, a step can be recomputed by
//! any worker after a timeout and the result is bit-identical — which
//! is what makes reissue-on-timeout safe.

use std::io::Read;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use edsr_cl::{epoch_base_lr, AccuracyMatrix, ContinualModel, ModelConfig, TrainConfig};
use edsr_data::BatchIter;
use edsr_nn::io::params_to_bytes;
use edsr_nn::Optimizer;
use edsr_tensor::rng::seeded;
use rand::rngs::StdRng;

use crate::codec::{decode_tensors, encode_tensors, tensor_bits};
use crate::protocol::{
    DistStats, ParamsBlob, PushBody, Request, Response, WorkItem, DIST_PROTOCOL_VERSION,
    ERR_BAD_REQUEST, ERR_CORRUPT, ERR_DESYNC, ERR_DIVERGED, ERR_INTERNAL, ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_WORKER,
};
use crate::sessions::{HelloError, Registry};
use crate::spec::{preset_for, DistSpec};
use crate::DistError;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct PsConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of workers the run waits for.
    pub workers: usize,
    /// Reissue a step/eval work item after this long without its push.
    pub push_timeout_ms: u64,
    /// Density cutoff for the sparse/delta codec.
    pub sparse_threshold: f32,
    /// Suggested client polling delay.
    pub poll_ms: u64,
    /// Write the final parameters here on success.
    pub save: Option<PathBuf>,
}

impl Default for PsConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            push_timeout_ms: 2000,
            sparse_threshold: 0.25,
            poll_ms: 5,
            save: None,
        }
    }
}

/// Outcome of a completed distributed run.
#[derive(Debug, Clone)]
pub struct DistRunReport {
    /// The full accuracy matrix, identical to the in-process runner's.
    pub matrix: AccuracyMatrix,
    /// Mean training loss per increment.
    pub task_losses: Vec<f32>,
    /// Wall-clock seconds per increment (boundary-begin to boundary-end).
    pub task_seconds: Vec<f64>,
    /// Final parameter version (= optimizer steps applied).
    pub final_version: u64,
    /// Final parameters, byte-identical to
    /// `params_to_bytes` of the in-process runner's model.
    pub params_payload: Vec<u8>,
    /// Final server counters.
    pub stats: DistStats,
    /// Total worker reconnects observed.
    pub reconnects: u64,
}

/// What every worker must agree on at a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BarrierReport {
    rng: [u64; 4],
    state_crc: u32,
    params_crc: u32,
}

enum Phase {
    /// Waiting for all workers to register.
    Gather,
    /// A boundary op (`begin_task`/`end_task`) is running on all workers.
    Boundary {
        task: usize,
        end: bool,
        gen: u64,
        arrived: Vec<Option<BarrierReport>>,
    },
    /// Serialized training steps of one epoch.
    Steps {
        task: usize,
        epoch: usize,
        step: usize,
        lr: f32,
        schedule: Vec<Vec<u32>>,
        outstanding: Option<(usize, Instant)>,
    },
    /// Evaluation row of a finished increment, fanned out cell-by-cell.
    Eval { task: usize, cells: Vec<CellState> },
    /// Handing Done to each worker.
    Drain,
    /// Run complete; report sent.
    Finished,
    /// Run failed; every request gets the stored error.
    Failed { code: u16, message: String },
}

#[derive(Debug, Clone, Copy)]
struct CellState {
    acc: Option<f32>,
    assigned: Option<(usize, Instant)>,
}

struct Coordinator {
    spec: DistSpec,
    cfg: PsConfig,
    train: TrainConfig,
    /// Per-increment train-split length (the only dataset fact the
    /// server needs — batch schedules derive from it).
    train_lens: Vec<usize>,
    /// Server replica: parameter + gradient buffers. The server never
    /// runs the method; it only applies pushed gradients.
    model: ContinualModel,
    opt: Box<dyn Optimizer>,
    /// Canonical RNG stream position.
    rng: [u64; 4],
    /// Current parameter version; 1 = initial weights.
    version: u64,
    registry: Registry,
    phase: Phase,
    next_gen: u64,
    released_gen: u64,
    matrix: AccuracyMatrix,
    task_losses: Vec<f32>,
    task_seconds: Vec<f64>,
    task_start: Option<Instant>,
    task_loss_sum: f32,
    task_loss_count: usize,
    epoch_loss_sum: f32,
    epoch_loss_count: usize,
    stats: DistStats,
    result_tx: Option<Sender<Result<DistRunReport, DistError>>>,
}

impl Coordinator {
    fn push_timeout(&self) -> Duration {
        Duration::from_millis(self.cfg.push_timeout_ms)
    }

    fn params_crc(&self) -> u32 {
        edsr_wire::crc32(&params_to_bytes(&self.model.params))
    }

    /// Encodes the current parameters for `worker`, delta-coding against
    /// the worker's last confirmed snapshot when `have_version` matches
    /// it, and records the sent bits as the worker's new baseline.
    fn params_blob(&mut self, worker: usize, have_version: u64) -> Result<ParamsBlob, String> {
        let ids: Vec<_> = self.model.params.ids().collect();
        let tensors: Vec<&[f32]> = ids
            .iter()
            .map(|id| self.model.params.value(*id).data())
            .collect();
        let (payload, base_version) = match self.registry.baseline_if(worker, have_version) {
            Some(baseline) => {
                let p = encode_tensors(&tensors, Some(baseline), self.cfg.sparse_threshold)
                    .map_err(|e| format!("param delta encode: {e}"))?;
                (p, Some(have_version))
            }
            _ => {
                let p = encode_tensors(&tensors, None, self.cfg.sparse_threshold)
                    .map_err(|e| format!("param encode: {e}"))?;
                (p, None)
            }
        };
        self.stats.pull_bytes += payload.len() as u64;
        let bits = tensor_bits(&tensors);
        self.registry.set_baseline(worker, self.version, bits);
        Ok(ParamsBlob {
            version: self.version,
            base_version,
            payload,
        })
    }

    fn fail(&mut self, code: u16, err: DistError) -> Response {
        let message = err.to_string();
        if let Some(tx) = self.result_tx.take() {
            let _ = tx.send(Err(err));
        }
        self.phase = Phase::Failed {
            code,
            message: message.clone(),
        };
        Response::Err { code, message }
    }

    fn enter_boundary(&mut self, task: usize, end: bool) {
        if !end {
            self.task_start = Some(Instant::now());
            self.task_loss_sum = 0.0;
            self.task_loss_count = 0;
            self.epoch_loss_sum = 0.0;
            self.epoch_loss_count = 0;
        }
        self.next_gen += 1;
        self.phase = Phase::Boundary {
            task,
            end,
            gen: self.next_gen,
            arrived: vec![None; self.registry.expected()],
        };
    }

    /// Advances into the first epoch at-or-after `epoch` that has a
    /// non-empty batch schedule, or into the end-of-task boundary.
    /// Mirrors the in-process epoch loop exactly, including consuming
    /// one shuffle's worth of RNG per epoch even when the schedule is
    /// empty.
    fn enter_steps(&mut self, task: usize, mut epoch: usize) {
        loop {
            if epoch >= self.train.epochs_per_task {
                self.enter_boundary(task, true);
                return;
            }
            let lr = epoch_base_lr(&self.train, epoch);
            let mut rng = StdRng::from_state(self.rng);
            let schedule: Vec<Vec<u32>> =
                BatchIter::new(self.train_lens[task], self.train.batch_size, &mut rng)
                    .map(|b| b.iter().map(|&i| i as u32).collect())
                    .collect();
            self.rng = rng.state();
            if schedule.is_empty() {
                epoch += 1;
                continue;
            }
            self.phase = Phase::Steps {
                task,
                epoch,
                step: 0,
                lr,
                schedule,
                outstanding: None,
            };
            return;
        }
    }

    fn enter_eval(&mut self, task: usize) {
        self.phase = Phase::Eval {
            task,
            cells: vec![
                CellState {
                    acc: None,
                    assigned: None,
                };
                task + 1
            ],
        };
    }

    fn finish(&mut self) {
        let report = DistRunReport {
            matrix: self.matrix.clone(),
            task_losses: self.task_losses.clone(),
            task_seconds: self.task_seconds.clone(),
            final_version: self.version,
            params_payload: params_to_bytes(&self.model.params),
            stats: self.snapshot_stats(),
            reconnects: self.registry.reconnects(),
        };
        if let Some(path) = &self.cfg.save {
            if let Err(e) = edsr_nn::save_params(&self.model.params, path) {
                self.fail(
                    ERR_INTERNAL,
                    DistError::Failed(format!("saving final params: {e}")),
                );
                return;
            }
        }
        if let Some(tx) = self.result_tx.take() {
            let _ = tx.send(Ok(report));
        }
        self.phase = Phase::Finished;
    }

    fn snapshot_stats(&self) -> DistStats {
        let mut s = self.stats;
        s.workers = self.registry.expected() as u32;
        s.registered = self.registry.registered() as u32;
        s.version = self.version;
        let (task, epoch) = match &self.phase {
            Phase::Boundary { task, .. } | Phase::Eval { task, .. } => (*task, 0),
            Phase::Steps { task, epoch, .. } => (*task, *epoch),
            _ => (self.task_seconds.len(), 0),
        };
        s.task = task as u32;
        s.epoch = epoch as u32;
        s
    }

    fn handle_hello(&mut self, proto: u16, token: u64) -> Response {
        if proto != DIST_PROTOCOL_VERSION {
            return Response::Err {
                code: ERR_BAD_REQUEST,
                message: format!(
                    "protocol version {proto} (server speaks {DIST_PROTOCOL_VERSION})"
                ),
            };
        }
        match self.registry.hello(token) {
            Ok(worker) => {
                if matches!(self.phase, Phase::Gather) && self.registry.all_registered() {
                    self.enter_boundary(0, false);
                }
                Response::Welcome {
                    worker: worker as u32,
                    workers: self.registry.expected() as u32,
                    push_timeout_ms: self.cfg.push_timeout_ms,
                    sparse_threshold: self.cfg.sparse_threshold,
                    poll_ms: self.cfg.poll_ms,
                    spec: self.spec.clone(),
                }
            }
            Err(HelloError::Full { expected }) => Response::Err {
                code: ERR_BAD_REQUEST,
                message: format!("all {expected} worker slots are registered"),
            },
            Err(HelloError::BadToken) => Response::Err {
                code: ERR_BAD_REQUEST,
                message: "session token must be nonzero".into(),
            },
        }
    }

    fn handle_pull(&mut self, worker: usize, have_version: u64) -> Response {
        if !self.registry.is_registered(worker) {
            return Response::Err {
                code: ERR_UNKNOWN_WORKER,
                message: format!("worker {worker} is not registered"),
            };
        }
        self.stats.pulls += 1;

        // Decide under the phase borrow, then build the response (which
        // needs `&mut self` for parameter encoding) after it ends.
        enum Todo {
            Wait,
            Boundary {
                task: u32,
                end: bool,
                gen: u64,
            },
            Step {
                task: u32,
                epoch: u32,
                step: u32,
                lr: f32,
                batch: Vec<u32>,
            },
            Eval {
                task: u32,
                col: u32,
            },
            Done {
                finish: bool,
            },
            Failed {
                code: u16,
                message: String,
            },
        }

        let timeout = self.push_timeout();
        let mut reissue = false;
        let registry = &mut self.registry;
        let todo = match &mut self.phase {
            Phase::Gather => Todo::Wait,
            Phase::Boundary { task, end, gen, .. } => Todo::Boundary {
                task: *task as u32,
                end: *end,
                gen: *gen,
            },
            Phase::Steps {
                task,
                epoch,
                step,
                lr,
                schedule,
                outstanding,
            } => {
                let timed_out = outstanding
                    .map(|(_, at)| at.elapsed() >= timeout)
                    .unwrap_or(false);
                if outstanding.is_some() && !timed_out {
                    Todo::Wait
                } else {
                    reissue = timed_out;
                    let batch = schedule[*step].clone();
                    *outstanding = Some((worker, Instant::now()));
                    Todo::Step {
                        task: *task as u32,
                        epoch: *epoch as u32,
                        step: *step as u32,
                        lr: *lr,
                        batch,
                    }
                }
            }
            Phase::Eval { task, cells } => {
                let mut pick = None;
                for (col, cell) in cells.iter_mut().enumerate() {
                    if cell.acc.is_some() {
                        continue;
                    }
                    match cell.assigned {
                        None => {
                            pick = Some((col, false));
                            break;
                        }
                        Some((_, at)) if at.elapsed() >= timeout => {
                            pick = Some((col, true));
                            break;
                        }
                        Some(_) => {}
                    }
                }
                match pick {
                    Some((col, r)) => {
                        reissue = r;
                        cells[col].assigned = Some((worker, Instant::now()));
                        Todo::Eval {
                            task: *task as u32,
                            col: col as u32,
                        }
                    }
                    None => Todo::Wait,
                }
            }
            Phase::Drain => {
                registry.mark_done(worker);
                Todo::Done {
                    finish: registry.all_done(),
                }
            }
            Phase::Finished => Todo::Done { finish: false },
            Phase::Failed { code, message } => Todo::Failed {
                code: *code,
                message: message.clone(),
            },
        };
        if reissue {
            self.stats.reissues += 1;
        }

        match todo {
            Todo::Wait => Response::Work(WorkItem::Wait {
                poll_ms: self.cfg.poll_ms,
            }),
            Todo::Boundary { task, end, gen } => match self.params_blob(worker, have_version) {
                Ok(params) => Response::Work(WorkItem::Boundary {
                    task,
                    end,
                    gen,
                    params,
                    rng: self.rng,
                }),
                Err(e) => self.fail(ERR_INTERNAL, DistError::Failed(e)),
            },
            Todo::Step {
                task,
                epoch,
                step,
                lr,
                batch,
            } => match self.params_blob(worker, have_version) {
                Ok(params) => Response::Work(WorkItem::Step {
                    task,
                    epoch,
                    step,
                    shard: 0,
                    shards: 1,
                    lr,
                    batch,
                    params,
                    rng: self.rng,
                }),
                Err(e) => self.fail(ERR_INTERNAL, DistError::Failed(e)),
            },
            Todo::Eval { task, col } => match self.params_blob(worker, have_version) {
                Ok(params) => Response::Work(WorkItem::Eval { task, col, params }),
                Err(e) => self.fail(ERR_INTERNAL, DistError::Failed(e)),
            },
            Todo::Done { finish } => {
                if finish {
                    self.finish();
                }
                Response::Work(WorkItem::Done)
            }
            Todo::Failed { code, message } => Response::Err { code, message },
        }
    }

    fn apply_grads(&mut self, version: u64, loss: f32, rng: [u64; 4], payload: &[u8]) -> Response {
        let Phase::Steps {
            task, epoch, lr, ..
        } = &self.phase
        else {
            return Response::Ack { applied: false };
        };
        let (task, epoch, lr) = (*task, *epoch, *lr);
        if version != self.version {
            return Response::Ack { applied: false };
        }
        if !loss.is_finite() {
            return self.fail(ERR_DIVERGED, DistError::Diverged { task, loss });
        }
        self.stats.push_bytes += payload.len() as u64;
        let grads = match decode_tensors(payload, None) {
            Ok(g) => g,
            Err(e) => {
                return Response::Err {
                    code: ERR_BAD_REQUEST,
                    message: format!("gradient payload: {e}"),
                }
            }
        };
        let ids: Vec<_> = self.model.params.ids().collect();
        if grads.len() != ids.len()
            || ids
                .iter()
                .zip(&grads)
                .any(|(id, g)| g.len() != self.model.params.value(*id).data().len())
        {
            return Response::Err {
                code: ERR_BAD_REQUEST,
                message: "gradient payload shape mismatch".into(),
            };
        }
        // Install, don't accumulate: `0.0 + (-0.0)` would flip the sign
        // bit of negative-zero gradient components and break bit-identity
        // downstream of the optimizer's moment buffers.
        for (id, g) in ids.iter().zip(&grads) {
            self.model
                .params
                .grad_mut(*id)
                .data_mut()
                .copy_from_slice(g);
        }
        self.opt.set_lr(lr);
        self.opt.step(&mut self.model.params);
        self.version += 1;
        self.rng = rng;
        self.stats.steps += 1;
        self.epoch_loss_sum += loss;
        self.epoch_loss_count += 1;
        if edsr_obs::enabled() {
            edsr_obs::gauge("dist/version", self.version as f64);
            edsr_obs::gauge_at("train/loss", task as u64, f64::from(loss));
        }
        let epoch_done = {
            let Phase::Steps {
                step,
                schedule,
                outstanding,
                ..
            } = &mut self.phase
            else {
                unreachable!("phase checked above")
            };
            *outstanding = None;
            *step += 1;
            *step >= schedule.len()
        };
        if epoch_done {
            // Fold per-epoch sums in the same order the in-process
            // runner does, so the reported task means match bit-for-bit.
            self.task_loss_sum += self.epoch_loss_sum;
            self.task_loss_count += self.epoch_loss_count;
            self.epoch_loss_sum = 0.0;
            self.epoch_loss_count = 0;
            self.enter_steps(task, epoch + 1);
        }
        Response::Ack { applied: true }
    }

    fn apply_eval_cell(&mut self, cell_task: usize, col: usize, acc: f32) -> Response {
        let Phase::Eval { task, cells } = &mut self.phase else {
            return Response::Ack { applied: false };
        };
        if cell_task != *task || col >= cells.len() || cells[col].acc.is_some() {
            return Response::Ack { applied: false };
        }
        cells[col].acc = Some(acc);
        self.stats.eval_cells += 1;
        if cells.iter().all(|c| c.acc.is_some()) {
            let task = *task;
            let row: Vec<f32> = cells.iter().map(|c| c.acc.unwrap()).collect();
            if edsr_obs::enabled() {
                let mean = row.iter().sum::<f32>() / row.len().max(1) as f32;
                edsr_obs::gauge_at("eval/mean_acc", task as u64, f64::from(mean));
            }
            self.matrix.push_row(row);
            if task + 1 < self.train_lens.len() {
                self.enter_boundary(task + 1, false);
            } else {
                self.phase = Phase::Drain;
            }
        }
        Response::Ack { applied: true }
    }

    fn handle_push(&mut self, worker: usize, body: PushBody) -> Response {
        if !self.registry.is_registered(worker) {
            return Response::Err {
                code: ERR_UNKNOWN_WORKER,
                message: format!("worker {worker} is not registered"),
            };
        }
        self.stats.pushes += 1;
        match body {
            PushBody::Grads {
                version,
                shard,
                shards,
                loss,
                rng,
                grads,
            } => {
                if shards != 1 || shard != 0 {
                    return Response::Err {
                        code: ERR_BAD_REQUEST,
                        message: format!(
                            "shard {shard}/{shards}: synchronous mode runs single-shard steps"
                        ),
                    };
                }
                self.apply_grads(version, loss, rng, &grads)
            }
            PushBody::EvalCell { task, col, acc } => {
                self.apply_eval_cell(task as usize, col as usize, acc)
            }
        }
    }

    fn handle_barrier(&mut self, worker: usize, gen: u64, report: BarrierReport) -> Response {
        if !self.registry.is_registered(worker) {
            return Response::Err {
                code: ERR_UNKNOWN_WORKER,
                message: format!("worker {worker} is not registered"),
            };
        }
        if let Phase::Failed { code, message } = &self.phase {
            return Response::Err {
                code: *code,
                message: message.clone(),
            };
        }
        if gen <= self.released_gen {
            return Response::Barrier {
                released: true,
                poll_ms: self.cfg.poll_ms,
            };
        }
        let all_arrived = match &mut self.phase {
            Phase::Boundary {
                gen: cur_gen,
                arrived,
                ..
            } if *cur_gen == gen => {
                arrived[worker] = Some(report);
                arrived.iter().all(Option::is_some)
            }
            _ => {
                return Response::Barrier {
                    released: false,
                    poll_ms: self.cfg.poll_ms,
                }
            }
        };
        if !all_arrived {
            return Response::Barrier {
                released: false,
                poll_ms: self.cfg.poll_ms,
            };
        }
        let Phase::Boundary {
            task, end, arrived, ..
        } = &self.phase
        else {
            unreachable!("matched above")
        };
        let (task, end) = (*task, *end);
        let reports: Vec<BarrierReport> = arrived.iter().map(|r| r.unwrap()).collect();
        let first = reports[0];
        if let Some(w) = reports.iter().position(|r| *r != first) {
            return self.fail(
                ERR_DESYNC,
                DistError::Desync(format!(
                    "worker {w} disagrees at {} boundary of task {task}: \
                     rng/state/params CRCs diverged (is the method's train_step \
                     mutating method state? that requires single-worker mode)",
                    if end { "end" } else { "begin" },
                )),
            );
        }
        let server_crc = self.params_crc();
        if first.params_crc != server_crc {
            return self.fail(
                ERR_DESYNC,
                DistError::Desync(format!(
                    "{} boundary of task {task} mutated parameters on workers \
                     (crc {:08x} vs server {server_crc:08x}); boundary ops must \
                     leave parameters untouched",
                    if end { "end" } else { "begin" },
                    first.params_crc,
                )),
            );
        }
        // Adopt the post-boundary RNG position as canonical.
        self.rng = first.rng;
        self.released_gen = gen;
        self.stats.barriers += 1;
        if end {
            let mean = if self.task_loss_count > 0 {
                self.task_loss_sum / self.task_loss_count as f32
            } else {
                0.0
            };
            self.task_losses.push(mean);
            let secs = self
                .task_start
                .take()
                .map(|t| t.elapsed().as_secs_f64())
                .unwrap_or(0.0);
            self.task_seconds.push(secs);
            self.enter_eval(task);
        } else {
            self.enter_steps(task, 0);
        }
        Response::Barrier {
            released: true,
            poll_ms: self.cfg.poll_ms,
        }
    }

    fn handle_shutdown(&mut self) -> Response {
        if !matches!(self.phase, Phase::Finished) {
            self.fail(
                ERR_SHUTTING_DOWN,
                DistError::Failed("shutdown requested before the run finished".into()),
            );
        }
        Response::Ack { applied: true }
    }

    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Hello { proto, token } => self.handle_hello(proto, token),
            Request::Pull {
                worker,
                have_version,
            } => self.handle_pull(worker as usize, have_version),
            Request::Push { worker, body } => self.handle_push(worker as usize, body),
            Request::Barrier {
                worker,
                gen,
                rng,
                state_crc,
                params_crc,
            } => self.handle_barrier(
                worker as usize,
                gen,
                BarrierReport {
                    rng,
                    state_crc,
                    params_crc,
                },
            ),
            Request::Stats => Response::Stats(self.snapshot_stats()),
            Request::Shutdown => self.handle_shutdown(),
        }
    }
}

/// Handle to a running parameter server.
pub struct PsHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    result_rx: Receiver<Result<DistRunReport, DistError>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl PsHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the run completes or fails, then stops the server.
    pub fn wait(mut self) -> Result<DistRunReport, DistError> {
        let result = self
            .result_rx
            .recv()
            .map_err(|_| DistError::Failed("server exited without a result".into()))?;
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        result
    }
}

impl Drop for PsHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts a parameter server for `spec` and returns once it is
/// listening. The run itself completes asynchronously; call
/// [`PsHandle::wait`] for the result.
pub fn serve_ps(spec: DistSpec, cfg: PsConfig) -> Result<PsHandle, DistError> {
    if cfg.workers == 0 {
        return Err(DistError::InvalidConfig("workers must be >= 1".into()));
    }
    let preset = preset_for(&spec)
        .ok_or_else(|| DistError::InvalidConfig(format!("unknown preset {:?}", spec.preset)))?;
    if crate::spec::build_method(&spec, &preset).is_none() {
        return Err(DistError::InvalidConfig(format!(
            "unknown method {:?}",
            spec.method
        )));
    }
    // Server replica, constructed exactly as `edsr run` constructs the
    // real one: data from seed, model from seed+1000, run RNG from
    // seed+2000. Only the sequence *lengths* are kept — batches and
    // evaluation live on the workers.
    let seq = preset.build(&mut seeded(spec.seed));
    let train_lens: Vec<usize> = seq.tasks.iter().map(|t| t.train.len()).collect();
    let model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(spec.seed + 1000),
    );
    let opt = spec.train.build_optimizer();
    let rng = seeded(spec.seed + 2000).state();

    let listener = TcpListener::bind(&cfg.addr).map_err(DistError::Io)?;
    let addr = listener.local_addr().map_err(DistError::Io)?;
    listener.set_nonblocking(true).map_err(DistError::Io)?;

    let (result_tx, result_rx) = mpsc::channel();
    let workers = cfg.workers;
    let poll = Duration::from_millis(cfg.poll_ms.max(1));
    let train = spec.train.clone();
    let coordinator = Arc::new(Mutex::new(Coordinator {
        spec,
        cfg,
        train,
        train_lens,
        model,
        opt,
        rng,
        version: 1,
        registry: Registry::new(workers),
        phase: Phase::Gather,
        next_gen: 0,
        released_gen: 0,
        matrix: AccuracyMatrix::new(),
        task_losses: Vec::new(),
        task_seconds: Vec::new(),
        task_start: None,
        task_loss_sum: 0.0,
        task_loss_count: 0,
        epoch_loss_sum: 0.0,
        epoch_loss_count: 0,
        stats: DistStats::default(),
        result_tx: Some(result_tx),
    }));

    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_coord = Arc::clone(&coordinator);
    let accept_thread = std::thread::spawn(move || {
        let _span = edsr_obs::span!("dist_ps");
        loop {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let coord = Arc::clone(&accept_coord);
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    std::thread::spawn(move || serve_conn(stream, coord, conn_shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll.max(Duration::from_millis(10)));
                }
                Err(_) => break,
            }
        }
    });

    Ok(PsHandle {
        addr,
        shutdown,
        result_rx,
        accept_thread: Some(accept_thread),
    })
}

/// A reader that absorbs socket read timeouts so `read_frame` never
/// observes a mid-frame `WouldBlock` (which would drop the bytes already
/// consumed and desynchronize the framing). Each timeout tick checks the
/// shutdown flag instead.
struct PatientReader<'a> {
    stream: &'a mut std::net::TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::Interrupted,
                            "server shutting down",
                        ));
                    }
                }
                r => return r,
            }
        }
    }
}

fn serve_conn(
    stream: std::net::TcpStream,
    coordinator: Arc<Mutex<Coordinator>>,
    shutdown: Arc<AtomicBool>,
) {
    // Accepted sockets inherit the listener's non-blocking mode on some
    // platforms; frame reads below assume blocking I/O with a timeout so
    // the loop can notice shutdown.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let got = {
            let mut reader = PatientReader {
                stream: &mut stream,
                shutdown: &shutdown,
            };
            edsr_wire::read_frame(&mut reader, &mut buf)
        };
        match got {
            Ok(true) => {}
            Ok(false) => return, // clean disconnect
            Err(_) => return,
        }
        let response = match Request::decode(&buf) {
            Ok(req) => {
                let mut coord = coordinator.lock().expect("coordinator poisoned");
                coord.handle(req)
            }
            // Requests come only from our own worker code; anything that
            // fails to parse (or fails its CRC) is wire corruption. The
            // request was never acted on, so the client can just retry.
            Err(e) => Response::Err {
                code: ERR_CORRUPT,
                message: e.to_string(),
            },
        };
        if edsr_wire::write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}
