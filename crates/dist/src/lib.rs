//! # edsr-dist
//!
//! Deterministic parameter-server training over the wire layer
//! (DESIGN.md §14): one **parameter server** owns the canonical model
//! parameters, the optimizer moments, and the run's RNG stream; **worker
//! processes** pull versioned params over a length-prefixed binary
//! protocol, compute gradients for their assigned slice of the global
//! batch schedule, and push them back through a sparse/delta codec.
//!
//! The contract extends PR 2's bit-identity guarantee from
//! any-thread-count to any-worker-count: in synchronous mode, **1 PS +
//! N workers produce parameters bit-identical to the single-process
//! trainer** — same batches, same RNG stream, same optimizer-update
//! order, at every N. The server sequences the run exactly as
//! `RunBuilder::run` does and aggregates pushed gradient shards in
//! ascending shard order (deterministic fixed order per step), so float
//! summation order never depends on worker arrival.
//!
//! Module map:
//! - [`protocol`] — versioned PULL/PUSH/BARRIER/STATS/SHUTDOWN messages
//!   over `edsr-wire` framing, with structured `ERR_*` responses.
//! - [`codec`] — the sparse/delta tensor codec (bit-exact XOR deltas,
//!   dense fallback when density is high).
//! - [`spec`] — the run specification a server hands to registering
//!   workers, so both ends construct identical data/model/method state.
//! - [`sessions`] — worker registry: identities, reconnects, per-worker
//!   params baselines for delta encoding.
//! - [`server`] — the coordinator state machine + blocking TCP server.
//! - [`worker`] — the worker loop and its fault-tolerant client.

pub mod codec;
pub mod protocol;
pub mod server;
pub mod sessions;
pub mod spec;
pub mod worker;

pub use codec::{decode_tensors, encode_tensors, TensorCodecError};
pub use protocol::{DistStats, ProtoError, Request, Response, WorkItem, DIST_PROTOCOL_VERSION};
pub use server::{serve_ps, DistRunReport, PsConfig, PsHandle};
pub use spec::{build_method, preset_for, DistSpec};
pub use worker::{run_worker, WorkerOptions, WorkerReport};

use std::fmt;

/// Failures surfaced by the distributed-training layer.
#[derive(Debug)]
pub enum DistError {
    /// Socket/listener error.
    Io(std::io::Error),
    /// Malformed or truncated wire traffic.
    Protocol(ProtoError),
    /// The peer answered with a structured error response.
    Rejected {
        /// One of the protocol `ERR_*` codes.
        code: u16,
        /// Human-readable reason from the peer.
        message: String,
    },
    /// Invalid run specification or server configuration.
    InvalidConfig(String),
    /// Workers disagreed where the protocol requires bit-identical state
    /// (RNG stream or method state at a barrier) — a determinism bug or
    /// an unsupported method.
    Desync(String),
    /// A training step produced a non-finite loss; the synchronous
    /// runner has no divergence-rollback path (use the single-process
    /// trainer's `StepGuard` for flaky configs).
    Diverged {
        /// Increment being trained when the loss went non-finite.
        task: usize,
        /// The offending loss value.
        loss: f32,
    },
    /// The run ended in a failed state (server-side reason attached).
    Failed(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "dist i/o: {e}"),
            DistError::Protocol(e) => write!(f, "dist protocol: {e}"),
            DistError::Rejected { code, message } => {
                write!(f, "dist rejected (code {code}): {message}")
            }
            DistError::InvalidConfig(m) => write!(f, "dist config: {m}"),
            DistError::Desync(m) => write!(f, "dist desync: {m}"),
            DistError::Diverged { task, loss } => {
                write!(f, "dist diverged on task {task}: loss {loss}")
            }
            DistError::Failed(m) => write!(f, "dist run failed: {m}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<ProtoError> for DistError {
    fn from(e: ProtoError) -> Self {
        DistError::Protocol(e)
    }
}

/// Runs a complete distributed job in-process: binds a parameter server
/// on an ephemeral localhost port, spawns `workers` worker threads, and
/// waits for the run to finish. The backbone of `tests/dist.rs` and the
/// `dist_bench` binary.
pub fn run_local(
    spec: &DistSpec,
    workers: usize,
    ps_cfg: PsConfig,
    worker_opts: impl Fn(usize) -> WorkerOptions,
) -> Result<(DistRunReport, Vec<WorkerReport>), DistError> {
    let mut cfg = ps_cfg;
    cfg.workers = workers;
    let handle = serve_ps(spec.clone(), cfg)?;
    let addr = handle.addr().to_string();
    let mut joins = Vec::new();
    for w in 0..workers {
        let addr = addr.clone();
        let opts = worker_opts(w);
        joins.push(std::thread::spawn(move || run_worker(&addr, opts)));
    }
    let report = handle.wait();
    let mut worker_reports = Vec::new();
    for j in joins {
        match j.join() {
            Ok(Ok(r)) => worker_reports.push(r),
            Ok(Err(e)) => {
                // A worker failure matters only if the run itself failed:
                // after a successful run the server has already drained
                // everyone, so surface the run result instead.
                if report.is_err() {
                    return Err(e);
                }
            }
            Err(_) => return Err(DistError::Failed("worker thread panicked".into())),
        }
    }
    Ok((report?, worker_reports))
}
