//! Worker session registry.
//!
//! Tracks which worker ids are claimed (keyed by a client-generated
//! session token, so a retried HELLO is idempotent and never leaks a
//! slot), which parameter snapshot each worker last confirmed holding
//! (the XOR-delta baseline), and which workers have drained. Baselines
//! survive reconnects — the PULL's `have_version` field, not connection
//! state, decides whether a delta against the stored baseline is safe
//! to send.

/// Per-worker server-side state.
#[derive(Debug, Default)]
pub struct Session {
    /// The client token that claimed this slot (`None` = free).
    pub token: Option<u64>,
    /// Re-attach count (the claiming HELLO is not a reconnect).
    pub reconnects: u64,
    /// `(version, bits)` of the last parameter payload this worker is
    /// known to have been sent — the XOR baseline candidate for the next
    /// send.
    pub baseline: Option<(u64, Vec<Vec<u32>>)>,
    /// Whether this worker has received its Done item.
    pub done: bool,
}

/// All worker sessions of one run.
#[derive(Debug)]
pub struct Registry {
    sessions: Vec<Session>,
}

/// Why a HELLO was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HelloError {
    /// All worker slots are claimed by other tokens.
    Full {
        /// Configured worker count.
        expected: usize,
    },
    /// The token was zero (reserved as invalid).
    BadToken,
}

impl Registry {
    /// A registry expecting exactly `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            sessions: (0..workers).map(|_| Session::default()).collect(),
        }
    }

    /// Configured worker count.
    pub fn expected(&self) -> usize {
        self.sessions.len()
    }

    /// Number of claimed slots.
    pub fn registered(&self) -> usize {
        self.sessions.iter().filter(|s| s.token.is_some()).count()
    }

    /// True once every slot is claimed.
    pub fn all_registered(&self) -> bool {
        self.sessions.iter().all(|s| s.token.is_some())
    }

    /// Handles a HELLO: the first HELLO with `token` claims the lowest
    /// free slot; later HELLOs with the same token re-attach to it
    /// (keeping its baseline). Returns the worker id.
    pub fn hello(&mut self, token: u64) -> Result<usize, HelloError> {
        if token == 0 {
            return Err(HelloError::BadToken);
        }
        if let Some(id) = self.sessions.iter().position(|s| s.token == Some(token)) {
            self.sessions[id].reconnects += 1;
            return Ok(id);
        }
        match self.sessions.iter().position(|s| s.token.is_none()) {
            Some(id) => {
                self.sessions[id].token = Some(token);
                Ok(id)
            }
            None => Err(HelloError::Full {
                expected: self.sessions.len(),
            }),
        }
    }

    /// Whether `worker` names a claimed session.
    pub fn is_registered(&self, worker: usize) -> bool {
        self.sessions.get(worker).is_some_and(|s| s.token.is_some())
    }

    /// The stored baseline for `worker`, if its version matches what the
    /// worker claims to hold.
    pub fn baseline_if(&self, worker: usize, have_version: u64) -> Option<&[Vec<u32>]> {
        self.sessions[worker]
            .baseline
            .as_ref()
            .filter(|(v, _)| *v == have_version && have_version != 0)
            .map(|(_, bits)| bits.as_slice())
    }

    /// Records the parameter bits just sent to `worker` as its new
    /// baseline.
    pub fn set_baseline(&mut self, worker: usize, version: u64, bits: Vec<Vec<u32>>) {
        self.sessions[worker].baseline = Some((version, bits));
    }

    /// Marks `worker` as having received Done.
    pub fn mark_done(&mut self, worker: usize) {
        self.sessions[worker].done = true;
    }

    /// True once every worker has received Done.
    pub fn all_done(&self) -> bool {
        self.sessions.iter().all(|s| s.done)
    }

    /// Total re-attaches across all workers.
    pub fn reconnects(&self) -> u64 {
        self.sessions.iter().map(|s| s.reconnects).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_fill_slots_in_order() {
        let mut r = Registry::new(2);
        assert_eq!(r.hello(10), Ok(0));
        assert!(!r.all_registered());
        assert_eq!(r.hello(20), Ok(1));
        assert!(r.all_registered());
        assert_eq!(r.hello(30), Err(HelloError::Full { expected: 2 }));
    }

    #[test]
    fn repeated_token_reattaches_and_keeps_baseline() {
        let mut r = Registry::new(1);
        assert_eq!(r.hello(10), Ok(0));
        r.set_baseline(0, 7, vec![vec![1, 2]]);
        assert_eq!(r.hello(10), Ok(0), "same token maps to the same slot");
        assert_eq!(r.reconnects(), 1);
        assert_eq!(r.baseline_if(0, 7), Some(&[vec![1, 2]][..]));
    }

    #[test]
    fn lost_welcome_retry_does_not_leak_a_slot() {
        // The whole point of token-keyed registration: a worker whose
        // Welcome got lost retries the identical HELLO and must land on
        // the slot it already claimed, leaving the other slot free.
        let mut r = Registry::new(2);
        assert_eq!(r.hello(10), Ok(0));
        assert_eq!(r.hello(10), Ok(0));
        assert_eq!(r.hello(10), Ok(0));
        assert_eq!(r.registered(), 1);
        assert_eq!(r.hello(20), Ok(1));
    }

    #[test]
    fn zero_token_is_rejected() {
        let mut r = Registry::new(1);
        assert_eq!(r.hello(0), Err(HelloError::BadToken));
    }

    #[test]
    fn baseline_gated_by_claimed_version() {
        let mut r = Registry::new(1);
        r.hello(10).unwrap();
        assert_eq!(r.baseline_if(0, 0), None, "no baseline yet");
        r.set_baseline(0, 5, vec![vec![9]]);
        assert_eq!(r.baseline_if(0, 4), None, "stale claim");
        assert_eq!(r.baseline_if(0, 0), None, "version 0 never matches");
        assert!(r.baseline_if(0, 5).is_some());
    }

    #[test]
    fn done_tracking() {
        let mut r = Registry::new(2);
        r.hello(10).unwrap();
        r.hello(20).unwrap();
        assert!(!r.all_done());
        r.mark_done(0);
        r.mark_done(1);
        assert!(r.all_done());
    }
}
