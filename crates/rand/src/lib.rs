//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.10 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random::<T>()` / `random_range(..)`.
//!
//! The generator is **xoshiro256\*\*** seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), which is fine:
//! nothing in this workspace depends on the upstream stream, only on
//! seed-determinism within the workspace.
//!
//! Beyond the upstream-compatible surface, [`rngs::StdRng`] exposes
//! [`state`](rngs::StdRng::state) / [`from_state`](rngs::StdRng::from_state)
//! so the fault-tolerant training runtime can persist the exact generator
//! position inside run checkpoints and resume a sweep bit-identically.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Advances the generator and returns 64 uniform bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Returns the full internal state (for run-state checkpoints).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact saved position.
        ///
        /// An all-zero state is invalid for xoshiro and is remapped to the
        /// seed-0 state so restoration can never produce a stuck generator.
        pub fn from_state(state: [u64; 4]) -> Self {
            if state == [0; 4] {
                return <Self as crate::SeedableRng>::seed_from_u64(0);
            }
            Self { s: state }
        }
    }
}

/// Seed-construction trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to key xoshiro.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 never yields four zeros for any input, but keep the
        // xoshiro invariant explicit.
        if s == [0; 4] {
            return Self { s: [1, 2, 3, 4] };
        }
        rngs::StdRng { s }
    }
}

/// Types samplable uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample_standard(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard(rng: &mut rngs::StdRng) -> f32 {
        // 24 high bits → uniform in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard(rng: &mut rngs::StdRng) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_range(self, rng: &mut rngs::StdRng) -> Self::Output;
}

/// Uniform u64 in `[0, bound)` by rejection (no modulo bias).
#[inline]
fn bounded_u64(rng: &mut rngs::StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_range(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_range(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_range(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_range(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64);

impl SampleRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_range(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_range(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// Sampling extension methods (subset of `rand::RngExt` / `rand::Rng`).
pub trait RngExt {
    /// Uniform sample of `T` (floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T;
    /// Uniform sample from a range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl RngExt for rngs::StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_range(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f32_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn f32_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| rng.random::<f32>()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_exclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut hit_hi = false;
        for _ in 0..10_000 {
            let v = rng.random_range(0usize..=3);
            assert!(v <= 3);
            hit_hi |= v == 3;
        }
        assert!(hit_hi, "inclusive upper bound never drawn");
    }

    #[test]
    fn every_bucket_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..5 {
            rng.next_u64();
        }
        let saved = rng.state();
        let expect: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(saved);
        let got: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(expect, got, "resumed stream diverged");
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut rng = StdRng::from_state([0; 4]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }
}
