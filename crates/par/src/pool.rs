//! The worker pool behind [`run_chunks`](crate::run_chunks): a global,
//! lazily spawned set of threads executing type-erased chunk jobs.
//!
//! Scheduling model: one `run_chunks` call turns into `n_chunks` jobs
//! sharing a completion latch. The caller executes chunk 0 itself, then
//! *helps drain the queue* until its latch completes — so progress is
//! guaranteed even with zero pool workers (`EDSR_THREADS=1` hosts), and a
//! blocked caller never idles while work is pending. Workers never block
//! on latches, only callers do, so concurrent `run_chunks` calls from
//! different threads cannot deadlock.
//!
//! Panics inside a chunk are caught per job, recorded on the latch, and
//! re-raised on the calling thread *after* every job of the call has
//! finished — jobs borrow the caller's stack, so the caller must never
//! unwind while they are in flight.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::enter_pool_context;

/// A borrowed chunk task, shared by every job of one `run_chunks` call.
/// The `usize` argument is the chunk index.
pub(crate) type Task = dyn Fn(usize) + Sync;

/// Type-erased pointer to a caller-owned [`Task`].
///
/// Soundness: the caller of [`Pool::run`] blocks until the latch counts
/// every job as finished (even when a chunk panics), so the pointee
/// strictly outlives every dereference on the workers.
struct TaskPtr(*const Task);

// SAFETY: the pointee is `Sync` (shared-access safe) and outlives the job
// (see above), so shipping the pointer to a worker thread is sound.
unsafe impl Send for TaskPtr {}

/// One schedulable chunk of a `run_chunks` call.
struct Job {
    task: TaskPtr,
    chunk: usize,
    latch: Arc<Latch>,
}

impl Job {
    /// Runs the chunk, catching panics into the latch.
    fn execute(self) {
        // SAFETY: see `TaskPtr` — the caller keeps the task alive until
        // the latch completes, which happens strictly after this call.
        let task = unsafe { &*self.task.0 };
        let outcome =
            enter_pool_context(|| std::panic::catch_unwind(AssertUnwindSafe(|| task(self.chunk))));
        self.latch.complete(outcome.err());
    }
}

/// Completion latch for one `run_chunks` call.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(LatchState {
                remaining: jobs,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    /// Marks one job finished; the first panic payload wins.
    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch state lock");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("latch state lock").remaining == 0
    }

    /// Blocks until every job has completed.
    fn wait(&self) {
        let mut state = self.state.lock().expect("latch state lock");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch wait");
        }
    }

    /// Re-raises the first recorded chunk panic, if any.
    fn resume_panic(&self) {
        let payload = self.state.lock().expect("latch state lock").panic.take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Queue shared between callers and workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Cumulative busy time (ns) per participant slot, recorded only while
    /// the observability layer is on. Slot 0 aggregates every non-worker
    /// thread (callers running chunk 0 and helping drain); slot `i + 1` is
    /// worker `i`.
    busy_ns: Vec<std::sync::atomic::AtomicU64>,
    /// Completed job count per participant slot (same layout).
    jobs: Vec<std::sync::atomic::AtomicU64>,
}

impl Shared {
    /// Runs one job, charging its wall time to `slot` when the
    /// observability layer is on (a single relaxed load otherwise).
    fn execute_on(&self, job: Job, slot: usize) {
        if edsr_obs::enabled() {
            let t0 = std::time::Instant::now();
            job.execute();
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.busy_ns[slot].fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
            self.jobs[slot].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        } else {
            job.execute();
        }
    }
}

/// The process-wide pool. Workers are detached and live for the process;
/// they spend idle time blocked on the queue condvar.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    /// Workers that actually spawned (spawn failures degrade gracefully,
    /// so this can be below the requested count).
    spawned: usize,
}

impl Pool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            busy_ns: (0..=workers)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            jobs: (0..=workers)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        });
        let mut spawned = 0;
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let result = std::thread::Builder::new()
                .name(format!("edsr-par-{i}"))
                .spawn(move || worker_loop(&shared, i + 1));
            match result {
                Ok(_) => spawned += 1,
                // Degraded but correct: the caller drains the queue itself.
                Err(e) => eprintln!("edsr-par: could not spawn worker {i}: {e}"),
            }
        }
        Self { shared, spawned }
    }

    /// Number of live worker threads (excluding the helping caller).
    pub(crate) fn workers(&self) -> usize {
        self.spawned
    }

    /// Cumulative `(busy_ns, jobs)` per participant slot — slot 0 for the
    /// helping callers, slot `i + 1` for worker `i`. Counts only
    /// accumulate while the observability layer is on.
    pub(crate) fn occupancy(&self) -> Vec<(u64, u64)> {
        self.shared
            .busy_ns
            .iter()
            .zip(&self.shared.jobs)
            .map(|(b, j)| {
                (
                    b.load(std::sync::atomic::Ordering::Relaxed),
                    j.load(std::sync::atomic::Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Executes `task(0..n_chunks)` across the pool and the calling
    /// thread, returning (or re-panicking) once every chunk finished.
    pub(crate) fn run(&self, n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        debug_assert!(n_chunks >= 1);
        // SAFETY: lifetime erasure only — this function blocks until the
        // latch counts every job as finished, so the borrow outlives all
        // uses on the workers (see `TaskPtr`).
        let task: &'static Task = unsafe { std::mem::transmute(task) };
        let latch = Latch::new(n_chunks);
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            for chunk in 1..n_chunks {
                queue.push_back(Job {
                    task: TaskPtr(task as *const Task),
                    chunk,
                    latch: Arc::clone(&latch),
                });
            }
        }
        self.shared.available.notify_all();

        // Chunk 0 runs on the caller (participant slot 0).
        self.shared.execute_on(
            Job {
                task: TaskPtr(task as *const Task),
                chunk: 0,
                latch: Arc::clone(&latch),
            },
            0,
        );

        // Help drain the queue (possibly executing jobs of concurrent
        // calls) until this call's latch completes.
        while !latch.is_done() {
            let job = self
                .shared
                .queue
                .lock()
                .expect("pool queue lock")
                .pop_front();
            match job {
                Some(job) => self.shared.execute_on(job, 0),
                None => latch.wait(),
            }
        }
        latch.resume_panic();
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                match queue.pop_front() {
                    Some(job) => break job,
                    None => queue = shared.available.wait(queue).expect("pool queue wait"),
                }
            }
        };
        shared.execute_on(job, slot);
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The global pool, spawned on first parallel submission with
/// `configured_threads() - 1` workers (the caller is the remaining
/// participant).
pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(crate::configured_threads().saturating_sub(1)))
}

/// The global pool only if a parallel submission already spawned it.
pub(crate) fn try_global() -> Option<&'static Pool> {
    POOL.get()
}
