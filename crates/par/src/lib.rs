//! # edsr-par
//!
//! Deterministic data-parallel compute runtime for the EDSR reproduction.
//!
//! The build environment has no crates.io access, so — like `rand`,
//! `proptest` and `criterion` — the thread pool is vendored in-tree
//! rather than pulled from rayon. The API is deliberately small: the hot
//! paths of the reproduction (matmul kernels, im2col, kNN batches,
//! k-means assignment, covariance accumulation, per-seed bench sweeps)
//! are all data-parallel loops over disjoint output regions.
//!
//! ## Determinism contract
//!
//! Every primitive here produces **bit-identical results at every thread
//! count**, preserving the bit-identical checkpoint/resume guarantee of
//! the fault-tolerant runtime (DESIGN.md §8):
//!
//! - [`par_for_chunks`] / [`par_for_rows`] / [`par_map_collect`] compute
//!   each index from the shared inputs only and write to disjoint output
//!   slices in index order, so chunk boundaries cannot affect values.
//! - [`par_chunk_partials`] (the reduction primitive) derives its chunk
//!   boundaries from `(len, chunk_len)` **only** — never from the thread
//!   count — and returns partials in ascending chunk order for the caller
//!   to fold serially. The float summation tree is therefore fixed.
//!
//! `EDSR_THREADS=1` (or a single-core host) short-circuits to inline
//! serial execution with zero pool overhead, running the exact same
//! per-chunk code.
//!
//! ## Configuration
//!
//! Thread count comes from `EDSR_THREADS` (default:
//! `available_parallelism()`), may be set programmatically before first
//! use via [`set_threads`] (the CLI's `--threads`), and can be overridden
//! per-scope with [`with_threads`] (used by the determinism tests and the
//! `bench` binary to compare serial and parallel timings in one process).

#![forbid(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

mod pool;

/// Process-wide configured thread count; `0` means "not yet resolved".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-scope override installed by [`with_threads`] (`0` = none).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing a pool job; nested parallel
    /// calls then run inline to keep the pool deadlock-free.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the "inside the pool" marker set (nested parallelism
/// runs inline). Used by the pool for workers *and* the helping caller.
pub(crate) fn enter_pool_context<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_POOL.replace(true);
    let out = f();
    IN_POOL.set(prev);
    out
}

/// The process-wide thread count: `EDSR_THREADS` if set and ≥ 1,
/// otherwise `available_parallelism()` (1 if unavailable). Resolved once;
/// [`set_threads`] before first parallel use takes precedence.
pub fn configured_threads() -> usize {
    let current = CONFIGURED.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let resolved = std::env::var("EDSR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    // First resolver wins so every thread agrees on one value.
    match CONFIGURED.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => resolved,
        Err(raced) => raced,
    }
}

/// Sets the process-wide thread count (the CLI's `--threads`). Call
/// before the first parallel operation: the pool sizes its workers from
/// the value seen at first use (later calls still change how many chunks
/// are formed, but not the worker count).
pub fn set_threads(n: usize) {
    CONFIGURED.store(n.max(1), Ordering::Relaxed);
}

/// Worker threads the global pool actually spawned (excluding the helping
/// caller thread), forcing pool initialisation if it has not happened yet.
/// `configured_threads() - 1` in the common case; less if thread spawning
/// failed, and 0 on `EDSR_THREADS=1` or single-core hosts (every chunk
/// then runs inline on the caller). Bench reporting uses this to record
/// the parallelism that was *measured*, not just requested.
pub fn pool_workers() -> usize {
    if configured_threads() == 1 {
        // The pool is never constructed on the serial path; don't spawn
        // it just to count zero workers.
        return 0;
    }
    pool::global().workers()
}

/// Emits the pool's cumulative occupancy to the observability layer:
/// gauges `pool/busy_ns` and `pool/jobs`, indexed by participant slot
/// (0 = the helping caller threads, `i` = worker `i - 1`). Busy time only
/// accumulates while `edsr_obs` is enabled, so install a sink *before*
/// the work being measured. No-op when observability is off or no
/// parallel submission ever spawned the pool.
pub fn emit_pool_metrics() {
    if !edsr_obs::enabled() {
        return;
    }
    let Some(pool) = pool::try_global() else {
        return;
    };
    for (slot, (busy_ns, jobs)) in pool.occupancy().into_iter().enumerate() {
        edsr_obs::gauge_at("pool/busy_ns", slot as u64, busy_ns as f64);
        edsr_obs::gauge_at("pool/jobs", slot as u64, jobs as f64);
    }
}

/// The thread count in effect on this thread: the innermost
/// [`with_threads`] override, else [`configured_threads`].
pub fn thread_count() -> usize {
    let over = OVERRIDE.with(Cell::get);
    if over != 0 {
        over
    } else {
        configured_threads()
    }
}

/// Runs `f` with [`thread_count`] forced to `n` on this thread (restored
/// on exit, including on panic). Results are unaffected by construction —
/// this only changes how many chunks map-style primitives form.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n.max(1))));
    f()
}

/// Balanced chunk boundaries: `len` items into `n_chunks` contiguous
/// ranges, the first `len % n_chunks` ranges one item longer. A pure
/// function of its arguments (the determinism contract leans on this).
pub fn chunk_ranges(len: usize, n_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 || n_chunks == 0 {
        return Vec::new();
    }
    let n = n_chunks.min(len);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `task` on each chunk index `0..n_chunks`, in parallel when the
/// effective thread count allows. Blocks until every chunk has finished;
/// a panicking chunk is re-raised on the caller once all chunks are done.
fn run_chunks(n_chunks: usize, task: impl Fn(usize) + Sync) {
    if n_chunks == 0 {
        return;
    }
    let inline =
        n_chunks == 1 || thread_count() == 1 || IN_POOL.with(Cell::get) || pool_workers() == 0;
    if inline {
        for chunk in 0..n_chunks {
            task(chunk);
        }
        return;
    }
    pool::global().run(n_chunks, &task);
}

/// Splits `0..len` into [`thread_count`] balanced chunks and runs `f`
/// on each chunk's index range. `f` must only write state disjoint per
/// chunk (use [`par_for_rows`] for safe slice splitting).
pub fn par_for_chunks(len: usize, f: impl Fn(Range<usize>) + Sync) {
    if len == 0 {
        return;
    }
    // Single-chunk fast path: identical to `chunk_ranges(len, 1)` (one
    // `0..len` range) but without allocating the range vector — this keeps
    // serial hot loops (e.g. every matmul on a 1-thread host) free of
    // per-call heap traffic. A zero-worker pool (single-core host or
    // failed spawns) takes the same flat path: every chunk would run on
    // the caller anyway, so splitting only adds per-chunk overhead —
    // values are unaffected because chunk boundaries never influence
    // results (see the determinism contract above).
    if len == 1 || thread_count() == 1 || IN_POOL.with(Cell::get) || pool_workers() == 0 {
        f(0..len);
        return;
    }
    let ranges = chunk_ranges(len, thread_count());
    run_chunks(ranges.len(), |chunk| f(ranges[chunk].clone()));
}

/// Raw-pointer wrapper that lets disjoint sub-slices cross into pool jobs.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the bare non-`Sync` pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: each job derives a sub-slice disjoint from every other job's
// (disjoint row ranges of one allocation), and the caller blocks until
// all jobs finish — standard split-at-mut reasoning, done dynamically.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Interprets `out` as `n_rows` equal-width rows, splits it into
/// contiguous row-chunks (one per effective thread) and runs
/// `f(row_range, chunk_slice)` on each — the core "write disjoint output
/// slices in index order" primitive behind the parallel matmuls.
///
/// # Panics
/// Panics if `out.len()` is not a multiple of `n_rows` (for `n_rows > 0`),
/// or if `n_rows > 0` with an empty non-divisible slice.
pub fn par_for_rows<T, F>(out: &mut [T], n_rows: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    if n_rows == 0 {
        return;
    }
    assert_eq!(
        out.len() % n_rows,
        0,
        "par_for_rows: slice length {} is not a multiple of {n_rows} rows",
        out.len()
    );
    let width = out.len() / n_rows;
    let base = SendPtr(out.as_mut_ptr());
    par_for_chunks(n_rows, |rows| {
        // SAFETY: `rows` ranges partition `0..n_rows`, so the derived
        // sub-slices are disjoint; the borrow of `out` outlives the call.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(rows.start * width), rows.len() * width)
        };
        f(rows, chunk);
    });
}

/// Computes `f(i)` for `i in 0..n` in parallel and returns the results in
/// index order. Each result depends only on its index, so the output is
/// independent of chunking and thread count.
pub fn par_map_collect<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    par_for_rows(&mut slots, n, |rows, chunk| {
        for (slot, i) in chunk.iter_mut().zip(rows) {
            *slot = Some(f(i));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("par_map_collect: every chunk completed"))
        .collect()
}

/// Fixed-order chunked reduction: splits `0..len` into chunks of exactly
/// `chunk_len` items (last chunk possibly shorter), accumulates each with
/// `f` into a fresh `init()`, and returns the partials in ascending chunk
/// order for the caller to fold serially.
///
/// Chunk boundaries depend only on `(len, chunk_len)` — **never** on the
/// thread count — so the float summation tree, and therefore the folded
/// result, is bit-identical at every thread count.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn par_chunk_partials<T, I, F>(len: usize, chunk_len: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(Range<usize>, &mut T) + Sync,
{
    assert!(chunk_len > 0, "par_chunk_partials: chunk_len must be >= 1");
    let n_chunks = len.div_ceil(chunk_len);
    par_map_collect(n_chunks, |chunk| {
        let start = chunk * chunk_len;
        let end = (start + chunk_len).min(len);
        let mut acc = init();
        f(start..end, &mut acc);
        acc
    })
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    use std::sync::Mutex;
    let fa = Mutex::new(Some(fa));
    let fb = Mutex::new(Some(fb));
    let ra: Mutex<Option<A>> = Mutex::new(None);
    let rb: Mutex<Option<B>> = Mutex::new(None);
    run_chunks(2, |chunk| {
        if chunk == 0 {
            let f = fa
                .lock()
                .expect("join slot")
                .take()
                .expect("join runs once");
            *ra.lock().expect("join result") = Some(f());
        } else {
            let f = fb
                .lock()
                .expect("join slot")
                .take()
                .expect("join runs once");
            *rb.lock().expect("join result") = Some(f());
        }
    });
    let a = ra
        .into_inner()
        .expect("join result")
        .expect("join chunk 0 ran");
    let b = rb
        .into_inner()
        .expect("join result")
        .expect("join chunk 1 ran");
    (a, b)
}

/// Catches a panic from `f`, rendering the payload as a string — the
/// bridge that lets sweep drivers record a panicking worker as a
/// structured error instead of unwinding the whole process.
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_and_balance() {
        let ranges = chunk_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        // len < n_chunks: one chunk per item, never empty chunks.
        let ranges = chunk_ranges(2, 8);
        assert_eq!(ranges, vec![0..1, 1..2]);
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(4, 0).is_empty());
        // Exact partition for a spread of shapes.
        for len in [1usize, 7, 64, 1000] {
            for n in [1usize, 2, 3, 7, 16] {
                let ranges = chunk_ranges(len, n);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                    assert!(!pair[1].is_empty());
                }
            }
        }
    }

    #[test]
    fn par_for_chunks_empty_input_is_noop() {
        let mut touched = false;
        par_for_chunks(0, |_| {
            // Never called; the flag below would race if it were.
            let _ = &touched;
        });
        touched = true;
        assert!(touched);
    }

    #[test]
    fn par_for_rows_matches_serial_at_every_thread_count() {
        let n_rows = 13;
        let width = 5;
        let expected: Vec<f32> = (0..n_rows * width).map(|i| (i as f32).sin()).collect();
        for threads in [1usize, 2, 7, 16] {
            let mut out = vec![0.0f32; n_rows * width];
            with_threads(threads, || {
                par_for_rows(&mut out, n_rows, |rows, chunk| {
                    for (local, row) in rows.enumerate() {
                        for c in 0..width {
                            chunk[local * width + c] = ((row * width + c) as f32).sin();
                        }
                    }
                });
            });
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_collect_len_smaller_than_threads() {
        let out = with_threads(8, || par_map_collect(3, |i| i * i));
        assert_eq!(out, vec![0, 1, 4]);
        let empty: Vec<usize> = with_threads(8, || par_map_collect(0, |i| i));
        assert!(empty.is_empty());
    }

    #[test]
    fn par_chunk_partials_fixed_boundaries() {
        // Boundaries depend on (len, chunk_len) only: identical partials
        // at every thread count, and the serial fold is bit-stable.
        let data: Vec<f32> = (0..1000).map(|i| (i as f32).cos() * 1e-3).collect();
        let reduce = |threads: usize| {
            with_threads(threads, || {
                par_chunk_partials(
                    data.len(),
                    64,
                    || 0.0f32,
                    |range, acc| {
                        for i in range {
                            *acc += data[i];
                        }
                    },
                )
            })
        };
        let serial = reduce(1);
        assert_eq!(serial.len(), 1000usize.div_ceil(64));
        for threads in [2usize, 7, 16] {
            let partials = reduce(threads);
            for (a, b) in serial.iter().zip(&partials) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn zero_worker_pool_takes_single_flat_chunk() {
        if pool_workers() != 0 {
            eprintln!("skipping zero-worker fall-through test: pool spawned workers");
            return;
        }
        // With no workers, chunking is pure overhead: the scope override
        // asks for 7 chunks but the call must collapse to one flat range.
        let ranges = std::sync::Mutex::new(Vec::new());
        with_threads(7, || {
            par_for_chunks(100, |r| ranges.lock().expect("range log").push(r));
        });
        assert_eq!(ranges.into_inner().expect("range log"), vec![0..100]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn panic_in_worker_propagates_not_hangs() {
        let result = catch_panic(|| {
            with_threads(4, || {
                par_for_chunks(16, |range| {
                    if range.contains(&9) {
                        panic!("chunk exploded");
                    }
                });
            });
        });
        let msg = result.expect_err("panic must propagate to the caller");
        assert!(msg.contains("chunk exploded"), "{msg}");
        // The pool must stay usable after a propagated panic.
        let sum: usize = with_threads(4, || par_map_collect(100, |i| i)).iter().sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = thread_count();
        let _ = catch_panic(|| with_threads(5, || panic!("boom")));
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        // A nested call inside a chunk must not deadlock and must produce
        // the same values.
        let out = with_threads(4, || {
            par_map_collect(6, |i| {
                let inner: usize = par_map_collect(50, |j| i + j).iter().sum();
                inner
            })
        });
        let expected: Vec<usize> = (0..6).map(|i| (0..50).map(|j| i + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn configured_threads_is_at_least_one() {
        assert!(configured_threads() >= 1);
        assert!(thread_count() >= 1);
    }
}
