//! Reusable buffer arena for allocation-free hot paths.
//!
//! [`Scratch`] is a pool of `Vec<f32>` buffers ordered by capacity. Hot
//! paths ([`crate::Tape`], the conv im2col lowering, PCA covariance, batched
//! kNN) *take* a buffer of the length they need and *give* it back when the
//! step is over — after a warmup step, every take is served from the pool
//! and the steady-state training step performs zero heap allocations
//! (ownership rules in DESIGN.md §10).
//!
//! The pool tracks how many takes missed (required a fresh allocation),
//! which the allocation-counter tests assert drops to zero at steady state.

use crate::matrix::Matrix;

/// A capacity-ordered pool of reusable `f32` buffers.
#[derive(Default)]
pub struct Scratch {
    /// Free buffers, sorted ascending by capacity.
    free: Vec<Vec<f32>>,
    /// Takes that could not be served from the pool (i.e. allocations).
    misses: u64,
    /// Total takes, for diagnostics.
    takes: u64,
    /// High-water mark: the largest single take ever requested.
    peak_request: usize,
    /// High-water mark: total `f32`s allocated by pool misses.
    alloc_floats: u64,
}

impl Scratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest pooled buffer whose capacity suffices. Return it with
    /// [`give`](Self::give) to keep the steady state allocation-free.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.takes += 1;
        self.peak_request = self.peak_request.max(len);
        let pos = self.free.partition_point(|b| b.capacity() < len);
        if pos < self.free.len() {
            let mut buf = self.free.remove(pos);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        } else {
            self.misses += 1;
            self.alloc_floats += len as u64;
            vec![0.0; len]
        }
    }

    /// Returns a buffer to the pool.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let pos = self.free.partition_point(|b| b.capacity() < buf.capacity());
        self.free.insert(pos, buf);
    }

    /// Takes a zero-filled `rows x cols` matrix backed by a pooled buffer.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Takes a pooled matrix initialized to a copy of `src`.
    pub fn take_copy(&mut self, src: &Matrix) -> Matrix {
        let mut buf = self.take(src.len());
        buf.copy_from_slice(src.data());
        Matrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn give_matrix(&mut self, m: Matrix) {
        self.give(m.into_vec());
    }

    /// Number of takes that had to allocate (pool misses) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total takes served so far.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// High-water mark: the largest single take requested so far.
    pub fn peak_request(&self) -> usize {
        self.peak_request
    }

    /// High-water mark: total `f32`s allocated by pool misses so far
    /// (steady state stops growing once the pool is warm).
    pub fn alloc_floats(&self) -> u64 {
        self.alloc_floats
    }

    /// Records this arena's counters and high-water marks as `edsr-obs`
    /// gauges (`scratch/takes`, `scratch/misses`, `scratch/pooled`,
    /// `scratch/peak_request`, `scratch/alloc_floats`), tagged with
    /// `index` to distinguish arenas. No-op (one atomic load) when
    /// observability is off.
    pub fn emit_metrics(&self, index: u64) {
        if !edsr_obs::enabled() {
            return;
        }
        edsr_obs::gauge_at("scratch/takes", index, self.takes as f64);
        edsr_obs::gauge_at("scratch/misses", index, self.misses as f64);
        edsr_obs::gauge_at("scratch/pooled", index, self.free.len() as f64);
        edsr_obs::gauge_at("scratch/peak_request", index, self.peak_request as f64);
        edsr_obs::gauge_at("scratch/alloc_floats", index, self.alloc_floats as f64);
    }

    /// Absorbs every pooled buffer of `other` into this pool (used when a
    /// worker's scratch is merged back after a scoped borrow).
    pub fn absorb(&mut self, mut other: Scratch) {
        for buf in other.free.drain(..) {
            self.give(buf);
        }
        self.misses += other.misses;
        self.takes += other.takes;
        self.peak_request = self.peak_request.max(other.peak_request);
        self.alloc_floats += other.alloc_floats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_sized() {
        let mut s = Scratch::new();
        let mut buf = s.take(8);
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|&v| v == 0.0));
        buf.iter_mut().for_each(|v| *v = 3.0);
        s.give(buf);
        // Reuse must re-zero.
        let buf = s.take(4);
        assert_eq!(buf.len(), 4);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut s = Scratch::new();
        // Warmup: three distinct sizes.
        for &len in &[16usize, 64, 256] {
            let b = s.take(len);
            s.give(b);
        }
        let warm_misses = s.misses();
        // Steady state: same sizes (any order) — zero new misses.
        for &len in &[256usize, 16, 64, 64, 16] {
            let b = s.take(len);
            s.give(b);
        }
        assert_eq!(s.misses(), warm_misses, "steady state allocated");
    }

    #[test]
    fn smallest_sufficient_buffer_is_chosen() {
        let mut s = Scratch::new();
        s.give(vec![0.0; 100]);
        s.give(vec![0.0; 10]);
        let b = s.take(5);
        assert!(b.capacity() >= 5 && b.capacity() < 100, "took the big one");
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn matrix_roundtrip_reuses_buffer() {
        let mut s = Scratch::new();
        let m = s.take_matrix(4, 4);
        s.give_matrix(m);
        let before = s.misses();
        let m = s.take_matrix(2, 8);
        assert_eq!(m.shape(), (2, 8));
        s.give_matrix(m);
        assert_eq!(s.misses(), before);
    }

    #[test]
    fn take_copy_copies() {
        let mut s = Scratch::new();
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let c = s.take_copy(&src);
        assert_eq!(c, src);
    }

    #[test]
    fn high_water_marks_track_takes_and_misses() {
        let mut s = Scratch::new();
        let b = s.take(100); // miss: +100 floats, peak 100
        s.give(b);
        let b = s.take(40); // served from pool
        s.give(b);
        assert_eq!(s.peak_request(), 100);
        assert_eq!(s.alloc_floats(), 100);
        let b = s.take(200); // miss again
        s.give(b);
        assert_eq!(s.peak_request(), 200);
        assert_eq!(s.alloc_floats(), 300);
    }

    #[test]
    fn absorb_merges_pools() {
        let mut a = Scratch::new();
        let mut b = Scratch::new();
        b.give(vec![0.0; 32]);
        let b_takes = b.takes();
        a.absorb(b);
        assert_eq!(a.pooled(), 1);
        assert_eq!(a.takes(), b_takes);
    }
}
