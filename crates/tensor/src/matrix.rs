//! Dense row-major `f32` matrix.
//!
//! [`Matrix`] is the single numeric container of the workspace: datasets,
//! minibatches, representations, weights and gradients are all matrices.
//! The matrix products dispatch to the cache-blocked, register-tiled
//! kernels of [`crate::kernel`] (in-tree, per the repository's
//! no-external-substrate rule); tiny products use the retained naive
//! loops. Large products are data-parallel over *output rows* via
//! `edsr-par`: every output element keeps the exact serial accumulation
//! order, so results are bit-identical at every thread count (the
//! determinism contract of DESIGN.md §9, kernel details in §10).

use std::fmt;

use rand::rngs::StdRng;

use crate::kernel;
use crate::rng::{gaussian, uniform};

/// A dense, row-major matrix of `f32` values.
///
/// Invariant: `data.len() == rows * cols` at all times.
///
/// ```
/// use edsr_tensor::Matrix;
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.trace(), 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for c in 0..max_cols {
                write!(f, "{:9.4}", self.get(r, c))?;
                if c + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a matrix with entries drawn i.i.d. from `N(0, std^2)`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = gaussian(rng) * std;
        }
        m
    }

    /// Creates a matrix with entries drawn i.i.d. from `U[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = uniform(rng, lo, hi);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn copy_row_from(&mut self, dst: usize, other: &Matrix, src: usize) {
        assert_eq!(self.cols, other.cols, "copy_row_from: column mismatch");
        // `self` and `other` cannot alias (`&mut self` + `&other`), so the
        // source row can be borrowed directly — no temporary copy.
        self.row_mut(dst)
            .copy_from_slice(&other.data[src * other.cols..(src + 1) * other.cols]);
    }

    /// Builds a new matrix from the selected rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.copy_row_from(dst, self, src);
        }
        out
    }

    /// Stacks matrices vertically.
    ///
    /// # Panics
    /// Panics if column counts differ or `parts` is empty.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack: need at least one matrix");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Writes `f` applied to every element of `self` into `out` (same
    /// shape), without allocating.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f32) -> f32) {
        assert_eq!(self.shape(), out.shape(), "map_into: shape mismatch");
        for (o, &v) in out.data.iter_mut().zip(&self.data) {
            *o = f(v);
        }
    }

    /// Writes the elementwise combination of `self` and `other` into `out`
    /// (all same shape), without allocating.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map_into(&self, other: &Matrix, out: &mut Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip_map_into: shape mismatch");
        assert_eq!(
            self.shape(),
            out.shape(),
            "zip_map_into: out shape mismatch"
        );
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
    }

    /// Elementwise combination of two same-shape matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other` (elementwise).
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other` (elementwise).
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * c` (scalar multiply).
    pub fn scale(&self, c: f32) -> Matrix {
        self.map(|v| v * c)
    }

    /// In-place `self += other` (SIMD-dispatched, [`crate::simd`]).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        crate::simd::add_assign(&mut self.data, &other.data);
    }

    /// In-place `self += c * other` (axpy, SIMD-dispatched).
    pub fn add_scaled(&mut self, other: &Matrix, c: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        crate::simd::axpy(&mut self.data, &other.data, c);
    }

    /// In-place `self *= c` (SIMD-dispatched).
    pub fn scale_inplace(&mut self, c: f32) {
        crate::simd::scale(&mut self.data, c);
    }

    /// Writes `self * c` into same-shape `out` without allocating
    /// (SIMD-dispatched).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn scale_into(&self, out: &mut Matrix, c: f32) {
        assert_eq!(self.shape(), out.shape(), "scale_into: shape mismatch");
        crate::simd::scale_into(&mut out.data, &self.data, c);
    }

    /// Sets all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix product `self (r x k) * other (k x c)`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self * other` written into a caller-provided matrix (reused from a
    /// scratch arena on hot paths; the previous contents are overwritten).
    ///
    /// # Panics
    /// Panics if inner dimensions disagree or `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        assert_eq!(out.shape(), (n, m), "matmul_into: out shape mismatch");
        out.fill_zero();
        kernel::matmul(&self.data, &other.data, &mut out.data, n, k, m);
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// `selfᵀ * other` written into a caller-provided matrix.
    ///
    /// # Panics
    /// Panics if row counts disagree or `out` has the wrong shape.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_matmul: row mismatch {} vs {}",
            self.rows, other.rows
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        assert_eq!(out.shape(), (k, m), "transpose_matmul_into: out shape");
        out.fill_zero();
        kernel::transpose_matmul(&self.data, &other.data, &mut out.data, n, k, m);
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// `self * otherᵀ` written into a caller-provided matrix.
    ///
    /// # Panics
    /// Panics if column counts disagree or `out` has the wrong shape.
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose: col mismatch {} vs {}",
            self.cols, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        assert_eq!(out.shape(), (n, m), "matmul_transpose_into: out shape");
        out.fill_zero();
        kernel::matmul_transpose(&self.data, &other.data, &mut out.data, n, k, m);
    }

    /// Transposed copy (cache-blocked).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose written into a caller-provided `cols x rows` matrix.
    ///
    /// # Panics
    /// Panics if `out` has the wrong shape.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into: out shape mismatch"
        );
        kernel::transpose(&self.data, &mut out.data, self.rows, self.cols);
    }

    /// Adds a `1 x cols` row vector to every row.
    ///
    /// # Panics
    /// Panics unless `bias` is `1 x self.cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.add_row_broadcast_into(bias, &mut out);
        out
    }

    /// Row-broadcast add written into a caller-provided matrix in a single
    /// pass (no intermediate full-matrix copy).
    ///
    /// # Panics
    /// Panics unless `bias` is `1 x self.cols` and `out` matches `self`.
    pub fn add_row_broadcast_into(&self, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(bias.rows, 1, "add_row_broadcast: bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "add_row_broadcast: width mismatch");
        assert_eq!(
            out.shape(),
            self.shape(),
            "add_row_broadcast_into: out shape mismatch"
        );
        for (out_row, src_row) in out
            .data
            .chunks_exact_mut(self.cols.max(1))
            .zip(self.data.chunks_exact(self.cols.max(1)))
        {
            for ((o, &v), &b) in out_row.iter_mut().zip(src_row).zip(&bias.data) {
                *o = v + b;
            }
        }
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Column means as a `1 x cols` row vector.
    pub fn col_means(&self) -> Matrix {
        let mut out = self.col_sums();
        if self.rows > 0 {
            out.scale_inplace(1.0 / self.rows as f32);
        }
        out
    }

    /// Row sums as a `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Euclidean (L2) norm of each row, as a `rows x 1` column vector.
    pub fn row_norms(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Trace (sum of diagonal entries) of a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f32 {
        assert_eq!(self.rows, self.cols, "trace: matrix must be square");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Index of the maximum element in each row.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Maximum absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn m2x3() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
        m.add_at(1, 0, 0.5);
        assert_eq!(m.get(1, 0), 8.0);
    }

    #[test]
    fn row_access() {
        let m = m2x3();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn select_rows_reorders() {
        let m = m2x3();
        let s = m.select_rows(&[1, 0, 1]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(s.row(2), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = m2x3();
        let b = Matrix::filled(1, 3, 9.0);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(2), &[9.0, 9.0, 9.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = m2x3();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Matrix::randn(5, 3, 1.0, &mut rng);
        let b = Matrix::randn(5, 4, 1.0, &mut rng);
        let fast = a.transpose_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(6, 3, 1.0, &mut rng);
        let fast = a.matmul_transpose(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn transpose_involution() {
        let m = m2x3();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_sub_mul_scale() {
        let a = m2x3();
        let b = Matrix::filled(2, 3, 2.0);
        assert_eq!(a.add(&b).get(0, 0), 3.0);
        assert_eq!(a.sub(&b).get(1, 2), 4.0);
        assert_eq!(a.mul_elem(&b).get(1, 0), 8.0);
        assert_eq!(a.scale(0.5).get(0, 1), 1.0);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        a.add_scaled(&b, 2.0);
        assert!(a.data().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn broadcast_row_add() {
        let a = m2x3();
        let bias = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(out.row(1), &[14.0, 25.0, 36.0]);
    }

    #[test]
    fn reductions() {
        let m = m2x3();
        assert_eq!(m.sum(), 21.0);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.col_sums().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.col_means().data(), &[2.5, 3.5, 4.5]);
        assert_eq!(m.row_sums().data(), &[6.0, 15.0]);
    }

    #[test]
    fn row_norms_known() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 2.0]);
        let n = m.row_norms();
        assert!((n.data()[0] - 5.0).abs() < 1e-6);
        assert!((n.data()[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_per_row() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 0.0]);
        assert_eq!(m.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = Matrix::randn(100, 100, 1.0, &mut rng);
        let mean = m.mean();
        let var = m.map(|v| v * v).mean() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let m = Matrix::rand_uniform(50, 50, -2.0, 3.0, &mut rng);
        assert!(m.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m.set(0, 0, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn trace_square_only() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 9.0, 9.0, 2.0]);
        assert_eq!(m.trace(), 3.0);
    }

    #[test]
    #[should_panic(expected = "vstack")]
    fn vstack_column_mismatch_panics() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        let _ = Matrix::vstack(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn broadcast_width_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let bias = Matrix::row_vector(&[1.0, 2.0]);
        let _ = a.add_row_broadcast(&bias);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_inner_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_vector_shape() {
        let v = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), (1, 3));
    }

    #[test]
    fn into_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = m2x3();
        m.map_inplace(|v| v * 2.0);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let m = m2x3();
        assert_eq!(m.max_abs_diff(&m.clone()), 0.0);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = m2x3();
        m.fill_zero();
        assert_eq!(m.sum(), 0.0);
    }

    /// Regression: the old `ikj` kernel skipped `a == 0.0` terms, so a NaN
    /// in `B` multiplied by a zero in `A` silently vanished and the
    /// divergence guard never saw it. NaN must poison the affected output.
    #[test]
    fn matmul_propagates_nan_through_zero_operand() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::NAN, 2.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan());

        let at = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        assert!(at.transpose_matmul(&b).get(0, 0).is_nan());

        let bt = Matrix::from_vec(1, 2, vec![f32::NAN, 2.0]);
        assert!(a.matmul_transpose(&bt).get(0, 0).is_nan());
    }

    /// Determinism contract (DESIGN.md §9): all three products are
    /// bit-identical at every thread count, including shapes large enough
    /// to cross `MIN_PAR_FLOPS` and take the pool path.
    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Matrix::randn(37, 53, 1.0, &mut rng);
        let b = Matrix::randn(53, 41, 1.0, &mut rng);
        let c = Matrix::randn(37, 41, 1.0, &mut rng);
        let bt = Matrix::randn(41, 53, 1.0, &mut rng);
        let serial = edsr_par::with_threads(1, || {
            (
                a.matmul(&b),
                a.transpose_matmul(&c),
                a.matmul_transpose(&bt),
            )
        });
        for threads in [2, 7] {
            let par = edsr_par::with_threads(threads, || {
                (
                    a.matmul(&b),
                    a.transpose_matmul(&c),
                    a.matmul_transpose(&bt),
                )
            });
            for (s, p) in [
                (&serial.0, &par.0),
                (&serial.1, &par.1),
                (&serial.2, &par.2),
            ] {
                assert!(
                    s.data()
                        .iter()
                        .zip(p.data())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "product differs at {threads} threads"
                );
            }
        }
    }
}
