//! Cache-blocked, register-tiled GEMM kernels.
//!
//! All three matrix products of the workspace (`A·B`, `Aᵀ·B`, `A·Bᵀ`)
//! funnel through one tiled kernel: the right-hand operand is packed into
//! `NR`-wide column panels (k-major, zero-padded at the edge), the left
//! operand is packed per `MR`-row micro-panel into a small stack buffer,
//! and an `MR x NR` register micro-tile accumulates over `chunks_exact`
//! iterations of the packed panels — explicit accumulator arrays that LLVM
//! keeps in vector registers.
//!
//! ## Determinism (DESIGN.md §9 / §10)
//!
//! Tiling `i`/`j` freely is safe: every output element still owns exactly
//! one accumulator. The reduction dimension is blocked in **ascending**
//! `KC`-sized steps, and within a block the micro-kernel walks `k`
//! ascending, so each output element sees the exact addition sequence of
//! the naive serial kernel: `0 + t_0 + t_1 + … + t_{k-1}`. The first block
//! starts its accumulator at `0.0` (matching the naive kernels bit-for-bit,
//! including signed-zero corner cases) and later blocks resume from the
//! stored partial — a lossless f32 round-trip. Because no output element's
//! accumulation order depends on tile shape or chunk boundaries, results
//! are bit-identical at every thread count, and the tiled kernels compose
//! with [`edsr_par::par_for_rows`] exactly like the naive ones did.
//!
//! Zero-padded pack lanes only feed accumulator lanes that are never
//! stored, so padding cannot perturb (or be perturbed by) real data —
//! `0 * NaN` in a *live* lane still propagates, preserving the divergence
//! guard's visibility into non-finite activations.
//!
//! The [`naive`] module retains the original loop kernels verbatim as the
//! bit-exact reference (property tests) and as the small-size fast path.
//!
//! ## ISA dispatch (DESIGN.md §15)
//!
//! The full `MR x NR` register tile is fetched from the [`crate::simd`]
//! dispatch table (scalar / AVX2 / AVX-512, selected at startup or pinned
//! with `EDSR_ISA`). Every ISA's tile preserves the per-element ascending
//! `k` order with separate multiply and add, so the bit-identity contract
//! above holds across ISAs too, not just per ISA level. Edge tiles (partial
//! rows/columns) stay scalar: same addition sequence, negligible time.

use crate::simd;
use std::cell::Cell;
use std::ops::Range;

/// Rows per register micro-tile.
pub const MR: usize = 8;
/// Columns per register micro-tile (one 64-byte cache line of `f32`).
pub const NR: usize = 16;
/// Reduction-dimension block length: the `MR x KC` left panel (~8 KiB)
/// and the `NR x KC` right panel slice (~16 KiB) stay L1-resident while a
/// micro-tile accumulates.
pub const KC: usize = 256;

/// Below this many multiply-accumulates the packing overhead of the tiled
/// path outweighs its cache wins, so the naive kernels run instead. Purely
/// a performance knob: both paths produce bit-identical values.
const MIN_TILED_FLOPS: usize = 8 * 1024;

/// Minimum multiply-accumulate count before a product is worth the
/// pool-dispatch overhead; below this the same kernel runs inline.
const MIN_PAR_FLOPS: usize = 32 * 1024;

thread_local! {
    /// Recycled panel-pack buffer: taken at kernel entry, returned on exit,
    /// so steady-state products perform zero heap allocations. Thread-local
    /// (rather than caller-passed) so nested pool-inline calls on worker
    /// threads get their own buffer.
    static PACK_BUF: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` with a zero-initialized-on-growth pack buffer of at least
/// `len` floats, recycling the allocation across calls on this thread.
fn with_pack_buf<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_BUF.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let out = f(&mut buf[..len]);
        cell.set(buf);
        out
    })
}

/// How the logical left operand (out-rows `R` by reduction `D`) maps onto
/// its backing slice.
#[derive(Clone, Copy)]
enum Lhs<'a> {
    /// Element `(r, d)` lives at `a[r * D + d]` (matmul, matmul_transpose).
    RowMajor(&'a [f32]),
    /// Element `(r, d)` lives at `a[d * R + r]`: the operand is traversed
    /// transposed without materializing it (transpose_matmul).
    Transposed(&'a [f32]),
}

/// How the logical right operand (reduction `D` by out-cols `C`) maps onto
/// its backing slice.
#[derive(Clone, Copy)]
enum Rhs<'a> {
    /// Element `(d, c)` lives at `b[d * C + c]` (matmul, transpose_matmul).
    RowMajor(&'a [f32]),
    /// Element `(d, c)` lives at `b[c * D + d]` (matmul_transpose).
    Transposed(&'a [f32]),
}

/// Packs the right operand into `ceil(C / NR)` column panels. Panel `jp`
/// occupies `bp[jp * D * NR ..][.. D * NR]`, k-major (`bp[p * NR + jj]`),
/// zero-padded in the last panel so the micro-kernel never branches on the
/// column edge.
fn pack_rhs(rhs: Rhs, bp: &mut [f32], d: usize, c: usize) {
    let panels = c.div_ceil(NR);
    debug_assert!(bp.len() >= panels * d * NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let nr_eff = NR.min(c - j0);
        let panel = &mut bp[jp * d * NR..][..d * NR];
        match rhs {
            Rhs::RowMajor(b) => {
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = &b[p * c + j0..][..nr_eff];
                    dst[..nr_eff].copy_from_slice(src);
                    dst[nr_eff..].fill(0.0);
                }
            }
            Rhs::Transposed(b) => {
                for jj in 0..NR {
                    if jj < nr_eff {
                        for (p, &v) in b[(j0 + jj) * d..][..d].iter().enumerate() {
                            panel[p * NR + jj] = v;
                        }
                    } else {
                        for p in 0..d {
                            panel[p * NR + jj] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Packs the `mr_eff`-row left micro-panel for reduction block
/// `d0 .. d0 + dc` into `ap` (layout `ap[dd * MR + ii]`), zero-padding
/// rows past `mr_eff` so the full-tile kernel can run unconditionally.
#[allow(clippy::too_many_arguments)] // flat tile coordinates, hot path
fn pack_lhs(
    lhs: Lhs,
    ap: &mut [f32],
    r0: usize,
    mr_eff: usize,
    d0: usize,
    dc: usize,
    r: usize,
    d: usize,
) {
    match lhs {
        Lhs::RowMajor(a) => {
            for ii in 0..MR {
                if ii < mr_eff {
                    for (dd, &v) in a[(r0 + ii) * d + d0..][..dc].iter().enumerate() {
                        ap[dd * MR + ii] = v;
                    }
                } else {
                    for dd in 0..dc {
                        ap[dd * MR + ii] = 0.0;
                    }
                }
            }
        }
        Lhs::Transposed(a) => {
            for dd in 0..dc {
                let dst = &mut ap[dd * MR..][..MR];
                dst[..mr_eff].copy_from_slice(&a[(d0 + dd) * r + r0..][..mr_eff]);
                dst[mr_eff..].fill(0.0);
            }
        }
    }
}

/// Edge tile (partial rows and/or columns): same packed panels, same
/// per-element ascending-`k` addition sequence, scalar loop. Only live
/// elements are loaded and stored.
#[allow(clippy::too_many_arguments)] // flat tile coordinates, hot path
fn edge_tile(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    row0: usize,
    mr_eff: usize,
    j0: usize,
    nr_eff: usize,
    ldc: usize,
    dc: usize,
    first: bool,
) {
    for ii in 0..mr_eff {
        for jj in 0..nr_eff {
            let mut v = if first {
                0.0
            } else {
                c[(row0 + ii) * ldc + j0 + jj]
            };
            for dd in 0..dc {
                v += ap[dd * MR + ii] * bp[dd * NR + jj];
            }
            c[(row0 + ii) * ldc + j0 + jj] = v;
        }
    }
}

/// Computes one contiguous out-row chunk (`rows`, writing into the
/// chunk-local slice `chunk`) of the `R x C` product with reduction length
/// `d_total`, reading the pre-packed right operand `bp`.
#[allow(clippy::too_many_arguments)] // flat product coordinates, hot path
fn tiled_chunk(
    kern: &'static simd::Kernel,
    lhs: Lhs,
    bp: &[f32],
    chunk: &mut [f32],
    rows: Range<usize>,
    d_total: usize,
    c_total: usize,
    r_total: usize,
) {
    let mut ap = [0.0f32; MR * KC];
    let c_panels = c_total.div_ceil(NR);
    let mut d0 = 0;
    while d0 < d_total {
        let dc = KC.min(d_total - d0);
        let first = d0 == 0;
        let ap_used = dc * MR;
        let mut r0 = rows.start;
        while r0 < rows.end {
            let mr_eff = MR.min(rows.end - r0);
            pack_lhs(
                lhs,
                &mut ap[..ap_used],
                r0,
                mr_eff,
                d0,
                dc,
                r_total,
                d_total,
            );
            let row0 = r0 - rows.start;
            for jp in 0..c_panels {
                let j0 = jp * NR;
                let bp_block = &bp[jp * d_total * NR + d0 * NR..][..dc * NR];
                if mr_eff == MR && j0 + NR <= c_total {
                    (kern.tile8x16)(&ap[..ap_used], bp_block, chunk, row0, j0, c_total, first);
                } else {
                    let nr_eff = NR.min(c_total - j0);
                    edge_tile(
                        &ap[..ap_used],
                        bp_block,
                        chunk,
                        row0,
                        mr_eff,
                        j0,
                        nr_eff,
                        c_total,
                        dc,
                        first,
                    );
                }
            }
            r0 += MR;
        }
        d0 += KC;
    }
}

/// Packs the right operand, then runs the tiled chunk kernel over the
/// output rows — through the pool when the product is large enough.
fn tiled_product(
    kern: &'static simd::Kernel,
    lhs: Lhs,
    rhs: Rhs,
    out: &mut [f32],
    r: usize,
    d: usize,
    c: usize,
) {
    debug_assert_eq!(out.len(), r * c);
    let panels = c.div_ceil(NR);
    with_pack_buf(panels * d * NR, |bp| {
        pack_rhs(rhs, bp, d, c);
        let bp: &[f32] = bp;
        let run = |rows: Range<usize>, chunk: &mut [f32]| {
            tiled_chunk(kern, lhs, bp, chunk, rows, d, c, r)
        };
        if r * d * c >= MIN_PAR_FLOPS {
            edsr_par::par_for_rows(out, r, run);
        } else {
            run(0..r, out);
        }
    });
}

/// `out += a (n x k) · b (k x m)`. `out` must be zeroed on entry (the
/// [`crate::Matrix`] wrappers guarantee this); results are then bit-identical
/// to [`naive::matmul`] at every thread count.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    if n * k * m < MIN_TILED_FLOPS {
        naive::matmul(a, b, out, n, k, m);
    } else {
        matmul_tiled(a, b, out, n, k, m);
    }
}

/// Tiled `a · b` without the small-size fallback (tests and benches force
/// this path to compare it against the naive reference).
pub fn matmul_tiled(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    matmul_tiled_with(simd::active(), a, b, out, n, k, m);
}

/// Tiled `a · b` through an explicit dispatch vtable (benches and the ISA
/// bit-identity proptests compare kernels side by side in one process).
pub fn matmul_tiled_with(
    kern: &'static simd::Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
) {
    tiled_product(kern, Lhs::RowMajor(a), Rhs::RowMajor(b), out, n, k, m);
}

/// `out += aᵀ (k x n)ᵀ… — i.e. `a` is `n x k`, `b` is `n x m`, and the
/// `k x m` product `aᵀ · b` accumulates into zeroed `out`.
pub fn transpose_matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    if n * k * m < MIN_TILED_FLOPS {
        naive::transpose_matmul(a, b, out, n, k, m);
    } else {
        transpose_matmul_tiled(a, b, out, n, k, m);
    }
}

/// Tiled `aᵀ · b` without the small-size fallback.
pub fn transpose_matmul_tiled(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    transpose_matmul_tiled_with(simd::active(), a, b, out, n, k, m);
}

/// Tiled `aᵀ · b` through an explicit dispatch vtable.
#[allow(clippy::too_many_arguments)] // flat product coordinates
pub fn transpose_matmul_tiled_with(
    kern: &'static simd::Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
) {
    tiled_product(kern, Lhs::Transposed(a), Rhs::RowMajor(b), out, k, n, m);
}

/// `a` is `n x k`, `b` is `m x k`; the `n x m` product `a · bᵀ`
/// accumulates into zeroed `out`.
pub fn matmul_transpose(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    if n * k * m < MIN_TILED_FLOPS {
        naive::matmul_transpose(a, b, out, n, k, m);
    } else {
        matmul_transpose_tiled(a, b, out, n, k, m);
    }
}

/// Tiled `a · bᵀ` without the small-size fallback.
pub fn matmul_transpose_tiled(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
    matmul_transpose_tiled_with(simd::active(), a, b, out, n, k, m);
}

/// Tiled `a · bᵀ` through an explicit dispatch vtable.
#[allow(clippy::too_many_arguments)] // flat product coordinates
pub fn matmul_transpose_tiled_with(
    kern: &'static simd::Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
) {
    tiled_product(kern, Lhs::RowMajor(a), Rhs::Transposed(b), out, n, k, m);
}

/// Cache-blocked transpose: walks `TB x TB` tiles so both the row-major
/// read and the column-major write stay within a few cache lines per tile.
pub fn transpose(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r_end = (r0 + TB).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c_end = (c0 + TB).min(cols);
            for r in r0..r_end {
                for c in c0..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 += TB;
        }
        r0 += TB;
    }
}

/// The original loop kernels, retained verbatim as the bit-exact reference
/// for the tiled implementations (property-tested) and as the small-size
/// fast path. Deliberately no `a == 0.0` skip: the skip turned `0 * NaN` /
/// `0 * inf` into `0`, masking non-finite activations from the divergence
/// guard, and the branch blocked auto-vectorization of the inner loop.
pub mod naive {
    use std::ops::Range;

    /// Reference `ikj` product: `out += a · b` for the given out-row range
    /// (`out_chunk` is the chunk-local slice).
    pub fn matmul_chunk(
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        out_chunk: &mut [f32],
    ) {
        for (local, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out_chunk[local * m..(local + 1) * m];
            for (p, &av) in a_row.iter().enumerate() {
                let b_row = &b[p * m..(p + 1) * m];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Reference `out += a · b` over all rows (serial).
    pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        matmul_chunk(a, b, k, m, 0..n, out);
    }

    /// Reference `aᵀ · b`: accumulation over samples `i` runs in ascending
    /// order for each output row `p`.
    pub fn transpose_matmul_chunk(
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        p_rows: Range<usize>,
        out_chunk: &mut [f32],
    ) {
        for (local, p) in p_rows.enumerate() {
            let out_row = &mut out_chunk[local * m..(local + 1) * m];
            for i in 0..n {
                let av = a[i * k + p];
                let b_row = &b[i * m..(i + 1) * m];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Reference `out += aᵀ · b` over all rows (serial).
    pub fn transpose_matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        transpose_matmul_chunk(a, b, n, k, m, 0..k, out);
    }

    /// Reference dot-product form of `a · bᵀ`.
    pub fn matmul_transpose_chunk(
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        out_chunk: &mut [f32],
    ) {
        for (local, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..m {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out_chunk[local * m + j] = acc;
            }
        }
    }

    /// Reference `out = a · bᵀ` over all rows (serial; `out` zeroed).
    pub fn matmul_transpose(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        matmul_transpose_chunk(a, b, k, m, 0..n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::Matrix;

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: element {i} differs: {x} vs {y}"
            );
        }
    }

    /// Tiled kernels match the naive reference bit-for-bit on shapes that
    /// exercise every edge case (sub-tile, exact-tile, cross-KC).
    #[test]
    fn tiled_bit_identical_to_naive_across_edges() {
        let mut rng = seeded(77);
        for &(n, k, m) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (2 * MR - 1, 2 * KC + 5, 3 * NR - 2),
            (17, 300, 33),
        ] {
            let a = Matrix::randn(n, k, 1.0, &mut rng);
            let b = Matrix::randn(k, m, 1.0, &mut rng);
            let mut naive_out = vec![0.0; n * m];
            let mut tiled_out = vec![0.0; n * m];
            naive::matmul(a.data(), b.data(), &mut naive_out, n, k, m);
            matmul_tiled(a.data(), b.data(), &mut tiled_out, n, k, m);
            assert_bits_eq(&naive_out, &tiled_out, &format!("matmul {n}x{k}x{m}"));

            let a2 = Matrix::randn(n, k, 1.0, &mut rng);
            let b2 = Matrix::randn(n, m, 1.0, &mut rng);
            let mut naive_out = vec![0.0; k * m];
            let mut tiled_out = vec![0.0; k * m];
            naive::transpose_matmul(a2.data(), b2.data(), &mut naive_out, n, k, m);
            transpose_matmul_tiled(a2.data(), b2.data(), &mut tiled_out, n, k, m);
            assert_bits_eq(
                &naive_out,
                &tiled_out,
                &format!("transpose_matmul {n}x{k}x{m}"),
            );

            let a3 = Matrix::randn(n, k, 1.0, &mut rng);
            let b3 = Matrix::randn(m, k, 1.0, &mut rng);
            let mut naive_out = vec![0.0; n * m];
            let mut tiled_out = vec![0.0; n * m];
            naive::matmul_transpose(a3.data(), b3.data(), &mut naive_out, n, k, m);
            matmul_transpose_tiled(a3.data(), b3.data(), &mut tiled_out, n, k, m);
            assert_bits_eq(
                &naive_out,
                &tiled_out,
                &format!("matmul_transpose {n}x{k}x{m}"),
            );
        }
    }

    /// NaN in a packed (live) lane must propagate — padding must not.
    #[test]
    fn tiled_propagates_nan_in_live_lanes_only() {
        let n = MR + 1; // forces a padded row edge
        let k = 3;
        let m = NR + 1; // forces a padded column edge
        let mut a = Matrix::filled(n, k, 1.0);
        let b = Matrix::filled(k, m, 2.0);
        a.set(0, 0, f32::NAN);
        let mut out = vec![0.0; n * m];
        matmul_tiled(a.data(), b.data(), &mut out, n, k, m);
        // Row 0 is poisoned; every other element is finite.
        for (j, v) in out.iter().enumerate().take(m) {
            assert!(v.is_nan(), "row 0 col {j} should be NaN");
        }
        for i in 1..n {
            for j in 0..m {
                assert!(out[i * m + j].is_finite(), "({i},{j}) contaminated");
            }
        }
    }

    #[test]
    fn blocked_transpose_matches_reference() {
        let mut rng = seeded(78);
        for &(r, c) in &[(1usize, 1usize), (5, 9), (32, 32), (33, 65), (100, 3)] {
            let m = Matrix::randn(r, c, 1.0, &mut rng);
            let mut dst = vec![0.0; r * c];
            transpose(m.data(), &mut dst, r, c);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(dst[j * r + i].to_bits(), m.get(i, j).to_bits());
                }
            }
        }
    }
}

/// Property tests for the determinism contract (DESIGN.md §9/§10): every
/// tiled product is bit-identical to the retained naive reference across
/// random shapes — including non-multiple-of-tile edges — and across
/// {1, 2, 7} pool threads. `*_tiled` entry points are used directly so the
/// small-size naive fallback cannot mask a divergence.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::seeded;
    use crate::Matrix;
    use proptest::prelude::*;

    /// Row/column sizes: small shapes plus exact and off-by-one tile edges.
    fn dim() -> impl Strategy<Value = usize> {
        let edges = [MR, MR + 1, 2 * MR - 1, NR, NR + 1, 2 * NR + 3];
        (0usize..10 + edges.len()).prop_map(move |i| if i < 10 { i + 1 } else { edges[i - 10] })
    }

    /// Inner (k) sizes: small shapes plus the KC k-block boundary.
    fn kdim() -> impl Strategy<Value = usize> {
        let edges = [KC - 1, KC, KC + 3];
        (0usize..10 + edges.len()).prop_map(move |i| if i < 10 { i + 1 } else { edges[i - 10] })
    }

    fn bits_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// Shapes for the per-ISA identity property: one-below / exact /
    /// one-above each tile edge (MR = 8, NR = 16) plus a multi-tile size.
    fn isa_dim() -> impl Strategy<Value = usize> {
        let shapes = [1usize, 7, 8, 9, 15, 16, 17, 48];
        (0usize..shapes.len()).prop_map(move |i| shapes[i])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn tiled_matmul_bit_identical_across_shapes_and_threads(
            n in dim(), k in kdim(), m in dim(), seed in 0u64..=u64::MAX,
        ) {
            let mut rng = seeded(seed);
            let a = Matrix::randn(n, k, 1.0, &mut rng);
            let b = Matrix::randn(k, m, 1.0, &mut rng);
            let mut want = vec![0.0f32; n * m];
            naive::matmul(a.data(), b.data(), &mut want, n, k, m);
            for threads in [1usize, 2, 7] {
                let mut got = vec![0.0f32; n * m];
                edsr_par::with_threads(threads, || {
                    matmul_tiled(a.data(), b.data(), &mut got, n, k, m);
                });
                prop_assert!(
                    bits_eq(&want, &got),
                    "matmul {}x{}x{} diverged at {} threads", n, k, m, threads,
                );
            }
        }

        #[test]
        fn tiled_transpose_matmul_bit_identical_across_shapes_and_threads(
            n in kdim(), k in dim(), m in dim(), seed in 0u64..=u64::MAX,
        ) {
            let mut rng = seeded(seed);
            let a = Matrix::randn(n, k, 1.0, &mut rng);
            let b = Matrix::randn(n, m, 1.0, &mut rng);
            let mut want = vec![0.0f32; k * m];
            naive::transpose_matmul(a.data(), b.data(), &mut want, n, k, m);
            for threads in [1usize, 2, 7] {
                let mut got = vec![0.0f32; k * m];
                edsr_par::with_threads(threads, || {
                    transpose_matmul_tiled(a.data(), b.data(), &mut got, n, k, m);
                });
                prop_assert!(
                    bits_eq(&want, &got),
                    "transpose_matmul {}x{}x{} diverged at {} threads", n, k, m, threads,
                );
            }
        }

        #[test]
        fn tiled_matmul_transpose_bit_identical_across_shapes_and_threads(
            n in dim(), k in kdim(), m in dim(), seed in 0u64..=u64::MAX,
        ) {
            let mut rng = seeded(seed);
            let a = Matrix::randn(n, k, 1.0, &mut rng);
            let b = Matrix::randn(m, k, 1.0, &mut rng);
            let mut want = vec![0.0f32; n * m];
            naive::matmul_transpose(a.data(), b.data(), &mut want, n, k, m);
            for threads in [1usize, 2, 7] {
                let mut got = vec![0.0f32; n * m];
                edsr_par::with_threads(threads, || {
                    matmul_transpose_tiled(a.data(), b.data(), &mut got, n, k, m);
                });
                prop_assert!(
                    bits_eq(&want, &got),
                    "matmul_transpose {}x{}x{} diverged at {} threads", n, k, m, threads,
                );
            }
        }

        /// Every supported SIMD ISA level produces bit-identical products
        /// to the scalar micro-kernel (DESIGN.md §15): the output-stationary
        /// tile gives each lane one output element with the same ascending-k
        /// mul+add chain at every width. Shapes cover the MR=8 / NR=16 tile
        /// edges (one-below, exact, one-above) plus a multi-tile size.
        #[test]
        fn every_isa_bit_identical_to_scalar_kernel(
            n in isa_dim(), k in isa_dim(), m in isa_dim(), seed in 0u64..=u64::MAX,
        ) {
            let scalar = simd::Kernel::for_isa(simd::Isa::Scalar)
                .expect("scalar kernel is always supported");
            let mut rng = seeded(seed);
            let a = Matrix::randn(n, k, 1.0, &mut rng);
            let b = Matrix::randn(k, m, 1.0, &mut rng);
            let bt = {
                let mut t = vec![0.0f32; k * m];
                transpose(b.data(), &mut t, k, m);
                t // `b` as an m x k matrix, so a·btᵀ == a·b
            };
            let mut want_ab = vec![0.0f32; n * m];
            matmul_tiled_with(scalar, a.data(), b.data(), &mut want_ab, n, k, m);
            let mut want_atb = vec![0.0f32; k * k];
            transpose_matmul_tiled_with(scalar, a.data(), a.data(), &mut want_atb, n, k, k);
            let mut want_abt = vec![0.0f32; n * m];
            matmul_transpose_tiled_with(scalar, a.data(), &bt, &mut want_abt, n, k, m);
            for isa in [simd::Isa::Avx2, simd::Isa::Avx512] {
                let Some(kern) = simd::Kernel::for_isa(isa) else {
                    eprintln!(
                        "SKIPPING ISA bit-identity case for {}: not supported on this host",
                        isa.name()
                    );
                    continue;
                };
                for threads in [1usize, 2, 7] {
                    let mut got = vec![0.0f32; n * m];
                    edsr_par::with_threads(threads, || {
                        matmul_tiled_with(kern, a.data(), b.data(), &mut got, n, k, m);
                    });
                    prop_assert!(
                        bits_eq(&want_ab, &got),
                        "matmul {}x{}x{} diverged from scalar on {} at {} threads",
                        n, k, m, isa.name(), threads,
                    );
                    let mut got = vec![0.0f32; k * k];
                    edsr_par::with_threads(threads, || {
                        transpose_matmul_tiled_with(kern, a.data(), a.data(), &mut got, n, k, k);
                    });
                    prop_assert!(
                        bits_eq(&want_atb, &got),
                        "transpose_matmul {}x{}x{} diverged from scalar on {} at {} threads",
                        n, k, k, isa.name(), threads,
                    );
                    let mut got = vec![0.0f32; n * m];
                    edsr_par::with_threads(threads, || {
                        matmul_transpose_tiled_with(kern, a.data(), &bt, &mut got, n, k, m);
                    });
                    prop_assert!(
                        bits_eq(&want_abt, &got),
                        "matmul_transpose {}x{}x{} diverged from scalar on {} at {} threads",
                        n, k, m, isa.name(), threads,
                    );
                }
            }
        }

        /// The int8 reductions are exact i32 accumulations, so every ISA
        /// (and any thread count) must agree with a plain sequential
        /// reference sum to the bit (DESIGN.md §17). Lengths straddle the
        /// AVX2 16-element step boundary to exercise the scalar tail.
        #[test]
        fn i8_reductions_exact_on_every_isa(
            len in 0usize..=200,
            seed in 0u64..=u64::MAX,
        ) {
            let mut rng = seeded(seed);
            let a: Vec<i8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8 as i8).collect();
            let b: Vec<i8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8 as i8).collect();
            let mut want_dot = 0i64;
            let mut want_sq = 0i64;
            for (&x, &y) in a.iter().zip(&b) {
                want_dot += x as i64 * y as i64;
                let t = x as i64 - y as i64;
                want_sq += t * t;
            }
            for isa in [simd::Isa::Scalar, simd::Isa::Avx2, simd::Isa::Avx512] {
                let Some(kern) = simd::Kernel::for_isa(isa) else {
                    eprintln!(
                        "SKIPPING i8 bit-identity case for {}: not supported on this host",
                        isa.name()
                    );
                    continue;
                };
                for threads in [1usize, 2, 7] {
                    let mut got_dot = 0i32;
                    let mut got_sq = 0i32;
                    edsr_par::with_threads(threads, || {
                        got_dot = (kern.i8_dot)(&a, &b);
                        got_sq = (kern.i8_sq_euclidean)(&a, &b);
                    });
                    prop_assert_eq!(
                        got_dot as i64, want_dot,
                        "i8_dot len {} diverged on {} at {} threads", len, isa.name(), threads,
                    );
                    prop_assert_eq!(
                        got_sq as i64, want_sq,
                        "i8_sq_euclidean len {} diverged on {} at {} threads",
                        len, isa.name(), threads,
                    );
                }
            }
        }

        #[test]
        fn blocked_transpose_bit_identical_across_shapes(
            r in 1usize..=70, c in 1usize..=70, seed in 0u64..=u64::MAX,
        ) {
            let mut rng = seeded(seed);
            let m = Matrix::randn(r, c, 1.0, &mut rng);
            let mut dst = vec![0.0f32; r * c];
            transpose(m.data(), &mut dst, r, c);
            for i in 0..r {
                for j in 0..c {
                    prop_assert_eq!(dst[j * r + i].to_bits(), m.get(i, j).to_bits());
                }
            }
        }
    }
}
