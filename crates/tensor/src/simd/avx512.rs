//! AVX-512F kernels, 16 x f32 per vector.
//!
//! The GEMM tile holds each full 16-column output row in one zmm register
//! (8 accumulators for the whole `MR x NR` tile), accumulated in ascending
//! `k` with separate multiply and add — bit-identical to the scalar tile.
//! Elementwise ops run 16 wide (elementwise results do not depend on
//! vector width). Reductions are *not* defined here: the canonical
//! reduction tree is 8 lanes, so the [`super::Kernel`] vtable for AVX-512
//! reuses the [`super::avx2`] reduction entries (support for AVX-512
//! implies AVX2+FMA in [`super::Isa::supported`]).
//!
//! All functions are `unsafe` because they require the `avx512f` CPU
//! feature; the dispatch layer only reaches them through vtables gated on
//! [`super::Isa::supported`].

use core::arch::x86_64::*;

use crate::kernel::{MR, NR};

/// Full `MR x NR` register tile, output-stationary with one zmm per row.
///
/// # Safety
/// Requires `avx512f`. Caller guarantees the [`super::Kernel`] tile
/// contract: `ap.len() == kc * MR`, `bp.len() == kc * NR`, and `c` covers
/// rows `row0..row0 + MR` with `NR` columns at `j0` under stride `ldc`.
#[target_feature(enable = "avx512f")]
pub unsafe fn tile8x16(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    row0: usize,
    j0: usize,
    ldc: usize,
    first: bool,
) {
    debug_assert_eq!(ap.len() % MR, 0);
    let kc = ap.len() / MR;
    debug_assert_eq!(bp.len(), kc * NR);
    debug_assert!((row0 + MR - 1) * ldc + j0 + NR <= c.len());
    let mut acc = [_mm512_setzero_ps(); MR];
    if !first {
        for (ii, a) in acc.iter_mut().enumerate() {
            *a = _mm512_loadu_ps(c.as_ptr().add((row0 + ii) * ldc + j0));
        }
    }
    for p in 0..kc {
        let b = _mm512_loadu_ps(bp.as_ptr().add(p * NR));
        for (ii, a) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*ap.get_unchecked(p * MR + ii));
            // mul + add, never FMA: two roundings, like the scalar tile.
            *a = _mm512_add_ps(*a, _mm512_mul_ps(av, b));
        }
    }
    for (ii, a) in acc.iter().enumerate() {
        _mm512_storeu_ps(c.as_mut_ptr().add((row0 + ii) * ldc + j0), *a);
    }
}

/// `y[i] += a * x[i]`, 16 wide.
///
/// # Safety
/// Requires `avx512f`; `y.len() == x.len()`.
#[target_feature(enable = "avx512f")]
pub unsafe fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let av = _mm512_set1_ps(a);
    let mut i = 0;
    while i + 16 <= n {
        let yv = _mm512_loadu_ps(y.as_ptr().add(i));
        let xv = _mm512_loadu_ps(x.as_ptr().add(i));
        _mm512_storeu_ps(
            y.as_mut_ptr().add(i),
            _mm512_add_ps(yv, _mm512_mul_ps(av, xv)),
        );
        i += 16;
    }
    while i < n {
        *y.get_unchecked_mut(i) += a * *x.get_unchecked(i);
        i += 1;
    }
}

/// `y[i] += x[i]`, 16 wide.
///
/// # Safety
/// Requires `avx512f`; `y.len() == x.len()`.
#[target_feature(enable = "avx512f")]
pub unsafe fn add_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let mut i = 0;
    while i + 16 <= n {
        let yv = _mm512_loadu_ps(y.as_ptr().add(i));
        let xv = _mm512_loadu_ps(x.as_ptr().add(i));
        _mm512_storeu_ps(y.as_mut_ptr().add(i), _mm512_add_ps(yv, xv));
        i += 16;
    }
    while i < n {
        *y.get_unchecked_mut(i) += *x.get_unchecked(i);
        i += 1;
    }
}

/// `x[i] *= c`, 16 wide.
///
/// # Safety
/// Requires `avx512f`.
#[target_feature(enable = "avx512f")]
pub unsafe fn scale(x: &mut [f32], c: f32) {
    let n = x.len();
    let cv = _mm512_set1_ps(c);
    let mut i = 0;
    while i + 16 <= n {
        let xv = _mm512_loadu_ps(x.as_ptr().add(i));
        _mm512_storeu_ps(x.as_mut_ptr().add(i), _mm512_mul_ps(xv, cv));
        i += 16;
    }
    while i < n {
        *x.get_unchecked_mut(i) *= c;
        i += 1;
    }
}

/// `dst[i] = src[i] * c`, 16 wide.
///
/// # Safety
/// Requires `avx512f`; `dst.len() == src.len()`.
#[target_feature(enable = "avx512f")]
pub unsafe fn scale_into(dst: &mut [f32], src: &[f32], c: f32) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let cv = _mm512_set1_ps(c);
    let mut i = 0;
    while i + 16 <= n {
        let sv = _mm512_loadu_ps(src.as_ptr().add(i));
        _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_mul_ps(sv, cv));
        i += 16;
    }
    while i < n {
        *dst.get_unchecked_mut(i) = *src.get_unchecked(i) * c;
        i += 1;
    }
}

/// `x[i] /= d`, 16 wide — IEEE division rounds identically at any width.
///
/// # Safety
/// Requires `avx512f`.
#[target_feature(enable = "avx512f")]
pub unsafe fn div_scalar(x: &mut [f32], d: f32) {
    let n = x.len();
    let dv = _mm512_set1_ps(d);
    let mut i = 0;
    while i + 16 <= n {
        let xv = _mm512_loadu_ps(x.as_ptr().add(i));
        _mm512_storeu_ps(x.as_mut_ptr().add(i), _mm512_div_ps(xv, dv));
        i += 16;
    }
    while i < n {
        *x.get_unchecked_mut(i) /= d;
        i += 1;
    }
}
