//! AVX2 + FMA kernels, 8 x f32 per vector.
//!
//! Every function is bit-identical to [`super::scalar`] (ordering rules in
//! the [`super`] module docs). Two deliberate non-uses of wider machinery:
//! the GEMM tile issues separate `vmulps`/`vaddps` instead of fused FMA
//! (the scalar kernel rounds twice per step), and the reductions keep one
//! 256-bit accumulator per call so each lane remains an independent
//! ascending chain — the canonical 8-lane tree.
//!
//! All functions are `unsafe` because they require the `avx2` and `fma`
//! CPU features; the dispatch layer only reaches them through vtables
//! gated on [`super::Isa::supported`].

use core::arch::x86_64::*;

use crate::kernel::{MR, NR};

/// Full `MR x NR` register tile, output-stationary: each of the 16 output
/// columns lives in a fixed vector lane (two 8-wide halves), accumulated
/// in ascending `k` with separate multiply and add.
///
/// # Safety
/// Requires `avx2` and `fma`. Caller guarantees the [`super::Kernel`]
/// tile contract: `ap.len() == kc * MR`, `bp.len() == kc * NR`, and `c`
/// covers rows `row0..row0 + MR` with `NR` columns at `j0` under stride
/// `ldc`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn tile8x16(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    row0: usize,
    j0: usize,
    ldc: usize,
    first: bool,
) {
    debug_assert_eq!(ap.len() % MR, 0);
    let kc = ap.len() / MR;
    debug_assert_eq!(bp.len(), kc * NR);
    debug_assert!((row0 + MR - 1) * ldc + j0 + NR <= c.len());
    // Two 8-column halves: 8 accumulators + a B row + an A broadcast fit
    // the 16 ymm registers; one half at a time keeps the B load shared
    // across all 8 rows.
    for half in 0..2 {
        let jo = j0 + half * 8;
        let mut acc = [_mm256_setzero_ps(); MR];
        if !first {
            for (ii, a) in acc.iter_mut().enumerate() {
                *a = _mm256_loadu_ps(c.as_ptr().add((row0 + ii) * ldc + jo));
            }
        }
        for p in 0..kc {
            let b = _mm256_loadu_ps(bp.as_ptr().add(p * NR + half * 8));
            for (ii, a) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.get_unchecked(p * MR + ii));
                // mul + add, never FMA: two roundings, like the scalar tile.
                *a = _mm256_add_ps(*a, _mm256_mul_ps(av, b));
            }
        }
        for (ii, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.as_mut_ptr().add((row0 + ii) * ldc + jo), *a);
        }
    }
}

/// Canonical 8-lane-tree dot product (one ymm accumulator = the tree).
///
/// # Safety
/// Requires `avx2` and `fma`; `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    let mut acc = _mm256_setzero_ps();
    for ci in 0..chunks {
        let av = _mm256_loadu_ps(a.as_ptr().add(ci * 8));
        let bv = _mm256_loadu_ps(b.as_ptr().add(ci * 8));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (j, (&x, &y)) in a[chunks * 8..].iter().zip(&b[chunks * 8..]).enumerate() {
        lanes[j] += x * y;
    }
    lanes.iter().fold(0.0, |s, &v| s + v)
}

/// Canonical 8-lane-tree squared Euclidean distance.
///
/// # Safety
/// Requires `avx2` and `fma`; `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    let mut acc = _mm256_setzero_ps();
    for ci in 0..chunks {
        let av = _mm256_loadu_ps(a.as_ptr().add(ci * 8));
        let bv = _mm256_loadu_ps(b.as_ptr().add(ci * 8));
        let t = _mm256_sub_ps(av, bv);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(t, t));
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (j, (&x, &y)) in a[chunks * 8..].iter().zip(&b[chunks * 8..]).enumerate() {
        let t = x - y;
        lanes[j] += t * t;
    }
    lanes.iter().fold(0.0, |s, &v| s + v)
}

/// Sums the eight `i32` lanes of `v` into a scalar.
///
/// # Safety
/// Requires `avx2`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

/// Exact int8 dot product: 16 elements per step via sign-extension to
/// i16 and `madd` (adjacent-pair i32 sums — exact, since each product is
/// at most `127² = 16129`). Integer addition is associative, so the lane
/// layout is free and the result is bit-identical to [`super::scalar`]
/// by construction (see the scalar kernel's determinism note).
///
/// # Safety
/// Requires `avx2` and `fma`; `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn i8_dot(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
        i += 16;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        sum += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        i += 1;
    }
    sum
}

/// Exact int8 squared Euclidean distance: differences fit i16 (range
/// ±254), `madd(diff, diff)` pairs are at most `2 * 254² = 129032` —
/// exact in i32. Bit-identical to [`super::scalar`] by construction.
///
/// # Safety
/// Requires `avx2` and `fma`; `a.len() == b.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn i8_sq_euclidean(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
        let t = _mm256_sub_epi16(av, bv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(t, t));
        i += 16;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        let t = *a.get_unchecked(i) as i32 - *b.get_unchecked(i) as i32;
        sum += t * t;
        i += 1;
    }
    sum
}

/// `y[i] += a * x[i]` — elementwise, mul + add per element.
///
/// # Safety
/// Requires `avx2` and `fma`; `y.len() == x.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let yv = _mm256_loadu_ps(y.as_ptr().add(i));
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(
            y.as_mut_ptr().add(i),
            _mm256_add_ps(yv, _mm256_mul_ps(av, xv)),
        );
        i += 8;
    }
    while i < n {
        *y.get_unchecked_mut(i) += a * *x.get_unchecked(i);
        i += 1;
    }
}

/// `y[i] += x[i]`.
///
/// # Safety
/// Requires `avx2` and `fma`; `y.len() == x.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn add_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let mut i = 0;
    while i + 8 <= n {
        let yv = _mm256_loadu_ps(y.as_ptr().add(i));
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(yv, xv));
        i += 8;
    }
    while i < n {
        *y.get_unchecked_mut(i) += *x.get_unchecked(i);
        i += 1;
    }
}

/// `x[i] *= c`.
///
/// # Safety
/// Requires `avx2` and `fma`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn scale(x: &mut [f32], c: f32) {
    let n = x.len();
    let cv = _mm256_set1_ps(c);
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_mul_ps(xv, cv));
        i += 8;
    }
    while i < n {
        *x.get_unchecked_mut(i) *= c;
        i += 1;
    }
}

/// `dst[i] = src[i] * c`.
///
/// # Safety
/// Requires `avx2` and `fma`; `dst.len() == src.len()`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn scale_into(dst: &mut [f32], src: &[f32], c: f32) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let cv = _mm256_set1_ps(c);
    let mut i = 0;
    while i + 8 <= n {
        let sv = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(sv, cv));
        i += 8;
    }
    while i < n {
        *dst.get_unchecked_mut(i) = *src.get_unchecked(i) * c;
        i += 1;
    }
}

/// `x[i] /= d` — IEEE division rounds identically at any vector width.
///
/// # Safety
/// Requires `avx2` and `fma`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn div_scalar(x: &mut [f32], d: f32) {
    let n = x.len();
    let dv = _mm256_set1_ps(d);
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_div_ps(xv, dv));
        i += 8;
    }
    while i < n {
        *x.get_unchecked_mut(i) /= d;
        i += 1;
    }
}
