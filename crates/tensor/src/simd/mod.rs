//! Runtime ISA dispatch for the SIMD micro-kernels.
//!
//! The hot loops of the workspace — the 8x16 GEMM register tile in
//! [`crate::kernel`], the kNN squared-distance/dot reductions, the PCA
//! covariance row accumulation, and the elementwise tape ops (axpy, scale,
//! row-normalize division) — are implemented three ways, frostburn-style:
//!
//! - [`scalar`]: portable reference, compiles everywhere. This *defines*
//!   the canonical result: every other ISA must reproduce its bits.
//! - [`avx2`]: 8-lane f32 (256-bit) with `avx2`+`fma` enabled at compile
//!   time for the module and verified at runtime before dispatch.
//! - [`avx512`]: 16-lane f32 (512-bit) GEMM tile and elementwise ops;
//!   reductions deliberately reuse the 8-lane tree (see below).
//!
//! One implementation is selected at startup via `is_x86_feature_detected!`
//! and installed in a process-global [`Kernel`] vtable. The choice is
//! overridable with the `EDSR_ISA` knob (`auto|scalar|avx2|avx512`;
//! CLI > env > default through `edsr_core::EnvConfig`, which calls
//! [`set_isa`]) so tests can pin any path on any host.
//!
//! ## Bit-identity rules (DESIGN.md §15)
//!
//! Every dispatched op produces bits identical to the scalar reference on
//! every supported ISA, which keeps the workspace contract — results
//! byte-identical at any thread count *and* any `EDSR_ISA` — in one piece:
//!
//! - **GEMM tile**: output-stationary. Each SIMD lane owns one output
//!   element and accumulates in ascending `k` order inside the same KC=256
//!   k-blocks as the scalar kernel, using separate multiply and add
//!   instructions (never fused FMA — the scalar kernel rounds twice per
//!   step, and a fused contraction would diverge from it).
//! - **Reductions** (`dot`, `sq_euclidean`): a strict sequential sum cannot
//!   be vectorized without reordering, so the canonical order is defined
//!   *once* as an 8-lane interleaved tree — lane `j` accumulates elements
//!   `i ≡ j (mod 8)` in ascending order, tail elements fold into lanes
//!   `0..rem`, and the eight partials collapse left-to-right. All ISAs
//!   including scalar implement exactly this tree (AVX-512 included: a
//!   16-lane tree would change the bits, so its reductions stay 256-bit).
//! - **Elementwise** (`axpy`, `add_assign`, `scale`, `scale_into`,
//!   `div_scalar`): one output per element, no cross-lane interaction;
//!   any vector width is bit-identical by construction.
//! - **Int8 reductions** (`i8_dot`, `i8_sq_euclidean`): exact `i32`
//!   accumulator chains (DESIGN.md §17). Integer addition is associative,
//!   so unlike the f32 reductions no canonical lane tree is needed — any
//!   accumulation order yields identical bits, which makes the quantized
//!   inference path structurally deterministic across ISA levels and
//!   thread counts. Callers keep lengths ≤ 130 000 so `len * 127²` (and
//!   `len * 254²` for distances) stays below `i32::MAX`.
//!
//! ## Adding a new ISA
//!
//! 1. Add a module implementing every [`Kernel`] entry with the ordering
//!    rules above (reductions must keep the 8-lane tree).
//! 2. Add an [`Isa`] variant, its `supported()` detection arm, a static
//!    vtable wired through private safe wrappers, and a `detect()` arm
//!    (fastest first).
//! 3. The bit-identity proptests in this module run automatically against
//!    every `Isa::ALL` entry; unsupported ISAs are skipped with a loud
//!    `eprintln` so CI logs show exactly which paths were exercised.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
pub mod scalar;

/// Canonical reduction lane count. Reductions on every ISA accumulate an
/// 8-lane interleaved partial-sum tree regardless of register width.
pub const LANES: usize = 8;

/// An instruction-set level the dispatcher can select.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isa {
    /// Portable scalar reference (the canonical bit pattern).
    Scalar,
    /// AVX2 + FMA, 8 x f32 per vector.
    Avx2,
    /// AVX-512F, 16 x f32 per vector (reductions stay 8-lane).
    Avx512,
}

impl Isa {
    /// Every ISA the dispatcher knows, slowest first.
    pub const ALL: [Isa; 3] = [Isa::Scalar, Isa::Avx2, Isa::Avx512];

    /// Stable lowercase name (used by `EDSR_ISA` and bench JSON records).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Whether the running host can execute this ISA's kernels.
    pub fn supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            // The AVX-512 reductions delegate to the AVX2 8-lane tree, so
            // both feature sets must be present (true on every avx512f part).
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f") && Isa::Avx2.supported(),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// A parsed `EDSR_ISA` value: auto-detect or a pinned level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsaRequest {
    /// Pick the fastest supported ISA at startup (the default).
    Auto,
    /// Pin one ISA; [`set_isa`] rejects it if the host lacks support.
    Fixed(Isa),
}

impl IsaRequest {
    /// Parses `auto|scalar|avx2|avx512` (the `EDSR_ISA` grammar).
    pub fn parse(s: &str) -> Option<IsaRequest> {
        match s {
            "auto" => Some(IsaRequest::Auto),
            "scalar" => Some(IsaRequest::Fixed(Isa::Scalar)),
            "avx2" => Some(IsaRequest::Fixed(Isa::Avx2)),
            "avx512" => Some(IsaRequest::Fixed(Isa::Avx512)),
            _ => None,
        }
    }

    /// Stable name, round-tripping [`parse`](Self::parse).
    pub fn name(self) -> &'static str {
        match self {
            IsaRequest::Auto => "auto",
            IsaRequest::Fixed(isa) => isa.name(),
        }
    }
}

/// Signature of the full GEMM register-tile entry ([`Kernel::tile8x16`]):
/// packed panels in, accumulation into a strided slab of `c`.
pub type TileFn =
    fn(ap: &[f32], bp: &[f32], c: &mut [f32], row0: usize, j0: usize, ldc: usize, first: bool);

/// The dispatch vtable: one function pointer per hot loop, all implemented
/// by every ISA module under the ordering rules in the module docs.
///
/// Obtain one from [`active`] (the process-global selection) or
/// [`Kernel::for_isa`] (a specific supported level, e.g. in tests that
/// compare ISAs side by side). All entries are safe to call: the vtables
/// for SIMD levels are only reachable after a successful support check.
pub struct Kernel {
    /// Which ISA this vtable executes.
    pub isa: Isa,
    /// Full `MR x NR` GEMM register tile over packed panels
    /// (`ap`: k-major MR-wide, `bp`: k-major NR-wide); accumulates into
    /// `c[(row0 + i) * ldc + j0 + j]`, starting from zero when `first`.
    pub tile8x16: TileFn,
    /// 8-lane-tree dot product (`a.len() == b.len()`).
    pub dot: fn(a: &[f32], b: &[f32]) -> f32,
    /// 8-lane-tree squared Euclidean distance (`a.len() == b.len()`).
    pub sq_euclidean: fn(a: &[f32], b: &[f32]) -> f32,
    /// `y[i] += a * x[i]` (`y.len() == x.len()`).
    pub axpy: fn(y: &mut [f32], x: &[f32], a: f32),
    /// `y[i] += x[i]` (`y.len() == x.len()`).
    pub add_assign: fn(y: &mut [f32], x: &[f32]),
    /// `x[i] *= c`.
    pub scale: fn(x: &mut [f32], c: f32),
    /// `dst[i] = src[i] * c` (`dst.len() == src.len()`).
    pub scale_into: fn(dst: &mut [f32], src: &[f32], c: f32),
    /// `x[i] /= d` (IEEE division, bit-identical at any vector width).
    pub div_scalar: fn(x: &mut [f32], d: f32),
    /// Exact int8 dot product with an `i32` accumulator
    /// (`a.len() == b.len()`, length ≤ 130 000).
    pub i8_dot: fn(a: &[i8], b: &[i8]) -> i32,
    /// Exact int8 squared Euclidean distance with an `i32` accumulator
    /// (`a.len() == b.len()`, length ≤ 130 000).
    pub i8_sq_euclidean: fn(a: &[i8], b: &[i8]) -> i32,
}

impl Kernel {
    /// The vtable for a specific ISA, or `None` if this host cannot run it.
    pub fn for_isa(isa: Isa) -> Option<&'static Kernel> {
        if isa.supported() {
            Some(table(isa))
        } else {
            None
        }
    }
}

static SCALAR: Kernel = Kernel {
    isa: Isa::Scalar,
    tile8x16: scalar::tile8x16,
    dot: scalar::dot,
    sq_euclidean: scalar::sq_euclidean,
    axpy: scalar::axpy,
    add_assign: scalar::add_assign,
    scale: scalar::scale,
    scale_into: scalar::scale_into,
    div_scalar: scalar::div_scalar,
    i8_dot: scalar::i8_dot,
    i8_sq_euclidean: scalar::i8_sq_euclidean,
};

// Safe entry shims for the `#[target_feature]` implementations. They are
// private and only reachable through the support-gated vtable accessors,
// which is what makes the `unsafe` calls sound.
#[cfg(target_arch = "x86_64")]
mod entry {
    use super::{avx2, avx512};

    pub fn avx2_tile8x16(
        ap: &[f32],
        bp: &[f32],
        c: &mut [f32],
        row0: usize,
        j0: usize,
        ldc: usize,
        first: bool,
    ) {
        // SAFETY: reachable only via a vtable gated on `Isa::Avx2.supported()`.
        unsafe { avx2::tile8x16(ap, bp, c, row0, j0, ldc, first) }
    }
    pub fn avx2_dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::dot(a, b) }
    }
    pub fn avx2_sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::sq_euclidean(a, b) }
    }
    pub fn avx2_axpy(y: &mut [f32], x: &[f32], a: f32) {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::axpy(y, x, a) }
    }
    pub fn avx2_add_assign(y: &mut [f32], x: &[f32]) {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::add_assign(y, x) }
    }
    pub fn avx2_scale(x: &mut [f32], c: f32) {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::scale(x, c) }
    }
    pub fn avx2_scale_into(dst: &mut [f32], src: &[f32], c: f32) {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::scale_into(dst, src, c) }
    }
    pub fn avx2_div_scalar(x: &mut [f32], d: f32) {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::div_scalar(x, d) }
    }
    pub fn avx2_i8_dot(a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::i8_dot(a, b) }
    }
    pub fn avx2_i8_sq_euclidean(a: &[i8], b: &[i8]) -> i32 {
        // SAFETY: gated on `Isa::Avx2.supported()`.
        unsafe { avx2::i8_sq_euclidean(a, b) }
    }

    pub fn avx512_tile8x16(
        ap: &[f32],
        bp: &[f32],
        c: &mut [f32],
        row0: usize,
        j0: usize,
        ldc: usize,
        first: bool,
    ) {
        // SAFETY: reachable only via a vtable gated on `Isa::Avx512.supported()`.
        unsafe { avx512::tile8x16(ap, bp, c, row0, j0, ldc, first) }
    }
    pub fn avx512_axpy(y: &mut [f32], x: &[f32], a: f32) {
        // SAFETY: gated on `Isa::Avx512.supported()`.
        unsafe { avx512::axpy(y, x, a) }
    }
    pub fn avx512_add_assign(y: &mut [f32], x: &[f32]) {
        // SAFETY: gated on `Isa::Avx512.supported()`.
        unsafe { avx512::add_assign(y, x) }
    }
    pub fn avx512_scale(x: &mut [f32], c: f32) {
        // SAFETY: gated on `Isa::Avx512.supported()`.
        unsafe { avx512::scale(x, c) }
    }
    pub fn avx512_scale_into(dst: &mut [f32], src: &[f32], c: f32) {
        // SAFETY: gated on `Isa::Avx512.supported()`.
        unsafe { avx512::scale_into(dst, src, c) }
    }
    pub fn avx512_div_scalar(x: &mut [f32], d: f32) {
        // SAFETY: gated on `Isa::Avx512.supported()`.
        unsafe { avx512::div_scalar(x, d) }
    }
}

#[cfg(target_arch = "x86_64")]
static AVX2: Kernel = Kernel {
    isa: Isa::Avx2,
    tile8x16: entry::avx2_tile8x16,
    dot: entry::avx2_dot,
    sq_euclidean: entry::avx2_sq_euclidean,
    axpy: entry::avx2_axpy,
    add_assign: entry::avx2_add_assign,
    scale: entry::avx2_scale,
    scale_into: entry::avx2_scale_into,
    div_scalar: entry::avx2_div_scalar,
    i8_dot: entry::avx2_i8_dot,
    i8_sq_euclidean: entry::avx2_i8_sq_euclidean,
};

// AVX-512 reductions reuse the AVX2 entries on purpose: the canonical
// reduction tree is 8 lanes wide, and `Isa::Avx512.supported()` implies
// AVX2+FMA support. The int8 reductions reuse them too — integer
// accumulation is exact at any width, so a wider kernel would buy little.
#[cfg(target_arch = "x86_64")]
static AVX512: Kernel = Kernel {
    isa: Isa::Avx512,
    tile8x16: entry::avx512_tile8x16,
    dot: entry::avx2_dot,
    sq_euclidean: entry::avx2_sq_euclidean,
    axpy: entry::avx512_axpy,
    add_assign: entry::avx512_add_assign,
    scale: entry::avx512_scale,
    scale_into: entry::avx512_scale_into,
    div_scalar: entry::avx512_div_scalar,
    i8_dot: entry::avx2_i8_dot,
    i8_sq_euclidean: entry::avx2_i8_sq_euclidean,
};

fn table(isa: Isa) -> &'static Kernel {
    match isa {
        Isa::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => &AVX2,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => &AVX512,
        #[cfg(not(target_arch = "x86_64"))]
        _ => &SCALAR,
    }
}

/// Fastest ISA the host supports (checked best-first).
pub fn detect() -> Isa {
    if Isa::Avx512.supported() {
        Isa::Avx512
    } else if Isa::Avx2.supported() {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

// 0 = unresolved, 1 = scalar, 2 = avx2, 3 = avx512.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn isa_code(isa: Isa) -> u8 {
    match isa {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
        Isa::Avx512 => 3,
    }
}

fn code_isa(code: u8) -> Isa {
    match code {
        1 => Isa::Scalar,
        2 => Isa::Avx2,
        _ => Isa::Avx512,
    }
}

/// A pinned ISA the host cannot execute, reported by [`set_isa`].
#[derive(Debug, PartialEq, Eq)]
pub struct UnsupportedIsa(pub Isa);

impl std::fmt::Display for UnsupportedIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "isa {:?} requested but this host does not support it (supported: {})",
            self.0.name(),
            Isa::ALL
                .iter()
                .filter(|i| i.supported())
                .map(|i| i.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Installs the process-global kernel selection. `Auto` resolves detection
/// immediately; a pinned level is rejected with [`UnsupportedIsa`] if the
/// host lacks it (never installed — the previous selection stays live).
/// Returns the ISA now active. Intended for startup (`EnvConfig::apply`
/// routes the CLI > env > default `isa` knob here); hot paths read the
/// selection with one relaxed atomic load.
pub fn set_isa(req: IsaRequest) -> Result<Isa, UnsupportedIsa> {
    let isa = match req {
        IsaRequest::Auto => detect(),
        IsaRequest::Fixed(isa) => {
            if !isa.supported() {
                return Err(UnsupportedIsa(isa));
            }
            isa
        }
    };
    ACTIVE.store(isa_code(isa), Ordering::Relaxed);
    Ok(isa)
}

/// The process-global kernel vtable. First use resolves `EDSR_ISA` from
/// the environment (binaries that parse CLI flags call [`set_isa`] earlier
/// via `EnvConfig::apply`, which takes precedence); an unparseable or
/// unsupported `EDSR_ISA` value panics with the accepted grammar, loudly —
/// a silent scalar fallback would invalidate pinned-ISA test runs.
#[inline]
pub fn active() -> &'static Kernel {
    let code = ACTIVE.load(Ordering::Relaxed);
    if code == 0 {
        resolve_from_env()
    } else {
        table(code_isa(code))
    }
}

/// The ISA the process-global vtable currently executes.
pub fn active_isa() -> Isa {
    active().isa
}

#[cold]
fn resolve_from_env() -> &'static Kernel {
    let req = match std::env::var("EDSR_ISA") {
        Ok(raw) => IsaRequest::parse(&raw).unwrap_or_else(|| {
            panic!("EDSR_ISA: unknown value {raw:?} (expected auto|scalar|avx2|avx512)")
        }),
        Err(_) => IsaRequest::Auto,
    };
    let isa = set_isa(req).unwrap_or_else(|e| panic!("EDSR_ISA: {e}"));
    table(isa)
}

/// Dispatched 8-lane-tree dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    (active().dot)(a, b)
}

/// Dispatched 8-lane-tree squared Euclidean distance.
#[inline]
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    (active().sq_euclidean)(a, b)
}

/// Dispatched `y[i] += a * x[i]`.
#[inline]
pub fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    (active().axpy)(y, x, a)
}

/// Dispatched `y[i] += x[i]`.
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    (active().add_assign)(y, x)
}

/// Dispatched `x[i] *= c`.
#[inline]
pub fn scale(x: &mut [f32], c: f32) {
    (active().scale)(x, c)
}

/// Dispatched `dst[i] = src[i] * c`.
#[inline]
pub fn scale_into(dst: &mut [f32], src: &[f32], c: f32) {
    (active().scale_into)(dst, src, c)
}

/// Dispatched `x[i] /= d`.
#[inline]
pub fn div_scalar(x: &mut [f32], d: f32) {
    (active().div_scalar)(x, d)
}

/// Dispatched exact int8 dot product (`i32` accumulation).
#[inline]
pub fn i8_dot(a: &[i8], b: &[i8]) -> i32 {
    (active().i8_dot)(a, b)
}

/// Dispatched exact int8 squared Euclidean distance (`i32` accumulation).
#[inline]
pub fn i8_sq_euclidean(a: &[i8], b: &[i8]) -> i32 {
    (active().i8_sq_euclidean)(a, b)
}
