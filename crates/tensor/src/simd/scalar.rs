//! Portable scalar kernels — the canonical bit patterns every SIMD ISA
//! must reproduce (ordering rules in the [`super`] module docs).
//!
//! The GEMM tile is the exact register-tile loop the workspace shipped
//! before dispatch existed (LLVM autovectorizes it to the baseline
//! vector width), so `EDSR_ISA=scalar` reproduces the historical `tiled`
//! numbers and bits. The reductions are written as the 8-lane interleaved
//! tree directly: the lanes are independent accumulator chains, which both
//! defines the canonical order and lets the autovectorizer keep pace.

use super::LANES;
use crate::kernel::{MR, NR};

/// Full `MR x NR` register tile: pairs one packed A column (`MR` values)
/// with one packed B row (`NR` values) per reduction step; the `MR x NR`
/// accumulator array stays in vector registers. On the first reduction
/// block accumulators start at `0.0` (the naive kernels' exact starting
/// point); later blocks resume from the stored partial sums.
pub fn tile8x16(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    row0: usize,
    j0: usize,
    ldc: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (ii, lane) in acc.iter_mut().enumerate() {
            lane.copy_from_slice(&c[(row0 + ii) * ldc + j0..][..NR]);
        }
    }
    for (a_col, b_row) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (ii, lane) in acc.iter_mut().enumerate() {
            let a = a_col[ii];
            for (o, &b) in lane.iter_mut().zip(b_row) {
                *o += a * b;
            }
        }
    }
    for (ii, lane) in acc.iter().enumerate() {
        c[(row0 + ii) * ldc + j0..][..NR].copy_from_slice(lane);
    }
}

/// Canonical 8-lane-tree dot product: lane `j` sums `a[i] * b[i]` for
/// `i ≡ j (mod 8)` ascending, the tail folds into lanes `0..rem`, then the
/// partials collapse left to right.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for ci in 0..chunks {
        let av = &a[ci * LANES..][..LANES];
        let bv = &b[ci * LANES..][..LANES];
        for j in 0..LANES {
            lanes[j] += av[j] * bv[j];
        }
    }
    for (j, (&x, &y)) in a[chunks * LANES..]
        .iter()
        .zip(&b[chunks * LANES..])
        .enumerate()
    {
        lanes[j] += x * y;
    }
    lanes.iter().fold(0.0, |s, &v| s + v)
}

/// Canonical 8-lane-tree squared Euclidean distance (same tree as [`dot`]
/// over `(a[i] - b[i])²` terms).
pub fn sq_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for ci in 0..chunks {
        let av = &a[ci * LANES..][..LANES];
        let bv = &b[ci * LANES..][..LANES];
        for j in 0..LANES {
            let t = av[j] - bv[j];
            lanes[j] += t * t;
        }
    }
    for (j, (&x, &y)) in a[chunks * LANES..]
        .iter()
        .zip(&b[chunks * LANES..])
        .enumerate()
    {
        let t = x - y;
        lanes[j] += t * t;
    }
    lanes.iter().fold(0.0, |s, &v| s + v)
}

/// Exact int8 dot product with a single `i32` accumulator.
///
/// Integer addition is associative, so — unlike the f32 reductions above —
/// no lane tree is needed: *any* accumulation order produces the same
/// bits, which is what makes the quantized inference path structurally
/// bit-identical across ISA levels and thread counts. Callers keep
/// `a.len() <= 130_000` so `len * 127²` cannot overflow `i32`.
pub fn i8_dot(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

/// Exact int8 squared Euclidean distance with a single `i32` accumulator
/// (same overflow contract and order-independence as [`i8_dot`]).
pub fn i8_sq_euclidean(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        let t = x as i32 - y as i32;
        acc += t * t;
    }
    acc
}

/// `y[i] += a * x[i]` — multiply then add, two roundings per element.
pub fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    debug_assert_eq!(y.len(), x.len());
    for (o, &v) in y.iter_mut().zip(x) {
        *o += a * v;
    }
}

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (o, &v) in y.iter_mut().zip(x) {
        *o += v;
    }
}

/// `x[i] *= c`.
pub fn scale(x: &mut [f32], c: f32) {
    for v in x {
        *v *= c;
    }
}

/// `dst[i] = src[i] * c`.
pub fn scale_into(dst: &mut [f32], src: &[f32], c: f32) {
    debug_assert_eq!(dst.len(), src.len());
    for (o, &v) in dst.iter_mut().zip(src) {
        *o = v * c;
    }
}

/// `x[i] /= d`.
pub fn div_scalar(x: &mut [f32], d: f32) {
    for v in x {
        *v /= d;
    }
}
