//! Finite-difference gradient verification.
//!
//! Used throughout the workspace's test suites to validate both the raw
//! autograd ops and the composed SSL/distillation losses built on top of
//! them. Comparisons use a relative-tolerance scheme robust to the mixed
//! magnitudes that appear in normalized-representation losses.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Checks analytic gradients of `f` against central finite differences.
///
/// `f` must rebuild the same computation from leaf vars each call and return
/// a scalar (`1 x 1`) loss node. `eps` is the finite-difference step; `tol`
/// bounds the allowed relative error `|a - n| / max(1, |a|, |n|)` per
/// element.
///
/// # Panics
/// Panics (with a descriptive message) on the first element whose gradient
/// disagrees — this is a test utility.
pub fn check_gradients(
    inputs: &[Matrix],
    eps: f32,
    tol: f32,
    f: impl Fn(&mut Tape, &[Var]) -> Var,
) {
    // Analytic pass.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&mut tape, &vars);
    let grads = tape.backward(loss);
    let analytic: Vec<Matrix> = vars
        .iter()
        .zip(inputs)
        .map(|(&v, m)| grads.get_or_zeros(v, m.rows(), m.cols()))
        .collect();

    // Numeric pass, one perturbed element at a time.
    for (which, input) in inputs.iter().enumerate() {
        for idx in 0..input.len() {
            let eval = |delta: f32| -> f32 {
                let mut perturbed: Vec<Matrix> = inputs.to_vec();
                perturbed[which].data_mut()[idx] += delta;
                let mut t = Tape::new();
                let vs: Vec<Var> = perturbed.iter().map(|m| t.leaf(m.clone())).collect();
                let l = f(&mut t, &vs);
                t.value(l).get(0, 0)
            };
            let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
            let a = analytic[which].data()[idx];
            let denom = 1.0_f32.max(a.abs()).max(numeric.abs());
            let rel = (a - numeric).abs() / denom;
            assert!(
                rel <= tol,
                "gradient mismatch input {which} element {idx}: analytic {a}, numeric {numeric}, rel {rel}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_simple_quadratic() {
        let x = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.3]);
        check_gradients(&[x], 1e-3, 1e-2, |t, vars| {
            let sq = t.square(vars[0]);
            t.sum(sq)
        });
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn catches_wrong_gradient() {
        // detach() deliberately hides x from the analytic gradient while the
        // numeric gradient still sees the dependence via the *values* —
        // except detach truly blocks it in both. Instead, construct a
        // mismatch by comparing against a loss that uses the value twice but
        // only differentiates once: sum(x ⊙ detach(x)) has analytic grad x
        // (one path), numeric grad 2x.
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        check_gradients(&[x], 1e-3, 1e-3, |t, vars| {
            let d = t.detach(vars[0]);
            let p = t.mul_elem(vars[0], d);
            t.sum(p)
        });
    }
}
