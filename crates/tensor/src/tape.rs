//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Tape`] records a forward computation as a sequence of nodes; calling
//! [`Tape::backward`] on a scalar loss walks the tape in reverse and
//! accumulates gradients for every node. The op set is exactly what the
//! EDSR training objectives need (SimSiam, BarlowTwins, CaSSLe-style
//! distillation, DER logit matching, SI penalties).
//!
//! One tape corresponds to one training step. The tape owns a [`Scratch`]
//! arena: every node value and every gradient matrix is served from the
//! pool, and [`Tape::reset`] / [`Tape::recycle`] return them, so after a
//! warmup step the steady-state training loop performs zero heap
//! allocations in the forward/backward hot path (DESIGN.md §10).

use crate::matrix::Matrix;
use crate::scratch::Scratch;

/// Numerical floor used when normalizing rows, preventing division by zero.
const NORM_EPS: f32 = 1e-12;

/// Minimum output element count before a forward op is dispatched to the
/// `edsr-par` pool; below this the same kernel runs inline. Performance
/// knob only — both paths compute each output row identically, so the
/// DESIGN.md §9 determinism contract is unaffected.
const MIN_PAR_ELEMS: usize = 8 * 1024;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Raw tape index (mostly useful for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Recorded operation; parents are earlier tape nodes.
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    AddRow(Var, Var),
    Scale(Var, f32),
    AddConst(Var),
    Relu(Var),
    Tanh(Var),
    Square(Var),
    Sum(Var),
    Mean(Var),
    RowNormalize(Var),
    ColStandardize(Var, f32),
    /// Stop-gradient: the parent var is recorded for debugging/inspection
    /// but the backward pass intentionally never reads it.
    Detach(#[allow(dead_code)] Var),
    Transpose(Var),
    MseLoss(Var, Var),
    /// Pure index gather: `out.data[i] = in.data[map[i]]`. Duplicated
    /// source indices are allowed (backward accumulates), which makes this
    /// one op sufficient for im2col-style convolution lowering and layout
    /// permutations.
    Gather(Var, std::sync::Arc<Vec<usize>>),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// Gradients produced by [`Tape::backward`].
///
/// Hand the whole set back to [`Tape::recycle`] once the optimizer has
/// consumed it, so the gradient matrices return to the tape's scratch pool.
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// Gradient of the loss w.r.t. `var`, if any gradient flowed to it.
    pub fn get(&self, var: Var) -> Option<&Matrix> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Gradient of the loss w.r.t. `var`, or a zero matrix of its shape.
    pub fn get_or_zeros(&self, var: Var, rows: usize, cols: usize) -> Matrix {
        match self.get(var) {
            Some(g) => g.clone(),
            None => Matrix::zeros(rows, cols),
        }
    }
}

/// A recording of one forward computation.
///
/// ```
/// use edsr_tensor::{Matrix, Tape};
/// // L = sum((2x)^2) → dL/dx = 8x
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::from_vec(1, 2, vec![1.0, -3.0]));
/// let y = t.scale(x, 2.0);
/// let sq = t.square(y);
/// let loss = t.sum(sq);
/// let grads = t.backward(loss);
/// assert_eq!(grads.get(x).unwrap().data(), &[8.0, -24.0]);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    scratch: Scratch,
    /// Recycled `Grads` vector (kept empty between backward passes so its
    /// capacity is reused instead of reallocated).
    grads_pool: Vec<Option<Matrix>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears all recorded nodes, returning their value buffers to the
    /// scratch pool. Call once per training step before re-recording; the
    /// second and later steps then serve every node from the pool.
    pub fn reset(&mut self) {
        let Self { nodes, scratch, .. } = self;
        for node in nodes.drain(..) {
            scratch.give_matrix(node.value);
        }
    }

    /// Returns a consumed gradient set's matrices to the scratch pool and
    /// keeps its vector for the next [`backward`](Self::backward).
    pub fn recycle(&mut self, mut grads: Grads) {
        for slot in grads.grads.iter_mut() {
            if let Some(g) = slot.take() {
                self.scratch.give_matrix(g);
            }
        }
        grads.grads.clear();
        self.grads_pool = grads.grads;
    }

    /// The tape's scratch arena (pool diagnostics for allocation tests).
    pub fn scratch(&self) -> &Scratch {
        &self.scratch
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Records an input (leaf) node. Gradients accumulate on leaves but do
    /// not flow past them.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Records a leaf whose value is a pool-backed copy of `value` — the
    /// allocation-free counterpart of `leaf(value.clone())`.
    pub fn leaf_copy(&mut self, value: &Matrix) -> Var {
        let m = self.scratch.take_copy(value);
        self.push(Op::Leaf, m)
    }

    /// Records a constant leaf filled with `v` — the allocation-free
    /// counterpart of `leaf(Matrix::filled(rows, cols, v))`.
    pub fn leaf_filled(&mut self, rows: usize, cols: usize, v: f32) -> Var {
        let mut m = self.scratch.take_matrix(rows, cols);
        m.data_mut().fill(v);
        self.push(Op::Leaf, m)
    }

    /// Value of a node.
    pub fn value(&self, var: Var) -> &Matrix {
        &self.nodes[var.0].value
    }

    /// Mutable value of a node. Intended for initializing freshly recorded
    /// *leaves* in place (e.g. perturbing a [`leaf_copy`](Self::leaf_copy)
    /// with noise) — mutating a node after downstream ops have read it
    /// desynchronizes forward values from the recorded graph.
    pub fn value_mut(&mut self, var: Var) -> &mut Matrix {
        &mut self.nodes[var.0].value
    }

    /// `a (n x k) @ b (k x m)`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut out = scratch.take_matrix(va.rows(), vb.cols());
        va.matmul_into(vb, &mut out);
        self.push(Op::MatMul(a, b), out)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.zip_map_into(vb, &mut out, |x, y| x + y);
        self.push(Op::Add(a, b), out)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.zip_map_into(vb, &mut out, |x, y| x - y);
        self.push(Op::Sub(a, b), out)
    }

    /// Hadamard product `a ⊙ b`.
    pub fn mul_elem(&mut self, a: Var, b: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.zip_map_into(vb, &mut out, |x, y| x * y);
        self.push(Op::MulElem(a, b), out)
    }

    /// Adds a `1 x c` bias row to every row of `a`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let (va, vb) = (&nodes[a.0].value, &nodes[bias.0].value);
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.add_row_broadcast_into(vb, &mut out);
        self.push(Op::AddRow(a, bias), out)
    }

    /// Scalar multiply `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let Self { nodes, scratch, .. } = self;
        let va = &nodes[a.0].value;
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.scale_into(&mut out, c);
        self.push(Op::Scale(a, c), out)
    }

    /// Adds a constant matrix (no gradient into the constant). Used for the
    /// noise term `r(x^m)·σ` of the replay loss.
    pub fn add_const(&mut self, a: Var, constant: &Matrix) -> Var {
        let Self { nodes, scratch, .. } = self;
        let va = &nodes[a.0].value;
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.zip_map_into(constant, &mut out, |x, y| x + y);
        self.push(Op::AddConst(a), out)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let va = &nodes[a.0].value;
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.map_into(&mut out, |v| v.max(0.0));
        self.push(Op::Relu(a), out)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let va = &nodes[a.0].value;
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.map_into(&mut out, f32::tanh);
        self.push(Op::Tanh(a), out)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let va = &nodes[a.0].value;
        let mut out = scratch.take_matrix(va.rows(), va.cols());
        va.map_into(&mut out, |v| v * v);
        self.push(Op::Square(a), out)
    }

    /// Sum of all elements, as a `1 x 1` matrix.
    pub fn sum(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let total = nodes[a.0].value.sum();
        let mut out = scratch.take_matrix(1, 1);
        out.set(0, 0, total);
        self.push(Op::Sum(a), out)
    }

    /// Mean of all elements, as a `1 x 1` matrix.
    pub fn mean(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let m = nodes[a.0].value.mean();
        let mut out = scratch.take_matrix(1, 1);
        out.set(0, 0, m);
        self.push(Op::Mean(a), out)
    }

    /// L2-normalizes each row (`y_i = x_i / max(‖x_i‖, ε)`).
    pub fn row_normalize(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let x = &nodes[a.0].value;
        let (rows, cols) = x.shape();
        let mut out = scratch.take_copy(x);
        let kernel = |range: std::ops::Range<usize>, out_chunk: &mut [f32]| {
            // SIMD-dispatched: the norm is the canonical 8-lane-tree
            // self-dot (crate::simd), the division elementwise — both
            // bit-identical at every ISA level and thread count.
            for (local, r) in range.enumerate() {
                let row = x.row(r);
                let norm = crate::simd::dot(row, row).sqrt().max(NORM_EPS);
                crate::simd::div_scalar(&mut out_chunk[local * cols..(local + 1) * cols], norm);
            }
        };
        if rows * cols >= MIN_PAR_ELEMS && rows > 1 {
            edsr_par::par_for_rows(out.data_mut(), rows, kernel);
        } else {
            kernel(0..rows, out.data_mut());
        }
        self.push(Op::RowNormalize(a), out)
    }

    /// Standardizes each column to zero mean / unit variance over the batch
    /// (the normalization BarlowTwins applies before the cross-correlation).
    pub fn col_standardize(&mut self, a: Var, eps: f32) -> Var {
        let Self { nodes, scratch, .. } = self;
        let x = &nodes[a.0].value;
        let (rows, cols) = x.shape();
        let mut out = scratch.take_matrix(rows, cols);
        for c in 0..cols {
            let mut mean = 0.0;
            for r in 0..rows {
                mean += x.get(r, c);
            }
            mean /= rows as f32;
            let mut var = 0.0;
            for r in 0..rows {
                let d = x.get(r, c) - mean;
                var += d * d;
            }
            var /= rows as f32;
            let s = (var + eps).sqrt();
            for r in 0..rows {
                out.set(r, c, (x.get(r, c) - mean) / s);
            }
        }
        self.push(Op::ColStandardize(a, eps), out)
    }

    /// Stop-gradient: copies the value, blocks the backward pass (the
    /// `sg(·)` operation of SimSiam, Eq. 3).
    pub fn detach(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let value = scratch.take_copy(&nodes[a.0].value);
        self.push(Op::Detach(a), value)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let va = &nodes[a.0].value;
        let mut out = scratch.take_matrix(va.cols(), va.rows());
        va.transpose_into(&mut out);
        self.push(Op::Transpose(a), out)
    }

    /// Pure index gather: builds an `out_rows x out_cols` node whose
    /// element `i` (row-major) is `a`'s element `map[i]` (row-major).
    /// Source indices may repeat; gradients accumulate into repeated
    /// sources. This is the lowering primitive for im2col convolution and
    /// layout permutations.
    ///
    /// # Panics
    /// Panics if `map.len() != out_rows * out_cols` or any index is out of
    /// range for `a`.
    pub fn gather(
        &mut self,
        a: Var,
        map: std::sync::Arc<Vec<usize>>,
        out_rows: usize,
        out_cols: usize,
    ) -> Var {
        assert_eq!(
            map.len(),
            out_rows * out_cols,
            "gather: map length mismatch"
        );
        let Self { nodes, scratch, .. } = self;
        let src = &nodes[a.0].value;
        let src_data = src.data();
        let mut out = scratch.take_matrix(out_rows, out_cols);
        // Capture the index slice, not the `Rc` (an `Rc` is not `Sync`).
        let map_slice: &[usize] = &map;
        let fill = |range: std::ops::Range<usize>, out_chunk: &mut [f32]| {
            let start = range.start * out_cols;
            let idxs = &map_slice[start..start + out_chunk.len()];
            for (o, &idx) in out_chunk.iter_mut().zip(idxs) {
                assert!(idx < src_data.len(), "gather: index {idx} out of range");
                *o = src_data[idx];
            }
        };
        if out_rows * out_cols >= MIN_PAR_ELEMS && out_rows > 1 {
            edsr_par::par_for_rows(out.data_mut(), out_rows, fill);
        } else {
            fill(0..out_rows, out.data_mut());
        }
        self.push(Op::Gather(a, map), out)
    }

    /// Mean squared error between two same-shape matrices, as `1 x 1`.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let Self { nodes, scratch, .. } = self;
        let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
        assert_eq!(va.shape(), vb.shape(), "mse: shape mismatch");
        // Same accumulation order as `sub` + `map` + `mean`, without the
        // intermediate difference matrix.
        let mut total = 0.0f32;
        for (&x, &y) in va.data().iter().zip(vb.data()) {
            let d = x - y;
            total += d * d;
        }
        let value = total / va.len().max(1) as f32;
        let mut out = scratch.take_matrix(1, 1);
        out.set(0, 0, value);
        self.push(Op::MseLoss(a, b), out)
    }

    /// Mean cosine similarity between corresponding rows of `a` and `b`,
    /// as a `1 x 1` node. This is the `Sim(·,·)` used throughout the paper.
    pub fn cosine_rows_mean(&mut self, a: Var, b: Var) -> Var {
        let rows = self.value(a).rows();
        assert_eq!(rows, self.value(b).rows(), "cosine_rows_mean: row mismatch");
        let na = self.row_normalize(a);
        let nb = self.row_normalize(b);
        let prod = self.mul_elem(na, nb);
        let total = self.sum(prod);
        self.scale(total, 1.0 / rows.max(1) as f32)
    }

    /// Runs the backward pass from a scalar (`1 x 1`) loss node. Every
    /// gradient matrix is pool-backed; return the set with
    /// [`recycle`](Self::recycle) once consumed.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 x 1`.
    pub fn backward(&mut self, loss: Var) -> Grads {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1x1 scalar node"
        );
        let Self {
            nodes,
            scratch,
            grads_pool,
        } = self;
        let mut grads = std::mem::take(grads_pool);
        grads.clear();
        grads.resize_with(nodes.len(), || None);
        let mut seed = scratch.take_matrix(1, 1);
        seed.set(0, 0, 1.0);
        grads[loss.0] = Some(seed);

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else { continue };
            // Re-insert so callers can read gradients of interior nodes too.
            let node = &nodes[idx];
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = scratch.take_matrix(g.rows(), vb.rows());
                    g.matmul_transpose_into(vb, &mut ga);
                    let mut gb = scratch.take_matrix(va.cols(), g.cols());
                    va.transpose_matmul_into(&g, &mut gb);
                    accumulate(&mut grads, scratch, *a, ga);
                    accumulate(&mut grads, scratch, *b, gb);
                }
                Op::Add(a, b) => {
                    let ga = scratch.take_copy(&g);
                    accumulate(&mut grads, scratch, *a, ga);
                    let gb = scratch.take_copy(&g);
                    accumulate(&mut grads, scratch, *b, gb);
                }
                Op::Sub(a, b) => {
                    let ga = scratch.take_copy(&g);
                    accumulate(&mut grads, scratch, *a, ga);
                    let mut gb = scratch.take_matrix(g.rows(), g.cols());
                    g.map_into(&mut gb, |v| -v);
                    accumulate(&mut grads, scratch, *b, gb);
                }
                Op::MulElem(a, b) => {
                    let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let mut ga = scratch.take_matrix(g.rows(), g.cols());
                    g.zip_map_into(vb, &mut ga, |gv, bv| gv * bv);
                    let mut gb = scratch.take_matrix(g.rows(), g.cols());
                    g.zip_map_into(va, &mut gb, |gv, av| gv * av);
                    accumulate(&mut grads, scratch, *a, ga);
                    accumulate(&mut grads, scratch, *b, gb);
                }
                Op::AddRow(a, bias) => {
                    let ga = scratch.take_copy(&g);
                    accumulate(&mut grads, scratch, *a, ga);
                    // Column sums in ascending-row order (matches
                    // `Matrix::col_sums`), written without allocating.
                    let mut gbias = scratch.take_matrix(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &v) in gbias.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    accumulate(&mut grads, scratch, *bias, gbias);
                }
                Op::Scale(a, c) => {
                    let mut ga = scratch.take_matrix(g.rows(), g.cols());
                    g.scale_into(&mut ga, *c);
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::AddConst(a) => {
                    let ga = scratch.take_copy(&g);
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::Relu(a) => {
                    let x = &nodes[a.0].value;
                    let mut ga = scratch.take_matrix(g.rows(), g.cols());
                    g.zip_map_into(x, &mut ga, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let mut ga = scratch.take_matrix(g.rows(), g.cols());
                    g.zip_map_into(y, &mut ga, |gv, yv| gv * (1.0 - yv * yv));
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::Square(a) => {
                    let x = &nodes[a.0].value;
                    let mut ga = scratch.take_matrix(g.rows(), g.cols());
                    g.zip_map_into(x, &mut ga, |gv, xv| 2.0 * gv * xv);
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::Sum(a) => {
                    let x = &nodes[a.0].value;
                    let mut ga = scratch.take_matrix(x.rows(), x.cols());
                    ga.data_mut().fill(g.get(0, 0));
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::Mean(a) => {
                    let x = &nodes[a.0].value;
                    let scale = g.get(0, 0) / x.len().max(1) as f32;
                    let mut ga = scratch.take_matrix(x.rows(), x.cols());
                    ga.data_mut().fill(scale);
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::RowNormalize(a) => {
                    let x = &nodes[a.0].value;
                    let y = &node.value;
                    let mut ga = scratch.take_matrix(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        // Same canonical reductions as the forward pass, so
                        // the backward norm matches its bits exactly.
                        let xr = x.row(r);
                        let norm = crate::simd::dot(xr, xr).sqrt().max(NORM_EPS);
                        let dot = crate::simd::dot(g.row(r), y.row(r));
                        for (c, out) in ga.row_mut(r).iter_mut().enumerate() {
                            *out = (g.get(r, c) - y.get(r, c) * dot) / norm;
                        }
                    }
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::ColStandardize(a, eps) => {
                    let x = &nodes[a.0].value;
                    let y = &node.value;
                    let (rows, cols) = x.shape();
                    let n = rows as f32;
                    let mut ga = scratch.take_matrix(rows, cols);
                    for c in 0..cols {
                        let mut mean = 0.0;
                        for r in 0..rows {
                            mean += x.get(r, c);
                        }
                        mean /= n;
                        let mut var = 0.0;
                        for r in 0..rows {
                            let d = x.get(r, c) - mean;
                            var += d * d;
                        }
                        var /= n;
                        let s = (var + eps).sqrt();
                        let mut g_mean = 0.0;
                        let mut gy_mean = 0.0;
                        for r in 0..rows {
                            g_mean += g.get(r, c);
                            gy_mean += g.get(r, c) * y.get(r, c);
                        }
                        g_mean /= n;
                        gy_mean /= n;
                        for r in 0..rows {
                            let v = (g.get(r, c) - g_mean - y.get(r, c) * gy_mean) / s;
                            ga.set(r, c, v);
                        }
                    }
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::Detach(_) => {}
                Op::Transpose(a) => {
                    let mut ga = scratch.take_matrix(g.cols(), g.rows());
                    g.transpose_into(&mut ga);
                    accumulate(&mut grads, scratch, *a, ga);
                }
                Op::MseLoss(a, b) => {
                    let (va, vb) = (&nodes[a.0].value, &nodes[b.0].value);
                    let scale = 2.0 * g.get(0, 0) / va.len().max(1) as f32;
                    let mut ga = scratch.take_matrix(va.rows(), va.cols());
                    va.zip_map_into(vb, &mut ga, |x, y| (x - y) * scale);
                    let mut gb = scratch.take_matrix(va.rows(), va.cols());
                    va.zip_map_into(vb, &mut gb, |x, y| (x - y) * -scale);
                    accumulate(&mut grads, scratch, *a, ga);
                    accumulate(&mut grads, scratch, *b, gb);
                }
                Op::Gather(a, map) => {
                    let src = &nodes[a.0].value;
                    // `take_matrix` zero-fills, which the scatter-add needs.
                    let mut ga = scratch.take_matrix(src.rows(), src.cols());
                    for (i, &idx) in map.iter().enumerate() {
                        ga.data_mut()[idx] += g.data()[i];
                    }
                    accumulate(&mut grads, scratch, *a, ga);
                }
            }
            grads[idx] = Some(g);
        }
        Grads { grads }
    }
}

/// Adds `g` into the slot for `var`, returning `g`'s buffer to the pool
/// when the slot already holds a gradient.
fn accumulate(grads: &mut [Option<Matrix>], scratch: &mut Scratch, var: Var, g: Matrix) {
    match &mut grads[var.0] {
        Some(existing) => {
            existing.add_assign(&g);
            scratch.give_matrix(g);
        }
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::rng::seeded;

    #[test]
    fn tape_bookkeeping() {
        let mut t = Tape::new();
        assert!(t.is_empty());
        let a = t.leaf(Matrix::zeros(1, 1));
        assert_eq!(t.len(), 1);
        assert_eq!(a.index(), 0);
        assert_eq!(t.value(a).shape(), (1, 1));
    }

    #[test]
    fn grads_get_or_zeros_shapes() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::filled(2, 3, 1.0));
        let d = t.detach(a);
        let sq = t.square(d);
        let loss = t.sum(sq);
        let g = t.backward(loss);
        // `a` got no gradient (behind detach) → zeros of requested shape.
        let z = g.get_or_zeros(a, 2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
    }

    #[test]
    fn forward_matmul_add() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let c = t.matmul(a, b);
        assert_eq!(t.value(c).get(0, 0), 11.0);
    }

    #[test]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(2, 2));
        let r = t.relu(a);
        let s = t.sum(r);
        let _ = t.backward(s); // scalar: fine
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_on_matrix_panics() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(2, 2));
        let r = t.relu(a);
        let _ = t.backward(r);
    }

    #[test]
    fn simple_chain_gradient() {
        // L = sum((2x)^2) = 4 * sum(x^2); dL/dx = 8x
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        let sx = t.scale(x, 2.0);
        let sq = t.square(sx);
        let loss = t.sum(sq);
        let g = t.backward(loss);
        let gx = g.get(x).unwrap();
        assert_eq!(gx.data(), &[8.0, -16.0, 24.0]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(1, 2, 3.0));
        let d = t.detach(x);
        let sq = t.square(d);
        let loss = t.sum(sq);
        let g = t.backward(loss);
        assert!(g.get(x).is_none(), "gradient leaked through detach");
        assert!(g.get(d).is_some());
    }

    #[test]
    fn gradient_accumulates_over_reuse() {
        // L = sum(x ⊙ x') where both operands are the same node: dL/dx = 2x.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![3.0, -1.0]));
        let p = t.mul_elem(x, x);
        let loss = t.sum(p);
        let g = t.backward(loss);
        assert_eq!(g.get(x).unwrap().data(), &[6.0, -2.0]);
    }

    #[test]
    fn reset_recycles_node_buffers() {
        let mut t = Tape::new();
        let run = |t: &mut Tape| {
            let x = t.leaf_copy(&Matrix::filled(8, 8, 2.0));
            let y = t.square(x);
            let s = t.sum(y);
            let grads = t.backward(s);
            assert_eq!(grads.get(x).unwrap().get(0, 0), 4.0);
            t.recycle(grads);
            t.reset();
        };
        run(&mut t); // warmup populates the pool
        let misses = t.scratch().misses();
        run(&mut t);
        run(&mut t);
        assert_eq!(t.scratch().misses(), misses, "steady-state tape allocated");
    }

    #[test]
    fn leaf_copy_matches_leaf() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut t = Tape::new();
        let a = t.leaf_copy(&m);
        assert_eq!(t.value(a), &m);
        // The copy is independent of the source.
        t.value_mut(a).set(0, 0, 9.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn gradcheck_matmul() {
        let mut rng = seeded(21);
        let a = Matrix::randn(3, 4, 1.0, &mut rng);
        let b = Matrix::randn(4, 2, 1.0, &mut rng);
        check_gradients(&[a, b], 1e-2, 2e-2, |t, vars| {
            let m = t.matmul(vars[0], vars[1]);
            let s = t.square(m);
            t.sum(s)
        });
    }

    #[test]
    fn gradcheck_add_sub_mul() {
        let mut rng = seeded(22);
        let a = Matrix::randn(2, 3, 1.0, &mut rng);
        let b = Matrix::randn(2, 3, 1.0, &mut rng);
        check_gradients(&[a, b], 1e-2, 2e-2, |t, vars| {
            let s = t.add(vars[0], vars[1]);
            let d = t.sub(s, vars[1]);
            let m = t.mul_elem(d, vars[1]);
            t.sum(m)
        });
    }

    #[test]
    fn gradcheck_add_row_bias() {
        let mut rng = seeded(23);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let bias = Matrix::randn(1, 3, 1.0, &mut rng);
        check_gradients(&[a, bias], 1e-2, 2e-2, |t, vars| {
            let y = t.add_row(vars[0], vars[1]);
            let sq = t.square(y);
            t.sum(sq)
        });
    }

    #[test]
    fn gradcheck_relu_tanh() {
        let mut rng = seeded(24);
        // Keep values away from the ReLU kink for a stable finite-difference.
        let a = Matrix::randn(3, 3, 1.0, &mut rng).map(|v| if v.abs() < 0.2 { v + 0.5 } else { v });
        check_gradients(&[a], 1e-3, 2e-2, |t, vars| {
            let r = t.relu(vars[0]);
            let h = t.tanh(r);
            let s = t.square(h);
            t.sum(s)
        });
    }

    #[test]
    fn gradcheck_mean() {
        let mut rng = seeded(25);
        let a = Matrix::randn(3, 5, 1.0, &mut rng);
        check_gradients(&[a], 1e-2, 2e-2, |t, vars| {
            let sq = t.square(vars[0]);
            t.mean(sq)
        });
    }

    #[test]
    fn gradcheck_row_normalize() {
        let mut rng = seeded(26);
        let a = Matrix::randn(3, 4, 1.0, &mut rng).map(|v| v + 0.1);
        let w = Matrix::randn(3, 4, 1.0, &mut rng);
        check_gradients(&[a, w], 1e-3, 3e-2, |t, vars| {
            let n = t.row_normalize(vars[0]);
            let p = t.mul_elem(n, vars[1]);
            t.sum(p)
        });
    }

    #[test]
    fn gradcheck_col_standardize() {
        let mut rng = seeded(27);
        let a = Matrix::randn(5, 3, 1.0, &mut rng);
        let w = Matrix::randn(5, 3, 1.0, &mut rng);
        check_gradients(&[a, w], 1e-3, 5e-2, |t, vars| {
            let n = t.col_standardize(vars[0], 1e-4);
            let p = t.mul_elem(n, vars[1]);
            t.sum(p)
        });
    }

    #[test]
    fn gradcheck_mse() {
        let mut rng = seeded(28);
        let a = Matrix::randn(3, 4, 1.0, &mut rng);
        let b = Matrix::randn(3, 4, 1.0, &mut rng);
        check_gradients(&[a, b], 1e-2, 2e-2, |t, vars| t.mse(vars[0], vars[1]));
    }

    #[test]
    fn gradcheck_transpose() {
        let mut rng = seeded(29);
        let a = Matrix::randn(2, 3, 1.0, &mut rng);
        let b = Matrix::randn(3, 2, 1.0, &mut rng);
        check_gradients(&[a, b], 1e-2, 2e-2, |t, vars| {
            let at = t.transpose(vars[0]);
            let p = t.mul_elem(at, vars[1]);
            t.sum(p)
        });
    }

    #[test]
    fn gradcheck_cosine_rows_mean() {
        let mut rng = seeded(30);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(4, 6, 1.0, &mut rng);
        check_gradients(&[a, b], 1e-3, 3e-2, |t, vars| {
            t.cosine_rows_mean(vars[0], vars[1])
        });
    }

    #[test]
    fn cosine_identical_rows_is_one() {
        let mut rng = seeded(31);
        let a = Matrix::randn(5, 8, 1.0, &mut rng);
        let mut t = Tape::new();
        let v = t.leaf(a);
        let c = t.cosine_rows_mean(v, v);
        assert!((t.value(c).get(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_opposite_rows_is_minus_one() {
        let mut rng = seeded(32);
        let a = Matrix::randn(5, 8, 1.0, &mut rng);
        let neg = a.scale(-1.0);
        let mut t = Tape::new();
        let va = t.leaf(a);
        let vb = t.leaf(neg);
        let c = t.cosine_rows_mean(va, vb);
        assert!((t.value(c).get(0, 0) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn col_standardize_output_stats() {
        let mut rng = seeded(33);
        let a = Matrix::randn(64, 5, 3.0, &mut rng).map(|v| v + 10.0);
        let mut t = Tape::new();
        let v = t.leaf(a);
        let s = t.col_standardize(v, 1e-5);
        let out = t.value(s);
        let means = out.col_means();
        assert!(
            means.data().iter().all(|m| m.abs() < 1e-4),
            "nonzero means {means:?}"
        );
        for c in 0..out.cols() {
            let var: f32 =
                (0..out.rows()).map(|r| out.get(r, c).powi(2)).sum::<f32>() / out.rows() as f32;
            assert!((var - 1.0).abs() < 1e-3, "column variance {var}");
        }
    }

    #[test]
    fn gather_forward_and_backward() {
        use std::sync::Arc;
        let mut t = Tape::new();
        // input 1x3: [10, 20, 30]; gather with duplicates into 2x2.
        let x = t.leaf(Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]));
        let map = Arc::new(vec![0usize, 2, 2, 1]);
        let y = t.gather(x, map, 2, 2);
        assert_eq!(t.value(y).data(), &[10.0, 30.0, 30.0, 20.0]);
        let sq = t.square(y);
        let loss = t.sum(sq);
        let g = t.backward(loss);
        // dL/dx_k = sum over outputs drawing from k of 2*value:
        // x0 once (2*10), x1 once (2*20), x2 twice (2*30 + 2*30).
        assert_eq!(g.get(x).unwrap().data(), &[20.0, 40.0, 120.0]);
    }

    #[test]
    fn gradcheck_gather_with_duplicates() {
        use std::sync::Arc;
        let mut rng = seeded(34);
        let a = Matrix::randn(2, 3, 1.0, &mut rng);
        let map = Arc::new(vec![0usize, 5, 1, 1, 4, 2, 3, 0]);
        check_gradients(&[a], 1e-2, 2e-2, |t, vars| {
            let y = t.gather(vars[0], Arc::clone(&map), 2, 4);
            let sq = t.square(y);
            t.sum(sq)
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_bad_index_panics() {
        use std::sync::Arc;
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(1, 2));
        let _ = t.gather(x, Arc::new(vec![5usize]), 1, 1);
    }

    #[test]
    fn add_const_passes_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(1, 2, 1.0));
        let noise = Matrix::filled(1, 2, 0.5);
        let y = t.add_const(x, &noise);
        let sq = t.square(y);
        let loss = t.sum(sq);
        assert_eq!(t.value(y).data(), &[1.5, 1.5]);
        let g = t.backward(loss);
        assert_eq!(g.get(x).unwrap().data(), &[3.0, 3.0]);
    }
}
