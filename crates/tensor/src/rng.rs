//! Randomness helpers.
//!
//! The workspace uses only the `rand` crate; the Gaussian sampler is a
//! Box–Muller transform implemented here so no distribution crate is needed.
//! All experiment code threads an explicit [`StdRng`] for reproducibility.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Creates a deterministic RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn gaussian(rng: &mut StdRng) -> f32 {
    // Draw u1 in (0, 1] to keep ln(u1) finite.
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    r * theta.cos()
}

/// Draws a sample from `U[lo, hi)`.
pub fn uniform(rng: &mut StdRng, lo: f32, hi: f32) -> f32 {
    debug_assert!(lo <= hi, "uniform: lo must not exceed hi");
    lo + (hi - lo) * rng.random::<f32>()
}

/// Draws a uniform index in `0..n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn index(rng: &mut StdRng, n: usize) -> usize {
    assert!(n > 0, "index: empty range");
    rng.random_range(0..n)
}

/// Fisher–Yates shuffles `items` in place.
pub fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k={k} exceeds n={n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Samples one index from a non-negative weight vector, proportionally.
///
/// Falls back to uniform sampling when all weights are zero or non-finite.
///
/// # Panics
/// Panics if `weights` is empty. Use [`weighted_choice`] for a
/// panic-free variant.
pub fn weighted_index(rng: &mut StdRng, weights: &[f32]) -> usize {
    assert!(!weights.is_empty(), "weighted_index: empty weights");
    // Unreachable default: weighted_choice is None only for empty input.
    weighted_choice(rng, weights).unwrap_or_default()
}

/// Panic-free proportional sampling from a weight vector.
///
/// Degenerate inputs take a documented fallback instead of panicking or
/// biasing silently:
///
/// - **Empty** weights → `None` (there is nothing to choose).
/// - **Negative or non-finite** entries (NaN, ±inf) are treated as zero
///   weight — they can never be selected while any positive finite
///   weight exists.
/// - **All entries zero/negative/non-finite** (so the usable total is
///   zero) → uniform choice over *all* indices. Selection code uses this
///   so a degenerate score vector (e.g. collapsed similarity scores)
///   degrades to random sampling rather than always picking index 0.
pub fn weighted_choice(rng: &mut StdRng, weights: &[f32]) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let total: f32 = weights
        .iter()
        .filter(|w| w.is_finite())
        .map(|w| w.max(0.0))
        .sum();
    if total <= 0.0 || !total.is_finite() {
        return Some(index(rng, weights.len()));
    }
    let mut t = uniform(rng, 0.0, total);
    for (i, w) in weights.iter().enumerate() {
        let w = if w.is_finite() { w.max(0.0) } else { 0.0 };
        if t < w {
            return Some(i);
        }
        t -= w;
    }
    // Floating-point accumulation can overshoot the last positive weight;
    // return the last index with usable weight.
    weights
        .iter()
        .rposition(|w| w.is_finite() && *w > 0.0)
        .or(Some(weights.len() - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded(11);
        let n = 40_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian_is_finite() {
        let mut rng = seeded(12);
        assert!((0..10_000).all(|_| gaussian(&mut rng).is_finite()));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(13);
        for _ in 0..1000 {
            let v = uniform(&mut rng, -1.5, 2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(14);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = seeded(15);
        let s = sample_indices(&mut rng, 100, 30);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "duplicates in sample");
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = seeded(16);
        let mut s = sample_indices(&mut rng, 5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "sample_indices")]
    fn sample_indices_overdraw_panics() {
        let mut rng = seeded(17);
        let _ = sample_indices(&mut rng, 3, 4);
    }

    #[test]
    fn weighted_index_prefers_heavy() {
        let mut rng = seeded(18);
        let weights = [0.0, 0.0, 10.0, 0.1];
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[3] * 10, "counts {counts:?}");
    }

    #[test]
    fn weighted_index_all_zero_falls_back_uniform() {
        let mut rng = seeded(19);
        let weights = [0.0, 0.0, 0.0];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[weighted_index(&mut rng, &weights)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_handles_tiny_inputs() {
        let mut rng = seeded(20);
        let mut empty: [usize; 0] = [];
        shuffle(&mut rng, &mut empty);
        let mut one = [7usize];
        shuffle(&mut rng, &mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn weighted_index_single_element() {
        let mut rng = seeded(21);
        assert_eq!(weighted_index(&mut rng, &[5.0]), 0);
    }

    #[test]
    fn weighted_index_ignores_nonfinite() {
        let mut rng = seeded(22);
        let weights = [f32::NAN, 1.0, f32::INFINITY];
        for _ in 0..100 {
            let i = weighted_index(&mut rng, &weights);
            assert!(i < 3);
        }
    }

    #[test]
    fn weighted_choice_empty_is_none() {
        let mut rng = seeded(23);
        assert_eq!(weighted_choice(&mut rng, &[]), None);
    }

    #[test]
    fn weighted_choice_all_nonfinite_falls_back_uniform() {
        let mut rng = seeded(24);
        let weights = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[weighted_choice(&mut rng, &weights).expect("non-empty")] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform fallback missed an index: {seen:?}"
        );
    }

    #[test]
    fn weighted_choice_all_negative_falls_back_uniform() {
        let mut rng = seeded(25);
        let weights = [-1.0, -2.0, -0.5];
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[weighted_choice(&mut rng, &weights).expect("non-empty")] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_choice_never_picks_zero_weight_when_positive_exists() {
        let mut rng = seeded(26);
        let weights = [0.0, f32::NAN, 3.0, -1.0];
        for _ in 0..500 {
            assert_eq!(weighted_choice(&mut rng, &weights), Some(2));
        }
    }

    #[test]
    fn weighted_choice_matches_weighted_index() {
        let mut a = seeded(27);
        let mut b = seeded(27);
        let weights = [0.5, 2.0, 0.0, 1.25];
        for _ in 0..200 {
            assert_eq!(
                weighted_choice(&mut a, &weights),
                Some(weighted_index(&mut b, &weights))
            );
        }
    }

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(gaussian(&mut a).to_bits(), gaussian(&mut b).to_bits());
        }
    }
}
