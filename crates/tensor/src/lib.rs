//! # edsr-tensor
//!
//! Minimal dense-matrix and reverse-mode autodiff substrate for the EDSR
//! reproduction (ICDE 2024, *Effective Data Selection and Replay for
//! Unsupervised Continual Learning*).
//!
//! The paper's training stack (PyTorch/MindSpore on GPUs) is replaced by
//! this from-scratch engine per the reproduction's substitution policy:
//! every differentiable operation needed by SimSiam, BarlowTwins, the
//! CaSSLe distillation projector and EDSR's noise-enhanced replay loss is
//! implemented and gradient-checked here.
//!
//! ## Layout
//! - [`matrix`]: dense row-major `f32` [`Matrix`] with loop-kernel matmuls.
//! - [`tape`]: flat-tape reverse-mode autodiff ([`Tape`], [`Var`]).
//! - [`rng`]: seeded RNG helpers (Box–Muller Gaussian, sampling, shuffles).
//! - [`gradcheck`]: finite-difference gradient verification for tests.

pub mod gradcheck;
pub mod kernel;
pub mod matrix;
pub mod rng;
pub mod scratch;
pub mod simd;
pub mod tape;

pub use matrix::Matrix;
pub use scratch::Scratch;
pub use tape::{Grads, Tape, Var};

#[cfg(test)]
mod proptests {
    use crate::matrix::Matrix;
    use proptest::prelude::*;

    fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-10.0f32..10.0, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data))
        })
    }

    proptest! {
        #[test]
        fn add_commutes(a in small_matrix(6)) {
            let b = a.scale(0.5);
            prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-6);
        }

        #[test]
        fn transpose_involution(a in small_matrix(6)) {
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn matmul_identity(a in small_matrix(6)) {
            let i = Matrix::identity(a.cols());
            prop_assert!(a.matmul(&i).max_abs_diff(&a) < 1e-6);
        }

        #[test]
        fn trace_of_gram_is_squared_frobenius(a in small_matrix(6)) {
            let gram = a.transpose_matmul(&a);
            let tr = gram.trace();
            let fro2 = a.frobenius_norm().powi(2);
            let denom = 1.0f32.max(fro2.abs());
            prop_assert!(((tr - fro2).abs() / denom) < 1e-3, "tr {} vs fro2 {}", tr, fro2);
        }

        #[test]
        fn scale_distributes_over_add(a in small_matrix(5)) {
            let b = a.map(|v| v - 1.0);
            let lhs = a.add(&b).scale(2.0);
            let rhs = a.scale(2.0).add(&b.scale(2.0));
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
        }

        #[test]
        fn select_rows_preserves_content(a in small_matrix(6)) {
            let idx: Vec<usize> = (0..a.rows()).rev().collect();
            let sel = a.select_rows(&idx);
            for (new_r, &old_r) in idx.iter().enumerate() {
                prop_assert_eq!(sel.row(new_r), a.row(old_r));
            }
        }

        #[test]
        fn row_norms_nonnegative(a in small_matrix(6)) {
            prop_assert!(a.row_norms().data().iter().all(|&v| v >= 0.0));
        }
    }
}
