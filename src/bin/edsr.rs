//! `edsr` — command-line front end for the reproduction.
//!
//! ```text
//! edsr presets                       list the built-in benchmarks
//! edsr run <preset> <method> [opts]  run one continual-learning job
//! edsr tabular <method> [opts]       run the tabular stream (§IV-E)
//! edsr metrics [PATH]                summarize a JSONL metrics file
//!
//! methods: finetune | si | der | lump | cassle | edsr | multitask
//! options: --seed N         data/model/run seed base   (default 11)
//!          --epochs N       epochs per increment       (preset default)
//!          --memory N       total memory budget        (preset default)
//!          --threads N      compute threads (default: all cores; results
//!                           are bit-identical at any value — DESIGN.md §9)
//!          --save PATH      write the final model checkpoint
//!          --checkpoint DIR snapshot run state after each increment
//!          --resume         continue from the latest valid snapshot
//!          --obs MODE       observability sink: off | ring | jsonl
//!          --obs-path PATH  metrics file for --obs jsonl (metrics.jsonl)
//! ```
//!
//! `--threads`, `--checkpoint`, `--resume`, `--obs` and `--obs-path` also
//! read `EDSR_THREADS` / `EDSR_CHECKPOINT` / `EDSR_RESUME` / `EDSR_OBS` /
//! `EDSR_OBS_PATH`; the CLI flag wins ([`EnvConfig`] precedence).
//!
//! Every failure (bad flag, divergence after retries, checkpoint
//! corruption) surfaces as a structured error with a non-zero exit, not
//! a panic.

use edsr::cl::{
    run_multitask, tabular_augmenters, Cassle, CheckpointConfig, ContinualModel, Der, Finetune,
    Lump, Method, ModelConfig, RunBuilder, Si, TrainConfig,
};
use edsr::core::{Edsr, EnvConfig, Error};
use edsr::data::{
    cifar100_sim, cifar10_sim, domainnet_sim, tabular_sequence, test_sim, tiny_imagenet_sim,
    Preset, TabularConfig, TABULAR_SPECS,
};
use edsr::tensor::rng::seeded;

fn usage() -> ! {
    eprintln!(
        "usage:\n  edsr presets\n  edsr run <preset> <method> [--seed N] [--epochs N] [--memory N] [--threads N] [--save PATH] [--checkpoint DIR] [--resume] [--obs MODE] [--obs-path PATH]\n  edsr tabular <method> [--seed N] [--epochs N] [--threads N]\n  edsr metrics [PATH]\n\npresets: cifar10 | cifar100 | tiny-imagenet | domainnet | test\nmethods: finetune | si | der | lump | cassle | edsr | multitask\n\n--threads (or EDSR_THREADS) sets the compute thread count; results are\nbit-identical at any value (DESIGN.md \u{a7}9). 1 = pure serial.\n--obs jsonl (or EDSR_OBS=jsonl) streams spans and metrics to --obs-path."
    );
    std::process::exit(2);
}

/// Finds `--flag value` or `--flag=value` (matching `EnvConfig`'s CLI
/// grammar, so neither form is silently ignored).
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().enumerate().find_map(|(i, a)| {
        if a == flag {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix(flag)
                .and_then(|rest| rest.strip_prefix('='))
                .map(str::to_owned)
        }
    })
}

/// Parses a numeric flag value, turning bad input into a structured
/// error naming the flag instead of a panic.
fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, Error> {
    value
        .parse()
        .map_err(|_| Error::Data(format!("{flag} expects a number, got {value:?}")))
}

fn preset_by_name(name: &str) -> Option<Preset> {
    match name {
        "cifar10" => Some(cifar10_sim()),
        "cifar100" => Some(cifar100_sim()),
        "tiny-imagenet" | "tiny" => Some(tiny_imagenet_sim()),
        "domainnet" => Some(domainnet_sim()),
        "test" => Some(test_sim()),
        _ => None,
    }
}

fn method_by_name(
    name: &str,
    budget: usize,
    replay_batch: usize,
    noise_k: usize,
) -> Option<Box<dyn Method>> {
    Some(match name {
        "finetune" => Box::new(Finetune::new()),
        "si" => Box::new(Si::new(0.1)),
        "der" => Box::new(Der::new(budget, replay_batch, 0.5)),
        "lump" => Box::new(Lump::new(budget)),
        "cassle" => Box::new(Cassle::new()),
        "edsr" => Box::new(Edsr::paper_default(budget, replay_batch, noise_k)),
        _ => return None,
    })
}

fn cmd_presets() {
    println!(
        "{:<15} {:>6} {:>8} {:>11} {:>8} {:>7}",
        "preset", "tasks", "classes", "train/task", "memory", "dim"
    );
    for (name, p) in [
        ("cifar10", cifar10_sim()),
        ("cifar100", cifar100_sim()),
        ("tiny-imagenet", tiny_imagenet_sim()),
        ("domainnet", domainnet_sim()),
        ("test", test_sim()),
    ] {
        println!(
            "{:<15} {:>6} {:>8} {:>11} {:>8} {:>7}",
            name,
            p.num_tasks(),
            p.classes_per_task,
            p.classes_per_task * p.train_per_class,
            p.memory_total,
            p.grid.dim()
        );
    }
}

fn cmd_run(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let (Some(preset_name), Some(method_name)) = (args.first(), args.get(1)) else {
        usage()
    };
    let Some(mut preset) = preset_by_name(preset_name) else {
        eprintln!("unknown preset {preset_name:?}");
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 11,
    };
    if let Some(m) = parse_flag(args, "--memory") {
        preset = preset.with_memory_total(parse_num(&m, "--memory")?);
    }
    let mut cfg = TrainConfig::image();
    if let Some(e) = parse_flag(args, "--epochs") {
        cfg.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let checkpoint = env_cfg.checkpoint.as_ref().map(|dir| {
        let run_id = format!("{}-{}-s{}", preset.name, method_name, seed);
        CheckpointConfig::new(dir.display().to_string(), run_id)
    });

    let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(seed));
    let mut model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(seed + 1000),
    );
    let mut run_rng = seeded(seed + 2000);

    if method_name == "multitask" {
        let mt = run_multitask(&mut model, &sequence, &augmenters, &cfg, &mut run_rng)?;
        println!(
            "Multitask on {}: Acc {:.2}% ({:.1}s)",
            preset.name,
            mt.acc_pct(),
            mt.seconds
        );
    } else {
        let Some(mut method) = method_by_name(
            method_name,
            preset.per_task_budget(),
            cfg.replay_batch,
            preset.noise_neighbors,
        ) else {
            eprintln!("unknown method {method_name:?}");
            usage()
        };
        let mut builder = RunBuilder::new(&cfg);
        if let Some(ckpt) = checkpoint {
            builder = builder.checkpoint(ckpt);
        }
        if env_cfg.resume {
            // Without --checkpoint this fails fast with InvalidConfig
            // (the silent-no-op behaviour of the old RunOptions is gone).
            builder = builder.resume();
        }
        let result = builder.run(
            method.as_mut(),
            &mut model,
            &sequence,
            &augmenters,
            &mut run_rng,
        )?;
        println!(
            "{} on {}: Acc {:.2}%  Fgt {:.2}%  ({:.1}s, {} divergence recoveries)",
            result.method,
            preset.name,
            result.final_acc_pct(),
            result.final_fgt_pct(),
            result.total_seconds(),
            result.recoveries
        );
        for i in 0..result.matrix.num_increments() {
            println!(
                "  after task {i:>2}: Acc_i {:5.1}%  Fgt_i {:4.1}%  (new-task {:5.1}%)",
                result.matrix.acc_at(i) * 100.0,
                result.matrix.fgt_at(i) * 100.0,
                result.matrix.get(i, i) * 100.0
            );
        }
    }
    if let Some(path) = parse_flag(args, "--save") {
        model.save(&path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

fn cmd_tabular(args: &[String]) -> Result<(), Error> {
    let Some(method_name) = args.first() else {
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 1,
    };
    let mut cfg = TrainConfig::tabular();
    if let Some(e) = parse_flag(args, "--epochs") {
        cfg.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let sequence = tabular_sequence(&TabularConfig::default(), &mut seeded(seed));
    let augmenters = tabular_augmenters(&sequence, 0.4);
    let input_dims: Vec<usize> = TABULAR_SPECS.iter().map(|s| s.input_dim).collect();
    let mut model =
        ContinualModel::new(&ModelConfig::tabular(input_dims), &mut seeded(seed + 1000));
    let mut run_rng = seeded(seed + 2000);

    if method_name == "multitask" {
        let mt = run_multitask(&mut model, &sequence, &augmenters, &cfg, &mut run_rng)?;
        println!(
            "Multitask on tabular-sim: Acc {:.2}% ({:.1}s)",
            mt.acc_pct(),
            mt.seconds
        );
        return Ok(());
    }
    let budget = (sequence
        .tasks
        .iter()
        .map(|t| t.train.len())
        .max()
        .unwrap_or(100)
        / 100)
        .max(2);
    let Some(mut method) = method_by_name(method_name, budget, cfg.replay_batch, 10) else {
        eprintln!("unknown method {method_name:?}");
        usage()
    };
    let result = RunBuilder::new(&cfg).run(
        method.as_mut(),
        &mut model,
        &sequence,
        &augmenters,
        &mut run_rng,
    )?;
    println!(
        "{} on tabular-sim: Acc {:.2}%  Fgt {:.2}%  ({:.1}s)",
        result.method,
        result.final_acc_pct(),
        result.final_fgt_pct(),
        result.total_seconds()
    );
    Ok(())
}

/// `edsr metrics [PATH]` — parse a JSONL metrics file and print a
/// five-number summary per metric name (span enters excluded).
fn cmd_metrics(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let path = args
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| env_cfg.obs_path.clone());
    let text = std::fs::read_to_string(&path)?;
    let events = edsr::obs::parse_jsonl(&text)
        .map_err(|e| Error::Data(format!("{}: {e}", path.display())))?;
    let mut names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    names.sort_unstable();
    names.dedup();
    println!(
        "{:<24} {:>8} {:>14} {:>14} {:>14}",
        "name", "count", "min", "mean", "max"
    );
    for name in names {
        if let Some(s) = edsr::obs::summarize(&events, name) {
            println!(
                "{:<24} {:>8} {:>14.4} {:>14.4} {:>14.4}",
                name, s.count, s.min, s.mean, s.max
            );
        }
    }
    println!("{} events in {}", events.len(), path.display());
    Ok(())
}

fn main() {
    // One reader for every knob: CLI > env > default (DESIGN.md §11).
    let env_cfg = match EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let args = &env_cfg.rest;
    let result = match args.first().map(String::as_str) {
        Some("presets") => {
            cmd_presets();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..], &env_cfg),
        Some("tabular") => cmd_tabular(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..], &env_cfg),
        _ => usage(),
    };
    // Pool occupancy is cumulative over the whole run; emit it last so
    // the JSONL tail carries the final busy-time split, then flush.
    edsr::par::emit_pool_metrics();
    edsr::obs::flush();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
