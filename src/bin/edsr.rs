//! `edsr` — command-line front end for the reproduction.
//!
//! ```text
//! edsr presets                       list the built-in benchmarks
//! edsr run <preset> <method> [opts]  run one continual-learning job
//! edsr tabular <method> [opts]       run the tabular stream (§IV-E)
//! edsr metrics [PATH]                summarize a JSONL metrics file
//! edsr serve <SNAPSHOT> [opts]       serve embeddings + kNN over TCP
//! edsr query <ADDR> <op> [opts]      talk to a running server
//! edsr ps <preset> <method> [opts]   host a distributed training run
//! edsr worker <ADDR>                 join a distributed training run
//! edsr scenario list                 list the scenario zoo
//! edsr scenario write <name> <dir>   materialize a scenario as shards
//! edsr scenario run <name> <method>  train on a scenario, in RAM or
//!                                    out-of-core (--stream DIR)
//!
//! methods: finetune | si | der | lump | cassle | edsr | compemb | r2r
//!          | multitask
//! options: --seed N         data/model/run seed base   (default 11)
//!          --epochs N       epochs per increment       (preset default)
//!          --memory N       total memory budget        (preset default)
//!          --threads N      compute threads (default: all cores; results
//!                           are bit-identical at any value — DESIGN.md §9)
//!          --isa LEVEL      SIMD level: auto | scalar | avx2 | avx512
//!                           (default auto; bit-identical at any level —
//!                           DESIGN.md §15)
//!          --save PATH      write the final model checkpoint
//!          --checkpoint DIR snapshot run state after each increment
//!          --resume         continue from the latest valid snapshot
//!          --serve-snapshot DIR  export a serve snapshot after each task
//!          --quantize       export int8 v2 serve snapshots (with
//!                           --serve-snapshot; prints the accuracy gate)
//!          --obs MODE       observability sink: off | ring | jsonl
//!          --obs-path PATH  metrics file for --obs jsonl (metrics.jsonl)
//!
//! serve:   <SNAPSHOT> is a `.snapshot` file (v1 or v2) or a directory
//!          (the latest valid snapshot in it is served)
//!          --port N            TCP port (default 7878; 0 = ephemeral)
//!          --cache N           embedding-cache capacity (default 1024)
//!          --serve-batch N     micro-batch flush size
//!          --serve-window-us N micro-batch coalescing window
//!          --quantized         serve on the int8 backend (quantizes v1
//!                              snapshots in-process; EDSR_SERVE_QUANT)
//!
//! query:   edsr query ADDR embed --input 0.1,0.2,...  [--task N]
//!          edsr query ADDR knn   --input ...  [--k N] [--metric M]
//!          edsr query ADDR stats
//!          edsr query ADDR shutdown
//!          --quantized   assert the server answers on the int8 backend
//!                        (one stats round-trip) before sending the op
//!
//! ps:      same run flags as `run` (--seed/--epochs/--memory/--save) plus
//!          --dist-addr A                 bind address (default 127.0.0.1:0)
//!          --dist-workers N              workers to wait for (default 1)
//!          --dist-push-timeout-ms N      work-item reissue timeout
//!          --dist-sparse-threshold F     gradient codec density cutoff
//!          The run starts once all N workers have registered and is
//!          bit-identical to `edsr run` with the same flags (DESIGN.md §14).
//!
//! worker:  edsr worker ADDR   (or --dist-addr / EDSR_DIST_ADDR)
//! ```
//!
//! `--threads`, `--isa`, `--checkpoint`, `--resume`, `--obs`,
//! `--obs-path`, `--serve-batch` and `--serve-window-us` also read
//! `EDSR_THREADS` / `EDSR_ISA` / `EDSR_CHECKPOINT` / `EDSR_RESUME` /
//! `EDSR_OBS` / `EDSR_OBS_PATH` / `EDSR_SERVE_BATCH` /
//! `EDSR_SERVE_WINDOW_US`; the CLI flag wins ([`EnvConfig`] precedence).
//!
//! Every failure (bad flag, divergence after retries, checkpoint
//! corruption) surfaces as a structured error with a non-zero exit, not
//! a panic.

use edsr::cl::{
    latest_valid_serve_snapshot, load_any_serve_snapshot, quantize_serve_snapshot, run_multitask,
    tabular_augmenters, AnyServeSnapshot, Cassle, CheckpointConfig, ContinualModel, Der, Finetune,
    Lump, Method, ModelConfig, RunBuilder, Si, TrainConfig,
};
use edsr::core::{CompEmb, Edsr, EnvConfig, Error, R2r};
use edsr::data::{
    build_scenario, cifar100_sim, cifar10_sim, domainnet_sim, tabular_sequence, test_sim,
    tiny_imagenet_sim, write_scenario, Preset, ShardStream, TabularConfig, SCENARIO_NAMES,
    TABULAR_SPECS,
};
use edsr::dist::{run_worker, serve_ps, DistSpec, PsConfig, WorkerOptions};
use edsr::serve::{
    serve, Client, Engine, RetryPolicy, RotateConfig, ServeError, ServerConfig, WireMetric,
};
use edsr::tensor::rng::seeded;

fn usage() -> ! {
    eprintln!(
        "usage:\n  edsr presets\n  edsr run <preset> <method> [--seed N] [--epochs N] [--memory N] [--threads N] [--isa L] [--save PATH] [--checkpoint DIR] [--resume] [--serve-snapshot DIR] [--quantize] [--obs MODE] [--obs-path PATH]\n  edsr tabular <method> [--seed N] [--epochs N] [--threads N]\n  edsr metrics [PATH]\n  edsr serve <SNAPSHOT-FILE-or-DIR> [--port N] [--cache N] [--serve-batch N] [--serve-window-us N]\n             [--serve-rotate-ms N] [--serve-deadline-ms N] [--serve-queue N]\n             [--serve-read-timeout-ms N] [--serve-stall-ms N] [--quantized] [--chaos-seed N]\n  edsr query <ADDR> embed --input F,F,... [--task N] [--retries N] [--retry-rejections]\n  edsr query <ADDR> knn --input F,F,... [--k N] [--metric euclidean|cosine] [--retries N]\n  edsr query <ADDR> stats | shutdown\n  edsr ps <preset> <method> [--seed N] [--epochs N] [--memory N] [--save PATH]\n          [--dist-addr A] [--dist-workers N] [--dist-push-timeout-ms N] [--dist-sparse-threshold F]\n  edsr worker <ADDR>   (or --dist-addr / EDSR_DIST_ADDR)\n  edsr scenario list [--seed N]\n  edsr scenario write <name> <dir> [--seed N]\n  edsr scenario run <name> <method> [--seed N] [--epochs N] [--stream DIR] [--save PATH]\n\npresets: cifar10 | cifar100 | tiny-imagenet | domainnet | test\nmethods: finetune | si | der | lump | cassle | edsr | compemb | r2r | multitask\nscenarios: class-incremental | blurry | domain-incremental | long-tail\n\n--threads (or EDSR_THREADS) sets the compute thread count; results are\nbit-identical at any value (DESIGN.md \u{a7}9). 1 = pure serial.\n--isa (or EDSR_ISA) pins the SIMD kernel level: auto | scalar | avx2 |\navx512; results are bit-identical at any level (DESIGN.md \u{a7}15).\n--obs jsonl (or EDSR_OBS=jsonl) streams spans and metrics to --obs-path.\n--serve-snapshot (with `run`) exports a model+memory snapshot per task\nthat `edsr serve` loads read-only (DESIGN.md \u{a7}12).\n`edsr ps` + N×`edsr worker` reproduce `edsr run` bit-identically over\nTCP (DESIGN.md \u{a7}14)."
    );
    std::process::exit(2);
}

/// Finds `--flag value` or `--flag=value` (matching `EnvConfig`'s CLI
/// grammar, so neither form is silently ignored).
fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().enumerate().find_map(|(i, a)| {
        if a == flag {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix(flag)
                .and_then(|rest| rest.strip_prefix('='))
                .map(str::to_owned)
        }
    })
}

/// Parses a numeric flag value, turning bad input into a structured
/// error naming the flag instead of a panic.
fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, Error> {
    value
        .parse()
        .map_err(|_| Error::Data(format!("{flag} expects a number, got {value:?}")))
}

fn preset_by_name(name: &str) -> Option<Preset> {
    match name {
        "cifar10" => Some(cifar10_sim()),
        "cifar100" => Some(cifar100_sim()),
        "tiny-imagenet" | "tiny" => Some(tiny_imagenet_sim()),
        "domainnet" => Some(domainnet_sim()),
        "test" => Some(test_sim()),
        _ => None,
    }
}

fn method_by_name(
    name: &str,
    budget: usize,
    replay_batch: usize,
    noise_k: usize,
) -> Option<Box<dyn Method>> {
    Some(match name {
        "finetune" => Box::new(Finetune::new()),
        "si" => Box::new(Si::new(0.1)),
        "der" => Box::new(Der::new(budget, replay_batch, 0.5)),
        "lump" => Box::new(Lump::new(budget)),
        "cassle" => Box::new(Cassle::new()),
        "edsr" => Box::new(Edsr::paper_default(budget, replay_batch, noise_k)),
        "compemb" => Box::new(CompEmb::new(budget, replay_batch)),
        "r2r" => Box::new(R2r::new(budget, replay_batch, 4)),
        _ => return None,
    })
}

fn cmd_presets() {
    println!(
        "{:<15} {:>6} {:>8} {:>11} {:>8} {:>7}",
        "preset", "tasks", "classes", "train/task", "memory", "dim"
    );
    for (name, p) in [
        ("cifar10", cifar10_sim()),
        ("cifar100", cifar100_sim()),
        ("tiny-imagenet", tiny_imagenet_sim()),
        ("domainnet", domainnet_sim()),
        ("test", test_sim()),
    ] {
        println!(
            "{:<15} {:>6} {:>8} {:>11} {:>8} {:>7}",
            name,
            p.num_tasks(),
            p.classes_per_task,
            p.classes_per_task * p.train_per_class,
            p.memory_total,
            p.grid.dim()
        );
    }
}

fn cmd_run(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let (Some(preset_name), Some(method_name)) = (args.first(), args.get(1)) else {
        usage()
    };
    let Some(mut preset) = preset_by_name(preset_name) else {
        eprintln!("unknown preset {preset_name:?}");
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 11,
    };
    if let Some(m) = parse_flag(args, "--memory") {
        preset = preset.with_memory_total(parse_num(&m, "--memory")?);
    }
    let mut cfg = TrainConfig::image();
    if let Some(e) = parse_flag(args, "--epochs") {
        cfg.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let run_id = format!("{}-{}-s{}", preset.name, method_name, seed);
    let checkpoint = env_cfg
        .checkpoint
        .as_ref()
        .map(|dir| CheckpointConfig::new(dir.display().to_string(), run_id.clone()));
    let serve_snapshot =
        parse_flag(args, "--serve-snapshot").map(|dir| CheckpointConfig::new(dir, run_id.clone()));
    let quantize = args.iter().any(|a| a == "--quantize");
    if quantize && serve_snapshot.is_none() {
        return Err(Error::Data(
            "--quantize requires --serve-snapshot DIR (it selects the v2 export format)".into(),
        ));
    }

    let (mut sequence, augmenters) = preset.build_with_augmenters(&mut seeded(seed));
    let mut model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(seed + 1000),
    );
    let mut run_rng = seeded(seed + 2000);

    if method_name == "multitask" {
        let mt = run_multitask(&mut model, &mut sequence, &augmenters, &cfg, &mut run_rng)?;
        println!(
            "Multitask on {}: Acc {:.2}% ({:.1}s)",
            preset.name,
            mt.acc_pct(),
            mt.seconds
        );
    } else {
        let Some(mut method) = method_by_name(
            method_name,
            preset.per_task_budget(),
            cfg.replay_batch,
            preset.noise_neighbors,
        ) else {
            eprintln!("unknown method {method_name:?}");
            usage()
        };
        let mut builder = RunBuilder::new(&cfg);
        if let Some(ckpt) = checkpoint {
            builder = builder.checkpoint(ckpt);
        }
        if let Some(snap_cfg) = serve_snapshot {
            builder = builder.serve_snapshots(snap_cfg);
            if quantize {
                builder = builder.quantize_serve_snapshots();
            }
        }
        if env_cfg.resume {
            // Without --checkpoint this fails fast with InvalidConfig
            // (the silent-no-op behaviour of the old RunOptions is gone).
            builder = builder.resume();
        }
        let result = builder.run(
            method.as_mut(),
            &mut model,
            &mut sequence,
            &augmenters,
            &mut run_rng,
        )?;
        println!(
            "{} on {}: Acc {:.2}%  Fgt {:.2}%  ({:.1}s, {} divergence recoveries)",
            result.method,
            preset.name,
            result.final_acc_pct(),
            result.final_fgt_pct(),
            result.total_seconds(),
            result.recoveries
        );
        for i in 0..result.matrix.num_increments() {
            println!(
                "  after task {i:>2}: Acc_i {:5.1}%  Fgt_i {:4.1}%  (new-task {:5.1}%)",
                result.matrix.acc_at(i) * 100.0,
                result.matrix.fgt_at(i) * 100.0,
                result.matrix.get(i, i) * 100.0
            );
        }
    }
    if let Some(path) = parse_flag(args, "--save") {
        model.save(&path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

fn cmd_tabular(args: &[String]) -> Result<(), Error> {
    let Some(method_name) = args.first() else {
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 1,
    };
    let mut cfg = TrainConfig::tabular();
    if let Some(e) = parse_flag(args, "--epochs") {
        cfg.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let mut sequence = tabular_sequence(&TabularConfig::default(), &mut seeded(seed));
    let augmenters = tabular_augmenters(&mut sequence, 0.4)?;
    let input_dims: Vec<usize> = TABULAR_SPECS.iter().map(|s| s.input_dim).collect();
    let mut model =
        ContinualModel::new(&ModelConfig::tabular(input_dims), &mut seeded(seed + 1000));
    let mut run_rng = seeded(seed + 2000);

    if method_name == "multitask" {
        let mt = run_multitask(&mut model, &mut sequence, &augmenters, &cfg, &mut run_rng)?;
        println!(
            "Multitask on tabular-sim: Acc {:.2}% ({:.1}s)",
            mt.acc_pct(),
            mt.seconds
        );
        return Ok(());
    }
    let budget = (sequence
        .tasks
        .iter()
        .map(|t| t.train.len())
        .max()
        .unwrap_or(100)
        / 100)
        .max(2);
    let Some(mut method) = method_by_name(method_name, budget, cfg.replay_batch, 10) else {
        eprintln!("unknown method {method_name:?}");
        usage()
    };
    let result = RunBuilder::new(&cfg).run(
        method.as_mut(),
        &mut model,
        &mut sequence,
        &augmenters,
        &mut run_rng,
    )?;
    println!(
        "{} on tabular-sim: Acc {:.2}%  Fgt {:.2}%  ({:.1}s)",
        result.method,
        result.final_acc_pct(),
        result.final_fgt_pct(),
        result.total_seconds()
    );
    Ok(())
}

/// `edsr metrics [PATH]` — parse a JSONL metrics file and print a
/// five-number summary per metric name (span enters excluded).
fn cmd_metrics(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let path = args
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| env_cfg.obs_path.clone());
    let text = std::fs::read_to_string(&path)?;
    let events = edsr::obs::parse_jsonl(&text)
        .map_err(|e| Error::Data(format!("{}: {e}", path.display())))?;
    let mut names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
    names.sort_unstable();
    names.dedup();
    println!(
        "{:<24} {:>8} {:>14} {:>14} {:>14}",
        "name", "count", "min", "mean", "max"
    );
    for name in names {
        if let Some(s) = edsr::obs::summarize(&events, name) {
            println!(
                "{:<24} {:>8} {:>14.4} {:>14.4} {:>14.4}",
                name, s.count, s.min, s.mean, s.max
            );
        }
    }
    println!("{} events in {}", events.len(), path.display());
    Ok(())
}

fn serve_err(e: ServeError) -> Error {
    Error::Data(e.to_string())
}

/// `edsr serve <SNAPSHOT>` — load a serve snapshot (a file, or the latest
/// valid one in a directory) and answer embed/kNN requests over TCP
/// until a wire shutdown arrives.
fn cmd_serve(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let Some(target) = args.first() else { usage() };
    let path = std::path::Path::new(target);
    let (snap_path, snapshot) = if path.is_dir() {
        // An unreadable candidate (not merely corrupt) aborts with the
        // offending file's path rather than being silently skipped.
        latest_valid_serve_snapshot(path)
            .map_err(|e| Error::Data(e.to_string()))?
            .ok_or_else(|| Error::Data(format!("no valid serve snapshot in {}", path.display())))?
    } else {
        (path.to_path_buf(), load_any_serve_snapshot(path)?)
    };
    // --quantized / EDSR_SERVE_QUANT: serve on the int8 backend. A v1
    // snapshot is quantized in-process; v2 snapshots are already int8.
    let snapshot = match snapshot {
        AnyServeSnapshot::V1(snap) if env_cfg.serve_quant => {
            AnyServeSnapshot::V2(Box::new(quantize_serve_snapshot(&snap)?))
        }
        other => other,
    };
    let port: u16 = match parse_flag(args, "--port") {
        Some(v) => parse_num(&v, "--port")?,
        None => 7878,
    };
    let cache: usize = match parse_flag(args, "--cache") {
        Some(v) => parse_num(&v, "--cache")?,
        None => 1024,
    };
    let mut cfg = ServerConfig::default();
    if let Some(n) = env_cfg.serve_batch {
        cfg.max_batch = n;
    }
    if let Some(us) = env_cfg.serve_window_us {
        cfg.window = std::time::Duration::from_micros(us);
    }
    if let Some(ms) = env_cfg.serve_deadline_ms {
        // 0 explicitly disables the deadline (the default).
        cfg.deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    if let Some(n) = env_cfg.serve_queue {
        cfg.queue_cap = n;
    }
    if let Some(ms) = env_cfg.serve_read_timeout_ms {
        cfg.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = env_cfg.serve_stall_ms {
        cfg.stall_cap = std::time::Duration::from_millis(ms);
    }
    if let Some(v) = parse_flag(args, "--chaos-seed") {
        cfg.fault_seed = Some(parse_num(&v, "--chaos-seed")?);
    }
    // Serving a directory enables live rotation: the watcher polls for
    // newer valid snapshots (e.g. from a concurrent `edsr run
    // --serve-snapshot`) and swaps them in between micro-batch flushes.
    if path.is_dir() {
        let poll_ms = env_cfg.serve_rotate_ms.unwrap_or(1000);
        cfg.rotate = Some(RotateConfig {
            dir: path.to_path_buf(),
            poll: std::time::Duration::from_millis(poll_ms),
            cache_capacity: cache,
            current: Some(snap_path.clone()),
            quantize: env_cfg.serve_quant,
        });
    }

    let engine = Engine::from_any(snapshot, cache)?;
    println!(
        "serving {} ({} tasks, repr_dim {}, {} memory rows, {} backend) from {}",
        engine.benchmark(),
        engine.completed_tasks(),
        engine.repr_dim(),
        engine.memory_rows(),
        if engine.quantized() { "int8" } else { "f32" },
        snap_path.display()
    );
    let (max_batch, window) = (cfg.max_batch, cfg.window);
    let handle = serve(engine, ("127.0.0.1", port), cfg).map_err(serve_err)?;
    println!(
        "listening on {} (batch {max_batch}, window {window:?}) — stop with: edsr query {} shutdown",
        handle.addr(),
        handle.addr()
    );
    let report = handle.join().map_err(serve_err)?;
    println!(
        "drained: {} requests, {} batches (max {}), cache {}/{} hit/miss, {} rotations, rejected {}/{} deadline/overload",
        report.requests,
        report.batches,
        report.max_batch,
        report.cache_hits,
        report.cache_misses,
        report.rotations,
        report.rejected_deadline,
        report.rejected_overload
    );
    Ok(())
}

/// Parses `--input 0.1,0.2,...` (commas and/or whitespace).
fn parse_input(args: &[String]) -> Result<Vec<f32>, Error> {
    let Some(raw) = parse_flag(args, "--input") else {
        return Err(Error::Data("--input F,F,... is required".into()));
    };
    raw.split([',', ' '])
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse::<f32>()
                .map_err(|_| Error::Data(format!("--input: bad float {s:?}")))
        })
        .collect()
}

/// `edsr query <ADDR> <op>` — one-shot client for a running server.
fn cmd_query(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let (Some(addr), Some(op)) = (args.first(), args.get(1)) else {
        usage()
    };
    let mut policy = RetryPolicy::none();
    if let Some(v) = parse_flag(args, "--retries") {
        policy = RetryPolicy::retries(parse_num(&v, "--retries")?);
    }
    if args.iter().any(|a| a == "--retry-rejections") {
        // Under chaos, a corrupted request frame surfaces as a server-side
        // rejection; idempotent ops may simply resend it.
        policy.retry_rejections = true;
    }
    let mut client = Client::connect_with(addr.as_str(), policy).map_err(serve_err)?;
    if env_cfg.serve_quant {
        // --quantized: the caller demands int8 answers — assert the
        // server's backend before sending the real request.
        let s = client.stats().map_err(serve_err)?;
        if s.quantized != 1 {
            return Err(Error::Data(format!(
                "--quantized: server at {addr} answers on the f32 backend, not int8 \
                 (restart it with `edsr serve --quantized` or a v2 snapshot)"
            )));
        }
    }
    match op.as_str() {
        "embed" => {
            let input = parse_input(args)?;
            let task: u32 = match parse_flag(args, "--task") {
                Some(v) => parse_num(&v, "--task")?,
                None => 0,
            };
            let emb = client.embed(task, &input).map_err(serve_err)?;
            let rendered: Vec<String> = emb.iter().map(|v| format!("{v:.6}")).collect();
            println!("[{}]", rendered.join(", "));
        }
        "knn" => {
            let query = parse_input(args)?;
            let k: u32 = match parse_flag(args, "--k") {
                Some(v) => parse_num(&v, "--k")?,
                None => 5,
            };
            let metric = match parse_flag(args, "--metric").as_deref() {
                None | Some("euclidean") => WireMetric::Euclidean,
                Some("cosine") => WireMetric::Cosine,
                Some(m) => {
                    return Err(Error::Data(format!(
                        "--metric: expected euclidean | cosine, got {m:?}"
                    )))
                }
            };
            let neighbors = client.knn(&query, k, metric).map_err(serve_err)?;
            for n in neighbors {
                println!("memory[{}]  score {:.6}", n.index, n.score);
            }
        }
        "stats" => {
            let s = client.stats().map_err(serve_err)?;
            println!(
                "requests {}  batches {}  batched {}  max_batch {}\ncache hits {}  misses {}  memory rows {}  repr_dim {}\nrotations {}  rejected deadline {}  rejected overload {}  quantized {}",
                s.requests,
                s.batches,
                s.batched_requests,
                s.max_batch,
                s.cache_hits,
                s.cache_misses,
                s.memory_rows,
                s.repr_dim,
                s.rotations,
                s.rejected_deadline,
                s.rejected_overload,
                s.quantized
            );
        }
        "shutdown" => {
            client.shutdown().map_err(serve_err)?;
            println!("server acknowledged shutdown");
        }
        _ => usage(),
    }
    Ok(())
}

fn dist_err(e: edsr::dist::DistError) -> Error {
    Error::Dist(e.to_string())
}

/// `edsr ps <preset> <method>` — host a distributed run: bind the
/// parameter server, wait for `--dist-workers` workers, sequence the run,
/// and print the same per-task report as `edsr run` (bit-identical
/// results — DESIGN.md §14).
fn cmd_ps(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let (Some(preset_name), Some(method_name)) = (args.first(), args.get(1)) else {
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 11,
    };
    let mut train = TrainConfig::image();
    if let Some(e) = parse_flag(args, "--epochs") {
        train.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let memory = match parse_flag(args, "--memory") {
        Some(m) => Some(parse_num(&m, "--memory")?),
        None => None,
    };
    let spec = DistSpec::new(preset_name, method_name, seed, &train, memory);
    let mut cfg = PsConfig::default();
    if let Some(a) = &env_cfg.dist_addr {
        cfg.addr = a.clone();
    }
    if let Some(w) = env_cfg.dist_workers {
        cfg.workers = w;
    }
    if let Some(t) = env_cfg.dist_push_timeout_ms {
        cfg.push_timeout_ms = t;
    }
    if let Some(s) = env_cfg.dist_sparse_threshold {
        cfg.sparse_threshold = s;
    }
    let save = parse_flag(args, "--save").map(std::path::PathBuf::from);
    cfg.save = save.clone();

    let workers = cfg.workers;
    let handle = serve_ps(spec, cfg).map_err(dist_err)?;
    println!(
        "listening on {} ({workers} workers expected) — join with: edsr worker {}",
        handle.addr(),
        handle.addr()
    );
    let report = handle.wait().map_err(dist_err)?;
    println!(
        "{} on {} ({} workers): Acc {:.2}%  Fgt {:.2}%  ({:.1}s)",
        method_name,
        preset_name,
        workers,
        report.matrix.final_acc() * 100.0,
        report.matrix.final_fgt() * 100.0,
        report.task_seconds.iter().sum::<f64>()
    );
    for i in 0..report.matrix.num_increments() {
        println!(
            "  after task {i:>2}: Acc_i {:5.1}%  Fgt_i {:4.1}%  (new-task {:5.1}%)",
            report.matrix.acc_at(i) * 100.0,
            report.matrix.fgt_at(i) * 100.0,
            report.matrix.get(i, i) * 100.0
        );
    }
    let s = report.stats;
    println!(
        "drained: {} steps (v{}), {} barriers, {} eval cells, {} reissues, {} reconnects, {}/{} pull/push bytes",
        s.steps,
        report.final_version,
        s.barriers,
        s.eval_cells,
        s.reissues,
        report.reconnects,
        s.pull_bytes,
        s.push_bytes
    );
    if let Some(path) = save {
        println!("checkpoint written to {}", path.display());
    }
    Ok(())
}

/// `edsr worker <ADDR>` — join a distributed run hosted by `edsr ps` and
/// keep pulling work until the server drains us.
fn cmd_worker(args: &[String], env_cfg: &EnvConfig) -> Result<(), Error> {
    let addr = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| env_cfg.dist_addr.clone())
        .ok_or_else(|| {
            Error::Dist(
                "worker needs an address: edsr worker ADDR (or --dist-addr / EDSR_DIST_ADDR)"
                    .into(),
            )
        })?;
    let report = run_worker(&addr, WorkerOptions::default()).map_err(dist_err)?;
    println!(
        "worker {} drained: {} steps, {} eval cells, {} boundaries, {} reconnects (final v{})",
        report.worker_id,
        report.steps,
        report.eval_cells,
        report.boundaries,
        report.reconnects,
        report.final_version
    );
    Ok(())
}

/// `edsr scenario list | write <name> <dir> | run <name> <method> …`.
///
/// `write` materializes a scenario-zoo stream as an `EDSRDS01` shard
/// directory; `run` trains on a scenario either in RAM (default) or
/// out-of-core from a shard directory (`--stream DIR`). Both paths are
/// bit-identical by construction (DESIGN.md §16) — `--save` makes that
/// checkable with a plain `cmp` of the two checkpoints.
fn cmd_scenario(args: &[String]) -> Result<(), Error> {
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 11,
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in SCENARIO_NAMES {
                let data = build_scenario(name, seed).expect("listed scenario builds");
                println!(
                    "{:<20} {:>2} increments, dim {}",
                    name,
                    data.seq.len(),
                    data.seq.tasks[0].train.dim()
                );
            }
            Ok(())
        }
        Some("write") => {
            let (Some(name), Some(dir)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let n = write_scenario(name, seed, dir)?;
            println!("wrote {n} shards to {dir} (scenario {name}, seed {seed})");
            Ok(())
        }
        Some("run") => {
            let (Some(name), Some(method_name)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let data = build_scenario(name, seed)
                .ok_or_else(|| Error::Data(format!("unknown scenario {name:?}")))?;
            let mut cfg = TrainConfig::image();
            cfg.epochs_per_task = match parse_flag(args, "--epochs") {
                Some(e) => parse_num(&e, "--epochs")?,
                None => 8,
            };
            let Some(mut method) = method_by_name(
                method_name,
                data.preset.per_task_budget(),
                cfg.replay_batch,
                data.preset.noise_neighbors,
            ) else {
                eprintln!("unknown method {method_name:?}");
                usage()
            };
            let mut model = ContinualModel::new(
                &ModelConfig::image(data.preset.grid.dim()),
                &mut seeded(seed + 1000),
            );
            let mut run_rng = seeded(seed + 2000);
            // The augmenters come from the in-RAM generator either way:
            // they are part of the scenario definition (deterministic in
            // the seed), not of the storage backend.
            let result = match parse_flag(args, "--stream") {
                Some(dir) => {
                    let mut stream = ShardStream::open(&dir).map_err(edsr::cl::TrainError::from)?;
                    let r = RunBuilder::new(&cfg).run(
                        method.as_mut(),
                        &mut model,
                        &mut stream,
                        &data.augmenters,
                        &mut run_rng,
                    )?;
                    println!(
                        "streamed from {dir}: resident peak {}, {} prefetch hits, {} sync loads",
                        stream.resident_peak(),
                        stream.prefetch_hits(),
                        stream.sync_loads()
                    );
                    r
                }
                None => RunBuilder::new(&cfg).run(
                    method.as_mut(),
                    &mut model,
                    &mut &data.seq,
                    &data.augmenters,
                    &mut run_rng,
                )?,
            };
            println!(
                "{} on {}: Acc {:.2}%  Fgt {:.2}%  ({:.1}s)",
                result.method,
                name,
                result.final_acc_pct(),
                result.final_fgt_pct(),
                result.total_seconds(),
            );
            if let Some(path) = parse_flag(args, "--save") {
                model.save(&path)?;
                println!("checkpoint written to {path}");
            }
            Ok(())
        }
        _ => usage(),
    }
}

fn main() {
    // One reader for every knob: CLI > env > default (DESIGN.md §11).
    let env_cfg = match EnvConfig::from_process() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = env_cfg.apply() {
        eprintln!("error: could not install metrics sink: {e}");
        std::process::exit(1);
    }
    let args = &env_cfg.rest;
    let result = match args.first().map(String::as_str) {
        Some("presets") => {
            cmd_presets();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..], &env_cfg),
        Some("tabular") => cmd_tabular(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..], &env_cfg),
        Some("serve") => cmd_serve(&args[1..], &env_cfg),
        Some("query") => cmd_query(&args[1..], &env_cfg),
        Some("ps") => cmd_ps(&args[1..], &env_cfg),
        Some("worker") => cmd_worker(&args[1..], &env_cfg),
        Some("scenario") => cmd_scenario(&args[1..]),
        _ => usage(),
    };
    // Pool occupancy is cumulative over the whole run; emit it last so
    // the JSONL tail carries the final busy-time split, then flush.
    edsr::par::emit_pool_metrics();
    edsr::obs::flush();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
