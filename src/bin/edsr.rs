//! `edsr` — command-line front end for the reproduction.
//!
//! ```text
//! edsr presets                       list the built-in benchmarks
//! edsr run <preset> <method> [opts]  run one continual-learning job
//! edsr tabular <method> [opts]       run the tabular stream (§IV-E)
//!
//! methods: finetune | si | der | lump | cassle | edsr | multitask
//! options: --seed N         data/model/run seed base   (default 11)
//!          --epochs N       epochs per increment       (preset default)
//!          --memory N       total memory budget        (preset default)
//!          --threads N      compute threads (default: all cores; results
//!                           are bit-identical at any value — DESIGN.md §9)
//!          --save PATH      write the final model checkpoint
//!          --checkpoint DIR snapshot run state after each increment
//!          --resume         continue from the latest valid snapshot
//! ```
//!
//! Every failure (bad flag, divergence after retries, checkpoint
//! corruption) surfaces as a structured error with a non-zero exit, not
//! a panic.

use edsr::cl::{
    run_multitask, run_sequence_with, tabular_augmenters, Cassle, CheckpointConfig, ContinualModel,
    Der, Finetune, Lump, Method, ModelConfig, RunOptions, Si, TrainConfig,
};
use edsr::core::{Edsr, Error};
use edsr::data::{
    cifar100_sim, cifar10_sim, domainnet_sim, tabular_sequence, test_sim, tiny_imagenet_sim,
    Preset, TabularConfig, TABULAR_SPECS,
};
use edsr::tensor::rng::seeded;

fn usage() -> ! {
    eprintln!(
        "usage:\n  edsr presets\n  edsr run <preset> <method> [--seed N] [--epochs N] [--memory N] [--threads N] [--save PATH] [--checkpoint DIR] [--resume]\n  edsr tabular <method> [--seed N] [--epochs N] [--threads N]\n\npresets: cifar10 | cifar100 | tiny-imagenet | domainnet | test\nmethods: finetune | si | der | lump | cassle | edsr | multitask\n\n--threads (or EDSR_THREADS) sets the compute thread count; results are\nbit-identical at any value (DESIGN.md \u{a7}9). 1 = pure serial."
    );
    std::process::exit(2);
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses a numeric flag value, turning bad input into a structured
/// error naming the flag instead of a panic.
fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, Error> {
    value
        .parse()
        .map_err(|_| Error::Data(format!("{flag} expects a number, got {value:?}")))
}

fn preset_by_name(name: &str) -> Option<Preset> {
    match name {
        "cifar10" => Some(cifar10_sim()),
        "cifar100" => Some(cifar100_sim()),
        "tiny-imagenet" | "tiny" => Some(tiny_imagenet_sim()),
        "domainnet" => Some(domainnet_sim()),
        "test" => Some(test_sim()),
        _ => None,
    }
}

fn method_by_name(
    name: &str,
    budget: usize,
    replay_batch: usize,
    noise_k: usize,
) -> Option<Box<dyn Method>> {
    Some(match name {
        "finetune" => Box::new(Finetune::new()),
        "si" => Box::new(Si::new(0.1)),
        "der" => Box::new(Der::new(budget, replay_batch, 0.5)),
        "lump" => Box::new(Lump::new(budget)),
        "cassle" => Box::new(Cassle::new()),
        "edsr" => Box::new(Edsr::paper_default(budget, replay_batch, noise_k)),
        _ => return None,
    })
}

fn cmd_presets() {
    println!(
        "{:<15} {:>6} {:>8} {:>11} {:>8} {:>7}",
        "preset", "tasks", "classes", "train/task", "memory", "dim"
    );
    for (name, p) in [
        ("cifar10", cifar10_sim()),
        ("cifar100", cifar100_sim()),
        ("tiny-imagenet", tiny_imagenet_sim()),
        ("domainnet", domainnet_sim()),
        ("test", test_sim()),
    ] {
        println!(
            "{:<15} {:>6} {:>8} {:>11} {:>8} {:>7}",
            name,
            p.num_tasks(),
            p.classes_per_task,
            p.classes_per_task * p.train_per_class,
            p.memory_total,
            p.grid.dim()
        );
    }
}

fn cmd_run(args: &[String]) -> Result<(), Error> {
    let (Some(preset_name), Some(method_name)) = (args.first(), args.get(1)) else {
        usage()
    };
    let Some(mut preset) = preset_by_name(preset_name) else {
        eprintln!("unknown preset {preset_name:?}");
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 11,
    };
    if let Some(m) = parse_flag(args, "--memory") {
        preset = preset.with_memory_total(parse_num(&m, "--memory")?);
    }
    let mut cfg = TrainConfig::image();
    if let Some(e) = parse_flag(args, "--epochs") {
        cfg.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let mut opts = RunOptions::new();
    if let Some(dir) = parse_flag(args, "--checkpoint") {
        let run_id = format!("{}-{}-s{}", preset.name, method_name, seed);
        opts = opts.with_checkpoint(CheckpointConfig::new(dir, run_id));
    }
    if has_flag(args, "--resume") {
        if opts.checkpoint.is_none() {
            return Err(Error::Data("--resume requires --checkpoint DIR".into()));
        }
        opts = opts.with_resume();
    }

    let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(seed));
    let mut model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(seed + 1000),
    );
    let mut run_rng = seeded(seed + 2000);

    if method_name == "multitask" {
        let mt = run_multitask(&mut model, &sequence, &augmenters, &cfg, &mut run_rng)?;
        println!(
            "Multitask on {}: Acc {:.2}% ({:.1}s)",
            preset.name,
            mt.acc_pct(),
            mt.seconds
        );
    } else {
        let Some(mut method) = method_by_name(
            method_name,
            preset.per_task_budget(),
            cfg.replay_batch,
            preset.noise_neighbors,
        ) else {
            eprintln!("unknown method {method_name:?}");
            usage()
        };
        let result = run_sequence_with(
            method.as_mut(),
            &mut model,
            &sequence,
            &augmenters,
            &cfg,
            &mut run_rng,
            &opts,
        )?;
        println!(
            "{} on {}: Acc {:.2}%  Fgt {:.2}%  ({:.1}s, {} divergence recoveries)",
            result.method,
            preset.name,
            result.final_acc_pct(),
            result.final_fgt_pct(),
            result.total_seconds(),
            result.recoveries
        );
        for i in 0..result.matrix.num_increments() {
            println!(
                "  after task {i:>2}: Acc_i {:5.1}%  Fgt_i {:4.1}%  (new-task {:5.1}%)",
                result.matrix.acc_at(i) * 100.0,
                result.matrix.fgt_at(i) * 100.0,
                result.matrix.get(i, i) * 100.0
            );
        }
    }
    if let Some(path) = parse_flag(args, "--save") {
        model.save(&path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

fn cmd_tabular(args: &[String]) -> Result<(), Error> {
    let Some(method_name) = args.first() else {
        usage()
    };
    let seed: u64 = match parse_flag(args, "--seed") {
        Some(v) => parse_num(&v, "--seed")?,
        None => 1,
    };
    let mut cfg = TrainConfig::tabular();
    if let Some(e) = parse_flag(args, "--epochs") {
        cfg.epochs_per_task = parse_num(&e, "--epochs")?;
    }
    let sequence = tabular_sequence(&TabularConfig::default(), &mut seeded(seed));
    let augmenters = tabular_augmenters(&sequence, 0.4);
    let input_dims: Vec<usize> = TABULAR_SPECS.iter().map(|s| s.input_dim).collect();
    let mut model =
        ContinualModel::new(&ModelConfig::tabular(input_dims), &mut seeded(seed + 1000));
    let mut run_rng = seeded(seed + 2000);

    if method_name == "multitask" {
        let mt = run_multitask(&mut model, &sequence, &augmenters, &cfg, &mut run_rng)?;
        println!(
            "Multitask on tabular-sim: Acc {:.2}% ({:.1}s)",
            mt.acc_pct(),
            mt.seconds
        );
        return Ok(());
    }
    let budget = (sequence
        .tasks
        .iter()
        .map(|t| t.train.len())
        .max()
        .unwrap_or(100)
        / 100)
        .max(2);
    let Some(mut method) = method_by_name(method_name, budget, cfg.replay_batch, 10) else {
        eprintln!("unknown method {method_name:?}");
        usage()
    };
    let result = run_sequence_with(
        method.as_mut(),
        &mut model,
        &sequence,
        &augmenters,
        &cfg,
        &mut run_rng,
        &RunOptions::new(),
    )?;
    println!(
        "{} on tabular-sim: Acc {:.2}%  Fgt {:.2}%  ({:.1}s)",
        result.method,
        result.final_acc_pct(),
        result.final_fgt_pct(),
        result.total_seconds()
    );
    Ok(())
}

/// Applies `--threads N` before any parallel work runs (the pool latches
/// its size on first use).
fn apply_threads_flag(args: &[String]) -> Result<(), Error> {
    if let Some(v) = parse_flag(args, "--threads") {
        let n: usize = parse_num(&v, "--threads")?;
        if n == 0 {
            return Err(Error::Data("--threads expects a value >= 1".into()));
        }
        edsr::par::set_threads(n);
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = apply_threads_flag(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    let result = match args.first().map(String::as_str) {
        Some("presets") => {
            cmd_presets();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("tabular") => cmd_tabular(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
