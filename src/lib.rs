//! # edsr
//!
//! Umbrella crate for the Rust reproduction of **"Effective Data Selection
//! and Replay for Unsupervised Continual Learning"** (ICDE 2024).
//!
//! Re-exports every subsystem so examples and downstream users can depend
//! on a single crate. See `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.

pub use edsr_cl as cl;
pub use edsr_core as core;
pub use edsr_data as data;
pub use edsr_dist as dist;
pub use edsr_linalg as linalg;
pub use edsr_nn as nn;
pub use edsr_obs as obs;
pub use edsr_par as par;
pub use edsr_quant as quant;
pub use edsr_serve as serve;
pub use edsr_ssl as ssl;
pub use edsr_tensor as tensor;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use edsr_tensor::{Matrix, Tape, Var};
}
