//! Serving a trained model (DESIGN.md §12), end to end in one process:
//!
//! 1. **Train** a short EDSR run with per-increment serve snapshots.
//! 2. **Load** the latest snapshot into an inference [`Engine`].
//! 3. **Serve** it over TCP with dynamic micro-batching, query it with
//!    concurrent clients, and confirm every served embedding is
//!    bit-identical to a direct in-process eval-mode forward.
//! 4. **Retrieve**: ask the server for the nearest replay-memory
//!    representations to a fresh embedding.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use edsr::cl::{
    latest_valid_serve_snapshot, CheckpointConfig, ContinualModel, ModelConfig, RunBuilder,
    TrainConfig,
};
use edsr::core::{Edsr, Error};
use edsr::data::test_sim;
use edsr::serve::{serve, Client, Engine, ServerConfig, WireMetric};
use edsr::tensor::rng::seeded;
use edsr::tensor::Matrix;

fn main() -> Result<(), Error> {
    // 1. Train with serve snapshots exported after every increment.
    let preset = test_sim();
    let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(61));
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 8;
    let mut model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(62));
    let mut edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);

    let dir = std::env::temp_dir().join("edsr-serving-example");
    let result = RunBuilder::new(&cfg)
        .serve_snapshots(CheckpointConfig::new(
            dir.display().to_string(),
            "serving-example",
        ))
        .run(
            &mut edsr,
            &mut model,
            &mut &sequence,
            &augmenters,
            &mut seeded(63),
        )?;
    println!(
        "trained: Acc {:.1}%  Fgt {:.1}%",
        result.final_acc_pct(),
        result.final_fgt_pct()
    );

    // 2. Load the newest snapshot read-only and start the server on an
    //    ephemeral port.
    let (snap_path, snapshot) = latest_valid_serve_snapshot(&dir)
        .map_err(|e| Error::Data(e.to_string()))?
        .ok_or_else(|| Error::Data("no serve snapshot written".into()))?;
    println!("serving {}", snap_path.display());
    let engine = Engine::from_any(snapshot, 256)?;
    let repr_dim = engine.repr_dim();
    let handle = serve(engine, ("127.0.0.1", 0), ServerConfig::default())
        .map_err(|e| Error::Data(e.to_string()))?;
    let addr = handle.addr();

    // 3. Concurrent clients embed the same test rows the model was
    //    evaluated on; the batcher coalesces them into shared forwards.
    let probe = sequence.tasks[0].test.inputs.clone();
    let workers: Vec<_> = (0..3)
        .map(|c| {
            let rows = probe.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut embeddings = Vec::new();
                for i in (c..rows.rows()).step_by(3) {
                    embeddings.push((i, client.embed(0, rows.row(i)).expect("embed")));
                }
                embeddings
            })
        })
        .collect();
    let mut served: Vec<(usize, Vec<f32>)> = Vec::new();
    for w in workers {
        served.extend(w.join().expect("client"));
    }
    let direct = model.represent_eval(&probe, 0);
    assert!(served.iter().all(|(i, emb)| {
        emb.iter()
            .map(|v| v.to_bits())
            .eq(direct.row(*i).iter().map(|v| v.to_bits()))
    }));
    println!(
        "{} served embeddings, all bit-identical to the in-process forward",
        served.len()
    );

    // 4. Retrieval: nearest replay-memory representations to a fresh
    //    embedding, straight off the snapshot's memory.
    let mut client = Client::connect(addr).map_err(|e| Error::Data(e.to_string()))?;
    let fresh = Matrix::randn(1, preset.grid.dim(), 1.0, &mut seeded(64));
    let emb = client
        .embed(0, fresh.row(0))
        .map_err(|e| Error::Data(e.to_string()))?;
    assert_eq!(emb.len(), repr_dim);
    let neighbors = client
        .knn(&emb, 3, WireMetric::Cosine)
        .map_err(|e| Error::Data(e.to_string()))?;
    for n in &neighbors {
        println!(
            "  neighbor memory[{}]  cosine score {:.4}",
            n.index, n.score
        );
    }

    let stats = client.stats().map_err(|e| Error::Data(e.to_string()))?;
    println!(
        "server stats: {} requests, {} batches (max {}), cache {}/{} hit/miss",
        stats.requests, stats.batches, stats.max_batch, stats.cache_hits, stats.cache_misses
    );
    client.shutdown().map_err(|e| Error::Data(e.to_string()))?;
    let report = handle.join().map_err(|e| Error::Data(e.to_string()))?;
    println!("drained cleanly after {} requests", report.requests);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
