//! Implementing your own continual-learning method against the `Method`
//! trait — the library's main extension point.
//!
//! The example builds **FeatureAnchor**, a minimal replay method: store a
//! few random samples per increment and, on later increments, pull the
//! current representations of stored samples toward the representations
//! they had when stored (plain MSE anchoring — simpler than EDSR's
//! distillation, no frozen model needed). It then compares FeatureAnchor
//! against Finetune and EDSR on the same stream.
//!
//! ```bash
//! cargo run --release --example custom_method
//! ```

use edsr::cl::{
    apply_step, ContinualModel, MemoryBatch, MemoryBuffer, MemoryItem, Method, ModelConfig,
    RunBuilder, TrainConfig,
};
use edsr::core::{Edsr, Error};
use edsr::data::{test_sim, Augmenter, Dataset};
use edsr::nn::{Optimizer, Workspace};
use edsr::tensor::rng::{sample_indices, seeded};
use edsr::tensor::Matrix;
use rand::rngs::StdRng;

/// Store random samples with their storage-time representations; replay
/// by anchoring current representations to the stored ones with MSE.
struct FeatureAnchor {
    memory: MemoryBuffer,
    per_task_budget: usize,
    replay_batch: usize,
    weight: f32,
}

impl FeatureAnchor {
    fn new(per_task_budget: usize, replay_batch: usize, weight: f32) -> Self {
        Self {
            memory: MemoryBuffer::new(),
            per_task_budget,
            replay_batch,
            weight,
        }
    }
}

impl Method for FeatureAnchor {
    fn name(&self) -> String {
        "FeatureAnchor".into()
    }

    fn train_step(
        &mut self,
        model: &mut ContinualModel,
        opt: &mut dyn Optimizer,
        augs: &[Augmenter],
        batch: &Matrix,
        task_idx: usize,
        ws: &mut Workspace,
        rng: &mut StdRng,
    ) -> f32 {
        let aug = &augs[task_idx.min(augs.len() - 1)];
        // Reclaim last step's tape buffers, then record the usual
        // contrastive term on the new data.
        ws.reset();
        let (_, _, mut loss) =
            model.css_on_batch(&mut ws.tape, &mut ws.binder, aug, batch, task_idx, rng);

        // Anchor stored samples to their storage-time representations.
        for group in self.memory.sample_grouped(self.replay_batch, rng) {
            let MemoryBatch {
                task,
                inputs,
                stored_features,
                ..
            } = group;
            let Some(anchor) = stored_features else {
                continue;
            };
            let tape = &mut ws.tape;
            let z = model.repr_var(tape, &mut ws.binder, &inputs, task);
            let target = tape.leaf(anchor);
            let frozen = tape.detach(target);
            let mse = tape.mse(z, frozen);
            let weighted = tape.scale(mse, self.weight);
            loss = tape.add(loss, weighted);
        }
        apply_step(model, opt, &mut ws.tape, &ws.binder, loss)
    }

    fn end_task(
        &mut self,
        model: &mut ContinualModel,
        task_idx: usize,
        train: &Dataset,
        _aug: &Augmenter,
        rng: &mut StdRng,
    ) {
        let k = self.per_task_budget.min(train.len());
        let chosen = sample_indices(rng, train.len(), k);
        let inputs = train.inputs.select_rows(&chosen);
        let reps = model.represent(&inputs, task_idx);
        self.memory.extend((0..k).map(|r| MemoryItem {
            input: inputs.row(r).to_vec(),
            task: task_idx,
            noise_scale: 0.0,
            stored_features: Some(reps.row(r).to_vec()),
        }));
    }
}

fn main() -> Result<(), Error> {
    let preset = test_sim();
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 20;
    let budget = preset.per_task_budget();

    println!("{:<14} | {:>7} | {:>7}", "method", "Acc %", "Fgt %");
    let methods: Vec<Box<dyn Method>> = vec![
        Box::new(edsr::cl::Finetune::new()),
        Box::new(FeatureAnchor::new(budget, 8, 2.0)),
        Box::new(Edsr::paper_default(budget, 8, preset.noise_neighbors)),
    ];
    for mut method in methods {
        let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(61));
        let mut model =
            ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(62));
        let result = RunBuilder::new(&cfg).run(
            method.as_mut(),
            &mut model,
            &mut &sequence,
            &augmenters,
            &mut seeded(63),
        )?;
        println!(
            "{:<14} | {:>7.2} | {:>7.2}",
            result.method,
            result.final_acc_pct(),
            result.final_fgt_pct()
        );
    }
    Ok(())
}
