//! Method comparison: the paper's Table-III scenario in miniature — run
//! Finetune, SI, DER, LUMP, CaSSLe and EDSR on the same CIFAR-10-style
//! stream and compare accuracy, forgetting, and wall-clock cost.
//!
//! ```bash
//! cargo run --release --example method_comparison
//! ```

use edsr::cl::{
    run_multitask, Cassle, ContinualModel, Der, Finetune, Lump, Method, ModelConfig, RunBuilder,
    Si, TrainConfig,
};
use edsr::core::{Edsr, Error};
use edsr::data::cifar10_sim;
use edsr::tensor::rng::seeded;

fn main() -> Result<(), Error> {
    let preset = cifar10_sim();
    let cfg = TrainConfig::image();
    let budget = preset.per_task_budget();
    let seed = 42u64;

    println!(
        "{} | {} increments x {} classes | memory {} | {} epochs/task\n",
        preset.name,
        preset.num_tasks(),
        preset.classes_per_task,
        preset.memory_total,
        cfg.epochs_per_task
    );
    println!(
        "{:<10} | {:>7} | {:>7} | {:>8}",
        "method", "Acc %", "Fgt %", "time (s)"
    );

    let methods: Vec<Box<dyn Method>> = vec![
        Box::new(Finetune::new()),
        Box::new(Si::new(1.0)),
        Box::new(Der::new(budget, cfg.replay_batch, 0.5)),
        Box::new(Lump::new(budget)),
        Box::new(Cassle::new()),
        Box::new(Edsr::paper_default(
            budget,
            cfg.replay_batch,
            preset.noise_neighbors,
        )),
    ];

    for mut method in methods {
        // Same data, same init, same batch order for every method.
        let mut data_rng = seeded(seed);
        let (sequence, augmenters) = preset.build_with_augmenters(&mut data_rng);
        let mut model = ContinualModel::new(
            &ModelConfig::image(preset.grid.dim()),
            &mut seeded(seed + 1),
        );
        let mut run_rng = seeded(seed + 2);
        // A diverged method is reported on its row; the others still run.
        match RunBuilder::new(&cfg).run(
            method.as_mut(),
            &mut model,
            &mut &sequence,
            &augmenters,
            &mut run_rng,
        ) {
            Ok(result) => println!(
                "{:<10} | {:>7.2} | {:>7.2} | {:>8.1}",
                result.method,
                result.final_acc_pct(),
                result.final_fgt_pct(),
                result.total_seconds()
            ),
            Err(e) => println!("{:<10} | failed: {e}", "-"),
        }
    }

    // The joint-training upper bound.
    let mut data_rng = seeded(seed);
    let (sequence, augmenters) = preset.build_with_augmenters(&mut data_rng);
    let mut model = ContinualModel::new(
        &ModelConfig::image(preset.grid.dim()),
        &mut seeded(seed + 1),
    );
    let mut run_rng = seeded(seed + 2);
    let mt = run_multitask(&mut model, &mut &sequence, &augmenters, &cfg, &mut run_rng)?;
    println!(
        "{:<10} | {:>7.2} | {:>7} | {:>8.1}",
        "Multitask",
        mt.acc_pct(),
        "-",
        mt.seconds
    );
    Ok(())
}
