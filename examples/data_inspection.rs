//! Data inspection: visualize what the synthetic benchmark and its
//! augmentations actually look like, and round-trip a dataset through
//! CSV (the path for bringing your own data).
//!
//! ```bash
//! cargo run --release --example data_inspection
//! ```

use edsr::core::Error;
use edsr::data::{cifar10_sim, read_csv, render_ascii, tabular_sequence, write_csv, TabularConfig};
use edsr::tensor::rng::seeded;

fn main() -> Result<(), Error> {
    // 1. One sample from the CIFAR-10 analogue, original vs two views.
    let preset = cifar10_sim();
    let mut rng = seeded(77);
    let (sequence, augmenters) = preset.build_with_augmenters(&mut rng);
    let sample = sequence.tasks[0].train.inputs.row(0);
    println!(
        "original sample (class {}):",
        sequence.tasks[0].train.labels[0]
    );
    // Show channel 0 only to keep the output compact.
    let art = render_ascii(sample, preset.grid);
    for line in art.lines().take(1 + preset.grid.height) {
        println!("{line}");
    }

    for view_idx in 0..2 {
        let view = augmenters[0].view(sample, &mut rng);
        println!("\naugmented view {view_idx} (same class content, fresh nuisance):");
        let art = render_ascii(&view, preset.grid);
        for line in art.lines().take(1 + preset.grid.height) {
            println!("{line}");
        }
    }

    // 2. CSV round-trip of a tabular increment.
    let seq = tabular_sequence(&TabularConfig::default(), &mut seeded(78));
    let bank = &seq.tasks[0].train;
    let path = std::env::temp_dir().join("edsr-bank.csv");
    write_csv(bank, &path)?;
    let reloaded = read_csv("bank-reloaded", &path)?;
    println!(
        "\nCSV round-trip: wrote {} rows x {} features, reloaded {} rows x {} features",
        bank.len(),
        bank.dim(),
        reloaded.len(),
        reloaded.dim()
    );
    assert_eq!(reloaded.inputs.max_abs_diff(&bank.inputs), 0.0);
    assert_eq!(reloaded.labels, bank.labels);
    println!("contents identical — bring-your-own-data works.");
    let _ = std::fs::remove_file(path);
    Ok(())
}
