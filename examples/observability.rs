//! Observability walkthrough: watch a run from both ends of the API.
//!
//! 1. An [`Observer`] plugged into [`RunBuilder`] gets typed callbacks on
//!    the training thread — here a small progress printer.
//! 2. The process-global `edsr-obs` sink captures the cross-layer metric
//!    stream (per-term losses, selection entropy, kNN noise scales, span
//!    timings) — here into an in-memory ring, summarized at the end.
//!
//! ```bash
//! cargo run --release --example observability
//! ```
//!
//! To stream the same events to a file instead, run any binary with
//! `EDSR_OBS=jsonl EDSR_OBS_PATH=metrics.jsonl`, then inspect it with
//! `cargo run --bin edsr -- metrics metrics.jsonl`.

use edsr::cl::{ContinualModel, ModelConfig, Observer, RunBuilder, StepRecord, TrainConfig};
use edsr::core::{Edsr, Error};
use edsr::data::test_sim;
use edsr::obs::{self, EventKind, RingSink};
use edsr::tensor::rng::seeded;

/// Prints one line per increment phase and keeps a running loss mean.
#[derive(Default)]
struct Progress {
    steps: usize,
    loss_sum: f64,
}

impl Observer for Progress {
    fn on_run_start(&mut self, method: &str, benchmark: &str, tasks: usize, start_task: usize) {
        println!("[obs] {method} on {benchmark}: {tasks} increments (starting at {start_task})");
    }

    fn on_task_start(&mut self, task_idx: usize) {
        self.steps = 0;
        self.loss_sum = 0.0;
        println!("[obs] increment {task_idx}: training...");
    }

    fn on_step(&mut self, record: &StepRecord) {
        self.steps += 1;
        self.loss_sum += f64::from(record.loss);
    }

    fn on_select(&mut self, task_idx: usize, seconds: f64) {
        println!("[obs] increment {task_idx}: memory selection took {seconds:.3}s");
    }

    fn on_eval(&mut self, task_idx: usize, row: &[f32]) {
        let accs: Vec<String> = row.iter().map(|a| format!("{:.1}%", a * 100.0)).collect();
        println!("[obs] increment {task_idx}: eval row [{}]", accs.join(", "));
    }

    fn on_task_end(&mut self, task_idx: usize, seconds: f64, _mean_loss: f32) {
        println!(
            "[obs] increment {task_idx}: done in {seconds:.2}s, mean step loss {:.4} over {} steps",
            self.loss_sum / self.steps.max(1) as f64,
            self.steps
        );
    }
}

fn main() -> Result<(), Error> {
    // Capture the global metric stream into a ring buffer for this demo.
    // (`EnvConfig::apply` does the same from `EDSR_OBS=ring|jsonl`.)
    let ring = RingSink::with_capacity(obs::DEFAULT_RING_CAPACITY);
    obs::install(Box::new(ring.clone()));

    let preset = test_sim();
    let mut data_rng = seeded(7);
    let (sequence, augmenters) = preset.build_with_augmenters(&mut data_rng);
    let mut model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(8));
    let mut edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);

    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 5; // quick demo
    let mut progress = Progress::default();
    let result = RunBuilder::new(&cfg).observer(&mut progress).run(
        &mut edsr,
        &mut model,
        &mut &sequence,
        &augmenters,
        &mut seeded(9),
    )?;
    println!(
        "\nfinal: Acc = {:.1}%  Fgt = {:.1}%",
        result.final_acc_pct(),
        result.final_fgt_pct()
    );

    // Summarize the captured stream: the same numbers a JSONL file would
    // hold, straight from the ring.
    obs::flush();
    let events = ring.events();
    println!("\ncaptured {} events; per-metric summaries:", events.len());
    println!(
        "{:<22} {:>7} {:>12} {:>12} {:>12}",
        "metric", "count", "min", "mean", "max"
    );
    for name in [
        "loss/css",
        "loss/dis",
        "loss/rpl",
        "grad/norm",
        "select/entropy",
        "noise/r",
        "eval/mean_acc",
    ] {
        if let Some(s) = obs::summarize(&events, name) {
            println!(
                "{name:<22} {:>7} {:>12.4} {:>12.4} {:>12.4}",
                s.count, s.min, s.mean, s.max
            );
        }
    }
    let spans = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanExit)
        .count();
    println!("plus {spans} closed spans (run > task > epoch > step timings)");
    obs::uninstall();
    Ok(())
}
