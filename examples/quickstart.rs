//! Quickstart: run EDSR on a small unsupervised continual stream and
//! print the accuracy/forgetting metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use edsr::cl::{ContinualModel, ModelConfig, RunBuilder, TrainConfig};
use edsr::core::Edsr;
use edsr::core::Error;
use edsr::data::test_sim;
use edsr::tensor::rng::seeded;

fn main() -> Result<(), Error> {
    // 1. Build a benchmark: a 3-increment class-incremental stream of
    //    synthetic image-like data, plus its augmentation pipelines.
    let preset = test_sim();
    let mut data_rng = seeded(7);
    let (sequence, augmenters) = preset.build_with_augmenters(&mut data_rng);
    println!(
        "benchmark {}: {} increments x {} classes, {} train samples each",
        sequence.name,
        sequence.len(),
        preset.classes_per_task,
        sequence.tasks[0].train.len()
    );

    // 2. Build the model: encoder f(·) + SSL head + distillation head.
    let model_cfg = ModelConfig::image(preset.grid.dim());
    let mut model = ContinualModel::new(&model_cfg, &mut seeded(8));

    // 3. Build EDSR: entropy-based selection + noise-enhanced replay.
    let mut edsr = Edsr::paper_default(
        preset.per_task_budget(),
        8,                      // memory samples replayed per step
        preset.noise_neighbors, // k for the noise magnitude r(x)
    );

    // 4. Train over the stream; evaluation (kNN over representations)
    //    happens after every increment.
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 20; // quick demo
    let mut run_rng = seeded(9);
    let result = RunBuilder::new(&cfg).run(
        &mut edsr,
        &mut model,
        &mut &sequence,
        &augmenters,
        &mut run_rng,
    )?;

    // 5. Inspect the results.
    for i in 0..result.matrix.num_increments() {
        println!(
            "after increment {i}: Acc_{i} = {:5.1}%  Fgt_{i} = {:4.1}%",
            result.matrix.acc_at(i) * 100.0,
            result.matrix.fgt_at(i) * 100.0,
        );
    }
    println!(
        "\nfinal: Acc = {:.1}%  Fgt = {:.1}%  ({} samples stored, {:.1}s)",
        result.final_acc_pct(),
        result.final_fgt_pct(),
        edsr.memory_len(),
        result.total_seconds(),
    );
    Ok(())
}
