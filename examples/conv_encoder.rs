//! Convolutional encoder: run EDSR with the CNN-style stem (the paper's
//! backbone family) instead of the default MLP stem, and compare.
//!
//! ```bash
//! cargo run --release --example conv_encoder
//! ```

use edsr::cl::{ContinualModel, ModelConfig, RunBuilder, TrainConfig};
use edsr::core::{Edsr, Error};
use edsr::data::test_sim;
use edsr::nn::ConvShape;
use edsr::tensor::rng::seeded;

fn main() -> Result<(), Error> {
    let preset = test_sim();
    let shape = ConvShape {
        channels: preset.grid.channels,
        height: preset.grid.height,
        width: preset.grid.width,
    };
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 15;

    for (label, model_cfg) in [
        ("MLP stem", ModelConfig::image(preset.grid.dim())),
        (
            "Conv stem (3x3, 6 filters)",
            ModelConfig::conv_image(shape, 6),
        ),
    ] {
        let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(91));
        let mut model = ContinualModel::new(&model_cfg, &mut seeded(92));
        let mut edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);
        let result = RunBuilder::new(&cfg).run(
            &mut edsr,
            &mut model,
            &mut &sequence,
            &augmenters,
            &mut seeded(93),
        )?;
        println!(
            "{label:<28} | params {:>6} | Acc {:5.1}%  Fgt {:4.1}%  ({:.1}s)",
            model.params.num_scalars(),
            result.final_acc_pct(),
            result.final_fgt_pct(),
            result.total_seconds()
        );
    }
    Ok(())
}
