//! Selection playground: compare the paper's data-selection strategies on
//! one dataset's representations and measure the lossy-coding-length
//! entropy H(M) of each selected memory (paper §III-A) — the quantity
//! EDSR's selector maximizes.
//!
//! ```bash
//! cargo run --release --example selection_playground
//! ```

use edsr::cl::{ContinualModel, ModelConfig};
use edsr::core::{SelectionContext, SelectionStrategy};
use edsr::data::test_sim;
use edsr::linalg::{coding_length_entropy, trace_surrogate};
use edsr::tensor::rng::seeded;

fn main() {
    // Generate one increment and extract representations with an
    // untrained encoder (selection operates on whatever f̂ produces; for
    // the demo the geometry is what matters).
    let preset = test_sim();
    let mut rng = seeded(21);
    let sequence = preset.build(&mut rng);
    let task = &sequence.tasks[0];
    let model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(22));
    let reps = model.represent(&task.train.inputs, 0);
    println!(
        "selecting {} of {} samples from {}-d representations\n",
        preset.per_task_budget(),
        reps.rows(),
        reps.cols()
    );

    let budget = preset.per_task_budget();
    println!(
        "{:<14} | {:>10} | {:>12} | {:>8}",
        "strategy", "H(M)", "Tr(Cov(M̂))", "classes"
    );
    for strategy in [
        SelectionStrategy::Random,
        SelectionStrategy::Distant,
        SelectionStrategy::KMeans,
        SelectionStrategy::MinVar,
        SelectionStrategy::TraceGreedy,
        SelectionStrategy::HighEntropy,
    ] {
        let ctx = SelectionContext {
            reps: &reps,
            aug_view_std: None,
            cluster_hint: preset.classes_per_task,
        };
        let mut sel_rng = seeded(23);
        let selected = strategy.select(&ctx, budget, &mut sel_rng);
        let memory_reps = reps.select_rows(&selected);
        // How many distinct classes did the unlabeled selection cover?
        let mut classes: Vec<usize> = selected.iter().map(|&i| task.train.labels[i]).collect();
        classes.sort_unstable();
        classes.dedup();
        println!(
            "{:<14} | {:>10.1} | {:>12.1} | {:>5}/{}",
            strategy.name(),
            coding_length_entropy(&memory_reps, 0.5),
            trace_surrogate(&memory_reps),
            classes.len(),
            preset.classes_per_task
        );
    }
    println!("\nHigher H(M) = more informative memory (Eq. 12–15).");
}
