//! Checkpointing at both granularities:
//!
//! 1. **Model checkpoints** — save the weights after a run, damage them,
//!    restore, and confirm the representations roll back exactly.
//! 2. **Run-state snapshots** — train with per-increment snapshots, then
//!    resume from disk with fresh objects and confirm the resumed run
//!    reproduces the uninterrupted accuracy matrix bit-for-bit (weights,
//!    optimizer moments, memory buffer, and RNG position all round-trip).
//!
//! ```bash
//! cargo run --release --example checkpointing
//! ```

use edsr::cl::{CheckpointConfig, ContinualModel, ModelConfig, RunBuilder, TrainConfig};
use edsr::core::{Edsr, Error};
use edsr::data::test_sim;
use edsr::tensor::rng::seeded;

fn main() -> Result<(), Error> {
    let preset = test_sim();
    let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(31));
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 15;
    cfg.cosine_floor = 0.1; // per-increment cosine LR decay

    let mut model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(32));
    let mut edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);

    // Train over the whole stream once.
    let result = RunBuilder::new(&cfg).run(
        &mut edsr,
        &mut model,
        &mut &sequence,
        &augmenters,
        &mut seeded(33),
    )?;
    println!(
        "trained: Acc {:.1}%  Fgt {:.1}%",
        result.final_acc_pct(),
        result.final_fgt_pct()
    );

    // Save, perturb, restore.
    let path = std::env::temp_dir().join("edsr-demo.ckpt");
    model.save(&path)?;
    let probe = sequence.tasks[0].test.inputs.clone();
    let reference = model.represent(&probe, 0);

    for id in model.params.ids().collect::<Vec<_>>() {
        model.params.value_mut(id).scale_inplace(0.5); // simulated damage
    }
    let damaged = model.represent(&probe, 0);
    println!(
        "after damage, representation drift = {:.4}",
        damaged.sub(&reference).frobenius_norm()
    );

    model.load(&path)?;
    let restored = model.represent(&probe, 0);
    println!(
        "after restore, representation drift = {:.4} (exact rollback)",
        restored.sub(&reference).frobenius_norm()
    );
    assert_eq!(restored.max_abs_diff(&reference), 0.0);
    let _ = std::fs::remove_file(path);
    println!("checkpoint file roundtrip verified");

    // ---- Run-state snapshots: interrupt after increment 1, resume. ----
    let dir = std::env::temp_dir().join("edsr-demo-runstate");
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = CheckpointConfig::new(&dir, "demo");

    // Interrupted run: stop after the first increment, snapshot on disk.
    let mut partial_model =
        ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(32));
    let mut partial_edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);
    let partial = RunBuilder::new(&cfg)
        .checkpoint(ckpt.clone())
        .stop_after(1)
        .run(
            &mut partial_edsr,
            &mut partial_model,
            &mut &sequence,
            &augmenters,
            &mut seeded(33),
        )?;
    println!(
        "\ninterrupted after increment {} (snapshot in {})",
        partial.matrix.num_increments(),
        dir.display()
    );

    // Resume with completely fresh objects; the snapshot restores the
    // weights, optimizer moments, memory buffer, and RNG position.
    let mut resumed_model =
        ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(32));
    let mut resumed_edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);
    let resumed = RunBuilder::new(&cfg).checkpoint(ckpt).resume().run(
        &mut resumed_edsr,
        &mut resumed_model,
        &mut &sequence,
        &augmenters,
        &mut seeded(999), // ignored: the snapshot carries the RNG state
    )?;
    println!(
        "resumed: Acc {:.1}%  Fgt {:.1}%",
        resumed.final_acc_pct(),
        resumed.final_fgt_pct()
    );
    assert_eq!(
        resumed.matrix.rows(),
        result.matrix.rows(),
        "resumed run must match the uninterrupted one exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("resume reproduced the uninterrupted accuracy matrix bit-for-bit");
    Ok(())
}
