//! Checkpointing: train EDSR over part of a stream, save the model, keep
//! training, then restore the checkpoint and confirm the representations
//! (and therefore the kNN evaluation) roll back exactly.
//!
//! ```bash
//! cargo run --release --example checkpointing
//! ```

use edsr::cl::{run_sequence, ContinualModel, ModelConfig, TrainConfig};
use edsr::core::Edsr;
use edsr::data::test_sim;
use edsr::tensor::rng::seeded;

fn main() {
    let preset = test_sim();
    let (sequence, augmenters) = preset.build_with_augmenters(&mut seeded(31));
    let mut cfg = TrainConfig::image();
    cfg.epochs_per_task = 15;
    cfg.cosine_floor = 0.1; // per-increment cosine LR decay

    let mut model = ContinualModel::new(&ModelConfig::image(preset.grid.dim()), &mut seeded(32));
    let mut edsr = Edsr::paper_default(preset.per_task_budget(), 8, preset.noise_neighbors);

    // Train over the whole stream once.
    let result =
        run_sequence(&mut edsr, &mut model, &sequence, &augmenters, &cfg, &mut seeded(33));
    println!("trained: Acc {:.1}%  Fgt {:.1}%", result.final_acc_pct(), result.final_fgt_pct());

    // Save, perturb, restore.
    let path = std::env::temp_dir().join("edsr-demo.ckpt");
    model.save(&path).expect("save checkpoint");
    let probe = sequence.tasks[0].test.inputs.clone();
    let reference = model.represent(&probe, 0);

    for id in model.params.ids().collect::<Vec<_>>() {
        model.params.value_mut(id).scale_inplace(0.5); // simulated damage
    }
    let damaged = model.represent(&probe, 0);
    println!(
        "after damage, representation drift = {:.4}",
        damaged.sub(&reference).frobenius_norm()
    );

    model.load(&path).expect("restore checkpoint");
    let restored = model.represent(&probe, 0);
    println!(
        "after restore, representation drift = {:.4} (exact rollback)",
        restored.sub(&reference).frobenius_norm()
    );
    assert_eq!(restored.max_abs_diff(&reference), 0.0);
    let _ = std::fs::remove_file(path);
    println!("checkpoint file roundtrip verified");
}
