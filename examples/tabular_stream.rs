//! Tabular continual learning (the paper's §IV-E scenario): a stream of
//! five binary-classification tabular datasets with *heterogeneous input
//! dimensionality* (16/17/14/20/10 features), learned without labels via
//! SCARF-style feature-corruption views and data-specific input adapters.
//!
//! ```bash
//! cargo run --release --example tabular_stream
//! ```

use edsr::cl::{tabular_augmenters, ContinualModel, ModelConfig, RunBuilder, TrainConfig};
use edsr::core::{Edsr, Error};
use edsr::data::{tabular_sequence, TabularConfig, TABULAR_SPECS};
use edsr::tensor::rng::seeded;

fn main() -> Result<(), Error> {
    // Five increments mirroring Table II's shapes (sizes scaled down).
    let data_cfg = TabularConfig::default();
    let mut data_rng = seeded(11);
    let sequence = tabular_sequence(&data_cfg, &mut data_rng);
    for (spec, task) in TABULAR_SPECS.iter().zip(&sequence.tasks) {
        let pos =
            task.train.labels.iter().filter(|&&l| l == 1).count() as f32 / task.train.len() as f32;
        println!(
            "{:<10} {:>5} train rows, {:>2} features, {:>4.1}% positive (paper {:>4.1}%)",
            spec.name,
            task.train.len(),
            task.train.dim(),
            pos * 100.0,
            spec.positive_ratio * 100.0
        );
    }

    // SCARF corruption referencing each increment's own train split.
    let augmenters = tabular_augmenters(&mut &sequence, 0.4)?;

    // Encoder with one input adapter per increment (paper: "the first
    // layer of f(·) is data-specific").
    let input_dims: Vec<usize> = TABULAR_SPECS.iter().map(|s| s.input_dim).collect();
    let mut model = ContinualModel::new(&ModelConfig::tabular(input_dims), &mut seeded(12));

    // EDSR with 1%-of-increment memory.
    let budget = (sequence
        .tasks
        .iter()
        .map(|t| t.train.len())
        .max()
        .unwrap_or(100)
        / 100)
        .max(2);
    let mut edsr = Edsr::paper_default(budget, 8, 10);

    let mut cfg = TrainConfig::tabular();
    cfg.epochs_per_task = 20; // quick demo
    let mut run_rng = seeded(13);
    let result = RunBuilder::new(&cfg).run(
        &mut edsr,
        &mut model,
        &mut &sequence,
        &augmenters,
        &mut run_rng,
    )?;

    println!("\nper-increment kNN accuracy after the full stream:");
    let last = result.matrix.num_increments() - 1;
    for (j, spec) in TABULAR_SPECS.iter().enumerate() {
        println!(
            "  {:<10} {:5.1}%",
            spec.name,
            result.matrix.get(last, j) * 100.0
        );
    }
    println!(
        "\nfinal: Acc = {:.1}%  Fgt = {:.1}%  (memory holds {} rows)",
        result.final_acc_pct(),
        result.final_fgt_pct(),
        edsr.memory_len()
    );
    Ok(())
}
