#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -q --workspace (EDSR_THREADS=2) =="
EDSR_THREADS=2 cargo test -q --workspace

echo "== bench bin smoke (BENCH_par.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin bench
test -s BENCH_par.json

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
