#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -q --workspace (EDSR_THREADS=2) =="
EDSR_THREADS=2 cargo test -q --workspace

echo "== cargo test -q --workspace (EDSR_ISA=scalar) =="
# Pin the SIMD vtable to the scalar kernels: results must be identical
# to the dispatched run (DESIGN.md §15), so the whole suite must pass.
EDSR_ISA=scalar cargo test -q --workspace

echo "== cargo test -q --workspace (EDSR_ISA=auto) =="
EDSR_ISA=auto cargo test -q --workspace

echo "== deprecated-shim gate (RUSTFLAGS=-D deprecated) =="
# New call sites must use the TaskSource API; the legacy `*_seq` shims
# stay compilable but any un-annotated use of them fails the build.
# Intentional uses (the re-export blocks, the shim-equivalence tests)
# carry #[allow(deprecated)]. Separate target dir: RUSTFLAGS changes
# would otherwise thrash the main cache for every later cargo call.
RUSTFLAGS="-D deprecated" CARGO_TARGET_DIR=target/deprecated-gate \
    cargo check --workspace --all-targets

echo "== bench bin smoke (BENCH_par.json) =="
# The bench binary exits non-zero itself if a zero-worker pool shows a
# chunking slowdown (the flat fall-through regression gate).
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin bench
test -s BENCH_par.json

echo "== kernel bench smoke (BENCH_kernels.json + ISA dispatch gate) =="
# Exits non-zero if the auto-dispatched tiled kernel runs >5% slower
# than the scalar tiled kernel while a SIMD ISA is active (DESIGN.md §15).
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin kernels
test -s BENCH_kernels.json

echo "== serve smoke (snapshot -> serve -> query -> graceful drain) =="
# Train one quick run exporting serve snapshots, serve the newest on an
# ephemeral port, hit every wire op through `edsr query`, then shut down
# and assert the drain report answered every request we sent.
rm -rf ci_serve_snaps ci_serve.log
cargo run -q --release --bin edsr -- run test edsr --epochs 1 \
    --serve-snapshot ci_serve_snaps
cargo run -q --release --bin edsr -- serve ci_serve_snaps --port 0 \
    > ci_serve.log &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_serve.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "serve smoke: server never came up"; cat ci_serve.log; exit 1; }
INPUT=$(python3 -c "print(','.join('0.25' for _ in range(16)))")
EMB=$(cargo run -q --release --bin edsr -- query "$ADDR" embed --task 0 --input "$INPUT")
QUERY=$(printf '%s' "$EMB" | tr -d '[]')
cargo run -q --release --bin edsr -- query "$ADDR" knn --k 3 --metric cosine \
    --input "$QUERY" > /dev/null
cargo run -q --release --bin edsr -- query "$ADDR" stats > /dev/null
cargo run -q --release --bin edsr -- query "$ADDR" shutdown > /dev/null
wait "$SERVE_PID"
# embed + knn + stats + shutdown = 4 accepted requests, zero lost in drain.
grep -q "^drained: 4 requests," ci_serve.log \
    || { echo "serve smoke: graceful drain lost requests"; cat ci_serve.log; exit 1; }
rm -rf ci_serve_snaps ci_serve.log

echo "== serve load smoke (BENCH_serve.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin serve_load
test -s BENCH_serve.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_serve.json"))
for key in ("reqs_per_s", "reqs_per_s_i8", "embed", "knn", "embed_i8", "knn_i8",
            "snapshot_bytes", "server", "saturation"):
    assert key in doc, f"BENCH_serve.json missing {key}"
for kind in ("embed", "knn", "embed_i8", "knn_i8"):
    assert doc[kind]["p50_us"] > 0 and doc[kind]["p99_us"] >= doc[kind]["p50_us"]
assert doc["server"]["batches"] >= 1
# v2 (int8) snapshots must be at least 3x smaller than v1 on disk.
size = doc["snapshot_bytes"]
assert size["v1"] >= 3 * size["v2"], \
    f"quantized snapshot not >=3x smaller: {size}"
sat = doc["saturation"]
# At 2x-capacity offered load with a tight queue, every request is either
# answered or shed as a structured error — none may simply vanish.
assert sat["answered"] + sat["rejected"] == sat["offered"], \
    f"saturation lost requests: {sat}"
assert sat["answered"] >= 1 and sat["reqs_per_s"] > 0
assert 0.0 <= sat["rejected_rate"] <= 1.0
print(f"serve load smoke: f32 {doc['reqs_per_s']:.0f} req/s "
      f"(embed p50 {doc['embed']['p50_us']:.0f}us), "
      f"int8 {doc['reqs_per_s_i8']:.0f} req/s "
      f"(embed p50 {doc['embed_i8']['p50_us']:.0f}us), "
      f"snapshots {size['ratio']:.1f}x smaller quantized; "
      f"saturation {sat['reqs_per_s']:.0f} req/s at "
      f"{sat['rejected_rate']*100:.0f}% shed")
EOF

echo "== chaos smoke (wire faults + live snapshot rotation) =="
# Pass A: serve one snapshot with a seeded wire-fault plan on every
# accepted connection (delays, partial transfers, corruption, mid-frame
# disconnects) and a tightened stall cap. Retrying clients must land
# every op, and the drain report must still be printed — the server
# answered everything it accepted despite the chaos.
EDSR=./target/release/edsr
rm -rf ci_chaos_snaps ci_chaos.log ci_rotate.log
"$EDSR" run test edsr --epochs 1 --serve-snapshot ci_chaos_snaps
SNAP=$(ls ci_chaos_snaps/*.snapshot | sort | head -n 1)
EDSR_SERVE_STALL_MS=300 "$EDSR" serve "$SNAP" --port 0 --chaos-seed 5 \
    > ci_chaos.log &
CHAOS_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_chaos.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "chaos smoke: server never came up"; cat ci_chaos.log; exit 1; }
INPUT=$(python3 -c "print(','.join('0.25' for _ in range(16)))")
"$EDSR" query "$ADDR" embed --task 0 --input "$INPUT" \
    --retries 8 --retry-rejections > /dev/null
"$EDSR" query "$ADDR" stats --retries 8 --retry-rejections > /dev/null
# Shutdown is never retried inside the client (a lost ack may still have
# flipped the drain flag), so retry at the operator level instead.
for _ in $(seq 1 20); do
    "$EDSR" query "$ADDR" shutdown > /dev/null 2>&1 && break
    sleep 0.2
done
wait "$CHAOS_PID"
grep -q "^drained: " ci_chaos.log \
    || { echo "chaos smoke: no drain report under faults"; cat ci_chaos.log; exit 1; }

# Pass B: live rotation. Serve a directory holding only the OLDEST
# snapshot of the training run, then drop in the newest (staged copy +
# atomic rename) plus a truncated decoy that sorts even newer. The
# watcher must skip the corrupt decoy, swap to the valid snapshot, and
# report the rotation through `stats` — all under a live server.
NEWEST=$(ls ci_chaos_snaps/*.snapshot | sort | tail -n 1)
if [ "$SNAP" = "$NEWEST" ]; then
    echo "chaos smoke: need at least 2 exported snapshots"; exit 1
fi
rm -rf ci_rotate_snaps
mkdir -p ci_rotate_snaps
cp "$SNAP" ci_rotate_snaps/
EDSR_SERVE_ROTATE_MS=50 "$EDSR" serve ci_rotate_snaps --port 0 \
    > ci_rotate.log &
ROTATE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_rotate.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "chaos smoke: rotation server never came up"; cat ci_rotate.log; exit 1; }
# The decoy: a truncated copy that path-sorts newest of all.
head -c 100 "$NEWEST" > ci_rotate_snaps/.staging
mv ci_rotate_snaps/.staging "ci_rotate_snaps/zzz.task9999.snapshot"
# The real newer snapshot, published with the exporter's atomicity.
cp "$NEWEST" ci_rotate_snaps/.staging
mv ci_rotate_snaps/.staging "ci_rotate_snaps/$(basename "$NEWEST")"
ROT=0
for _ in $(seq 1 100); do
    ROT=$("$EDSR" query "$ADDR" stats | sed -n 's/^rotations \([0-9]*\).*/\1/p')
    [ "${ROT:-0}" -ge 1 ] && break
    sleep 0.1
done
[ "${ROT:-0}" -ge 1 ] \
    || { echo "chaos smoke: rotation never happened"; cat ci_rotate.log; exit 1; }
"$EDSR" query "$ADDR" embed --task 0 --input "$INPUT" > /dev/null
"$EDSR" query "$ADDR" shutdown > /dev/null
wait "$ROTATE_PID"
grep -q "^drained: " ci_rotate.log \
    || { echo "chaos smoke: rotation drain lost requests"; cat ci_rotate.log; exit 1; }
grep -q " 1 rotations," ci_rotate.log \
    || { echo "chaos smoke: drain report missing the rotation"; cat ci_rotate.log; exit 1; }
rm -rf ci_chaos_snaps ci_rotate_snaps ci_chaos.log ci_rotate.log

echo "== quantized serve smoke (run --quantize -> int8 serve -> query --quantized) =="
# Train with v2 (int8) snapshot export: every export must print its
# accuracy gate. Then serve on the int8 backend and hit every wire op
# with --quantized, which pre-flights a stats round-trip per invocation
# to assert the backend — so 4 ops drain as 8 accepted requests.
rm -rf ci_quant_snaps ci_quant.log ci_quant_run.log
"$EDSR" run test edsr --epochs 1 --serve-snapshot ci_quant_snaps --quantize \
    | tee ci_quant_run.log
grep -q "quant gate:" ci_quant_run.log \
    || { echo "quant smoke: run --quantize printed no accuracy gate"; exit 1; }
"$EDSR" serve ci_quant_snaps --port 0 --quantized > ci_quant.log &
QUANT_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_quant.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "quant smoke: server never came up"; cat ci_quant.log; exit 1; }
grep -q "int8 backend" ci_quant.log \
    || { echo "quant smoke: server is not on the int8 backend"; cat ci_quant.log; exit 1; }
INPUT=$(python3 -c "print(','.join('0.25' for _ in range(16)))")
EMB=$("$EDSR" query "$ADDR" embed --task 0 --input "$INPUT" --quantized)
QUERY=$(printf '%s' "$EMB" | tr -d '[]')
"$EDSR" query "$ADDR" knn --k 3 --metric cosine --input "$QUERY" --quantized > /dev/null
"$EDSR" query "$ADDR" stats --quantized | grep -q "quantized 1" \
    || { echo "quant smoke: stats does not report the int8 backend"; exit 1; }
"$EDSR" query "$ADDR" shutdown --quantized > /dev/null
wait "$QUANT_PID"
grep -q "^drained: 8 requests," ci_quant.log \
    || { echo "quant smoke: graceful drain lost requests"; cat ci_quant.log; exit 1; }

echo "== mixed v1/v2 rotation smoke (f32 server hot-swaps to a v2 snapshot) =="
# Start a watcher on a directory holding only a v1 snapshot, then publish
# a v2 (quantized) snapshot that sorts newer. The watcher must hot-swap
# across format versions and the stats must flip to the int8 backend.
rm -rf ci_mixrot_v1 ci_mixrot_snaps ci_mixrot.log
"$EDSR" run test edsr --epochs 1 --serve-snapshot ci_mixrot_v1
V1SNAP=$(ls ci_mixrot_v1/*.snapshot | sort | head -n 1)
V2SNAP=$(ls ci_quant_snaps/*.snapshot | sort | tail -n 1)
mkdir -p ci_mixrot_snaps
cp "$V1SNAP" ci_mixrot_snaps/
EDSR_SERVE_ROTATE_MS=50 "$EDSR" serve ci_mixrot_snaps --port 0 \
    > ci_mixrot.log &
MIXROT_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_mixrot.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "mixrot smoke: server never came up"; cat ci_mixrot.log; exit 1; }
grep -q "f32 backend" ci_mixrot.log \
    || { echo "mixrot smoke: server did not start on the f32 backend"; cat ci_mixrot.log; exit 1; }
# Publish the v2 snapshot with the exporter's atomicity, sorting newest.
cp "$V2SNAP" ci_mixrot_snaps/.staging
mv ci_mixrot_snaps/.staging "ci_mixrot_snaps/zzz.task9998.snapshot"
QUANTED=0
for _ in $(seq 1 100); do
    QUANTED=$("$EDSR" query "$ADDR" stats | sed -n 's/.*quantized \([0-9]*\).*/\1/p')
    [ "${QUANTED:-0}" -ge 1 ] && break
    sleep 0.1
done
[ "${QUANTED:-0}" -ge 1 ] \
    || { echo "mixrot smoke: server never swapped to the v2 snapshot"; cat ci_mixrot.log; exit 1; }
# After the swap the full --quantized query path must work against what
# started life as a plain f32 server.
"$EDSR" query "$ADDR" embed --task 0 --input "$INPUT" --quantized > /dev/null
"$EDSR" query "$ADDR" shutdown > /dev/null
wait "$MIXROT_PID"
grep -q " 1 rotations," ci_mixrot.log \
    || { echo "mixrot smoke: drain report missing the rotation"; cat ci_mixrot.log; exit 1; }

# And the on-disk acceptance bound: the v2 export of the SAME run must be
# at least 3x smaller than its v1 counterpart.
V1BYTES=$(stat -c %s "$V1SNAP")
V2BYTES=$(stat -c %s "$V2SNAP")
[ "$((3 * V2BYTES))" -le "$V1BYTES" ] \
    || { echo "quant smoke: v2 snapshot ($V2BYTES B) not >=3x smaller than v1 ($V1BYTES B)"; exit 1; }
echo "quant smoke: v1 $V1BYTES B -> v2 $V2BYTES B"
rm -rf ci_quant_snaps ci_quant.log ci_quant_run.log ci_mixrot_v1 ci_mixrot_snaps ci_mixrot.log

echo "== dist smoke (1 PS + 2 workers, bit-identical to edsr run) =="
# Train the reference single-process checkpoint, then the same run as a
# parameter server on an ephemeral port with two separate worker
# processes, and require the two checkpoints to be byte-for-byte equal
# (DESIGN.md §14).
rm -f ci_dist_ref.ckpt ci_dist.ckpt ci_dist_ps.log
"$EDSR" run test edsr --epochs 1 --save ci_dist_ref.ckpt > /dev/null
"$EDSR" ps test edsr --epochs 1 --save ci_dist.ckpt \
    --dist-addr 127.0.0.1:0 --dist-workers 2 > ci_dist_ps.log &
PS_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_dist_ps.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "dist smoke: server never came up"; cat ci_dist_ps.log; exit 1; }
"$EDSR" worker "$ADDR" > /dev/null &
W1_PID=$!
"$EDSR" worker "$ADDR" > /dev/null &
W2_PID=$!
wait "$W1_PID" "$W2_PID" "$PS_PID"
cmp ci_dist_ref.ckpt ci_dist.ckpt \
    || { echo "dist smoke: distributed checkpoint differs from single-process"; exit 1; }
grep -q "^drained: " ci_dist_ps.log \
    || { echo "dist smoke: no drain report"; cat ci_dist_ps.log; exit 1; }
rm -f ci_dist_ref.ckpt ci_dist.ckpt ci_dist_ps.log

echo "== dist bench smoke (BENCH_dist.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin dist_bench
test -s BENCH_dist.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_dist.json"))
assert doc["bit_identical"] is True
runs = doc["runs"]
assert len(runs) >= 2 and runs[0]["workers"] == 1
for r in runs:
    assert r["tasks_per_s"] > 0 and r["steps"] > 0, f"bad run record: {r}"
    # Lockstep: the step count must not depend on the worker count.
    assert r["steps"] == runs[0]["steps"], f"step count drifted: {r}"
print("dist bench smoke: " + ", ".join(
    f"{r['workers']}w {r['tasks_per_s']:.1f} tasks/s" for r in runs))
EOF

echo "== scenarios bench smoke (BENCH_scenarios.json) =="
# Quick sweep over the full scenario zoo x method grid. The bin itself
# asserts stream/RAM identity and the two-shard residency budget per
# scenario; the JSON check pins the table shape the README documents.
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin scenarios
test -s BENCH_scenarios.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_scenarios.json"))
scenarios = doc["scenarios"]
assert len(scenarios) >= 4, f"only {len(scenarios)} scenarios"
for s in scenarios:
    methods = {m["method"] for m in s["methods"]}
    assert len(methods) >= 4, f"{s['scenario']}: only {sorted(methods)}"
    for required in ("CompEmb", "R2R"):
        assert required in methods, f"{s['scenario']}: missing {required}"
    assert s["stream_identical"] is True, f"{s['scenario']}: stream diverged"
    assert s["resident_peak"] <= 2, f"{s['scenario']}: {s['resident_peak']} resident"
    for m in s["methods"]:
        assert 0.0 <= m["acc_mean"] <= 100.0, f"bad acc: {m}"
print(f"scenarios smoke: {len(scenarios)} scenarios x "
      f"{len(scenarios[0]['methods'])} methods, all streams bit-identical")
EOF

echo "== scenario shard round-trip (out-of-core cmp gate) =="
# Two zoo scenarios trained twice each — once in RAM, once streamed from
# an EDSRDS01 shard directory — must produce byte-identical checkpoints.
for SCN in blurry long-tail; do
    rm -rf ci_scn_shards ci_scn_ram.ckpt ci_scn_stream.ckpt
    "$EDSR" scenario write "$SCN" ci_scn_shards --seed 11 > /dev/null
    "$EDSR" scenario run "$SCN" lump --epochs 2 --save ci_scn_ram.ckpt > /dev/null
    "$EDSR" scenario run "$SCN" lump --epochs 2 --stream ci_scn_shards \
        --save ci_scn_stream.ckpt > /dev/null
    cmp ci_scn_ram.ckpt ci_scn_stream.ckpt \
        || { echo "scenario gate: $SCN streamed checkpoint differs from in-RAM"; exit 1; }
    echo "scenario gate: $SCN streamed == in-RAM"
done
rm -rf ci_scn_shards ci_scn_ram.ckpt ci_scn_stream.ckpt

echo "== observability smoke (EDSR_OBS=jsonl) =="
# A short EDSR training run streaming metrics: the file must be non-empty,
# every line valid JSON in the stable field order, and the paper-level
# metrics (per-term losses, selection entropy) must be present.
rm -f ci_metrics.jsonl
EDSR_OBS=jsonl EDSR_OBS_PATH=ci_metrics.jsonl \
    cargo run -q --release --bin edsr -- run test edsr --epochs 2
test -s ci_metrics.jsonl
python3 - <<'EOF'
import json

names = set()
with open("ci_metrics.jsonl") as f:
    for n, line in enumerate(f, 1):
        if not line.strip():
            continue
        event = json.loads(line)  # raises on a malformed line
        assert list(event) == ["seq", "kind", "name", "index", "value"], \
            f"line {n}: unstable field order {list(event)}"
        names.add(event["name"])
for required in ("loss/css", "loss/dis", "loss/rpl", "select/entropy"):
    assert required in names, f"missing {required}, saw {sorted(names)}"
print(f"obs smoke: {n} events, {len(names)} distinct metrics")
EOF
cargo run -q --release --bin edsr -- metrics ci_metrics.jsonl > /dev/null
rm -f ci_metrics.jsonl

echo "== bench regression gate (vs BENCH_baseline.json) =="
# Quick-mode matmul / conv_forward 1-thread medians must stay within 2x of
# the checked-in baseline. Catches large kernel regressions (a dropped
# fast path, an accidental debug build of the hot loop) while tolerating
# host-to-host noise. Regenerate the baseline with:
#   EDSR_BENCH_QUICK=1 cargo run --release -p edsr-bench --bin bench \
#     && cp BENCH_par.json BENCH_baseline.json
python3 - <<'EOF'
import json, sys

def one_thread_ns(path):
    with open(path) as f:
        doc = json.load(f)
    records = doc["records"] if isinstance(doc, dict) else doc
    return {
        r["op"]: r["ns_per_iter"]
        for r in records
        if r["threads"] == 1 and r["op"] in ("matmul", "conv_forward")
    }

baseline = one_thread_ns("BENCH_baseline.json")
current = one_thread_ns("BENCH_par.json")
failed = False
for op, base in sorted(baseline.items()):
    now = current.get(op)
    if now is None:
        print(f"bench gate: {op} missing from BENCH_par.json")
        failed = True
        continue
    ratio = now / base if base > 0 else float("inf")
    status = "FAIL" if ratio > 2.0 else "ok"
    print(f"bench gate: {op:<14} {now:>12.0f} ns vs baseline {base:>12.0f} ns "
          f"({ratio:.2f}x) {status}")
    failed |= ratio > 2.0
sys.exit(1 if failed else 0)
EOF

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI gate passed."
