#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -q --workspace (EDSR_THREADS=2) =="
EDSR_THREADS=2 cargo test -q --workspace

echo "== bench bin smoke (BENCH_par.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin bench
test -s BENCH_par.json

echo "== kernel bench smoke (BENCH_kernels.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin kernels
test -s BENCH_kernels.json

echo "== bench regression gate (vs BENCH_baseline.json) =="
# Quick-mode matmul / conv_forward 1-thread medians must stay within 2x of
# the checked-in baseline. Catches large kernel regressions (a dropped
# fast path, an accidental debug build of the hot loop) while tolerating
# host-to-host noise. Regenerate the baseline with:
#   EDSR_BENCH_QUICK=1 cargo run --release -p edsr-bench --bin bench \
#     && cp BENCH_par.json BENCH_baseline.json
python3 - <<'EOF'
import json, sys

def one_thread_ns(path):
    with open(path) as f:
        doc = json.load(f)
    records = doc["records"] if isinstance(doc, dict) else doc
    return {
        r["op"]: r["ns_per_iter"]
        for r in records
        if r["threads"] == 1 and r["op"] in ("matmul", "conv_forward")
    }

baseline = one_thread_ns("BENCH_baseline.json")
current = one_thread_ns("BENCH_par.json")
failed = False
for op, base in sorted(baseline.items()):
    now = current.get(op)
    if now is None:
        print(f"bench gate: {op} missing from BENCH_par.json")
        failed = True
        continue
    ratio = now / base if base > 0 else float("inf")
    status = "FAIL" if ratio > 2.0 else "ok"
    print(f"bench gate: {op:<14} {now:>12.0f} ns vs baseline {base:>12.0f} ns "
          f"({ratio:.2f}x) {status}")
    failed |= ratio > 2.0
sys.exit(1 if failed else 0)
EOF

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
