#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== cargo test -q --workspace (EDSR_THREADS=2) =="
EDSR_THREADS=2 cargo test -q --workspace

echo "== bench bin smoke (BENCH_par.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin bench
test -s BENCH_par.json

echo "== kernel bench smoke (BENCH_kernels.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin kernels
test -s BENCH_kernels.json

echo "== serve smoke (snapshot -> serve -> query -> graceful drain) =="
# Train one quick run exporting serve snapshots, serve the newest on an
# ephemeral port, hit every wire op through `edsr query`, then shut down
# and assert the drain report answered every request we sent.
rm -rf ci_serve_snaps ci_serve.log
cargo run -q --release --bin edsr -- run test edsr --epochs 1 \
    --serve-snapshot ci_serve_snaps
cargo run -q --release --bin edsr -- serve ci_serve_snaps --port 0 \
    > ci_serve.log &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' ci_serve.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { echo "serve smoke: server never came up"; cat ci_serve.log; exit 1; }
INPUT=$(python3 -c "print(','.join('0.25' for _ in range(16)))")
EMB=$(cargo run -q --release --bin edsr -- query "$ADDR" embed --task 0 --input "$INPUT")
QUERY=$(printf '%s' "$EMB" | tr -d '[]')
cargo run -q --release --bin edsr -- query "$ADDR" knn --k 3 --metric cosine \
    --input "$QUERY" > /dev/null
cargo run -q --release --bin edsr -- query "$ADDR" stats > /dev/null
cargo run -q --release --bin edsr -- query "$ADDR" shutdown > /dev/null
wait "$SERVE_PID"
# embed + knn + stats + shutdown = 4 accepted requests, zero lost in drain.
grep -q "^drained: 4 requests," ci_serve.log \
    || { echo "serve smoke: graceful drain lost requests"; cat ci_serve.log; exit 1; }
rm -rf ci_serve_snaps ci_serve.log

echo "== serve load smoke (BENCH_serve.json) =="
EDSR_BENCH_QUICK=1 cargo run -q --release -p edsr-bench --bin serve_load
test -s BENCH_serve.json
python3 - <<'EOF'
import json
doc = json.load(open("BENCH_serve.json"))
for key in ("reqs_per_s", "embed", "knn", "server"):
    assert key in doc, f"BENCH_serve.json missing {key}"
for kind in ("embed", "knn"):
    assert doc[kind]["p50_us"] > 0 and doc[kind]["p99_us"] >= doc[kind]["p50_us"]
assert doc["server"]["batches"] >= 1
print(f"serve load smoke: {doc['reqs_per_s']:.0f} req/s, "
      f"embed p50 {doc['embed']['p50_us']:.0f}us p99 {doc['embed']['p99_us']:.0f}us")
EOF

echo "== observability smoke (EDSR_OBS=jsonl) =="
# A short EDSR training run streaming metrics: the file must be non-empty,
# every line valid JSON in the stable field order, and the paper-level
# metrics (per-term losses, selection entropy) must be present.
rm -f ci_metrics.jsonl
EDSR_OBS=jsonl EDSR_OBS_PATH=ci_metrics.jsonl \
    cargo run -q --release --bin edsr -- run test edsr --epochs 2
test -s ci_metrics.jsonl
python3 - <<'EOF'
import json

names = set()
with open("ci_metrics.jsonl") as f:
    for n, line in enumerate(f, 1):
        if not line.strip():
            continue
        event = json.loads(line)  # raises on a malformed line
        assert list(event) == ["seq", "kind", "name", "index", "value"], \
            f"line {n}: unstable field order {list(event)}"
        names.add(event["name"])
for required in ("loss/css", "loss/dis", "loss/rpl", "select/entropy"):
    assert required in names, f"missing {required}, saw {sorted(names)}"
print(f"obs smoke: {n} events, {len(names)} distinct metrics")
EOF
cargo run -q --release --bin edsr -- metrics ci_metrics.jsonl > /dev/null
rm -f ci_metrics.jsonl

echo "== bench regression gate (vs BENCH_baseline.json) =="
# Quick-mode matmul / conv_forward 1-thread medians must stay within 2x of
# the checked-in baseline. Catches large kernel regressions (a dropped
# fast path, an accidental debug build of the hot loop) while tolerating
# host-to-host noise. Regenerate the baseline with:
#   EDSR_BENCH_QUICK=1 cargo run --release -p edsr-bench --bin bench \
#     && cp BENCH_par.json BENCH_baseline.json
python3 - <<'EOF'
import json, sys

def one_thread_ns(path):
    with open(path) as f:
        doc = json.load(f)
    records = doc["records"] if isinstance(doc, dict) else doc
    return {
        r["op"]: r["ns_per_iter"]
        for r in records
        if r["threads"] == 1 and r["op"] in ("matmul", "conv_forward")
    }

baseline = one_thread_ns("BENCH_baseline.json")
current = one_thread_ns("BENCH_par.json")
failed = False
for op, base in sorted(baseline.items()):
    now = current.get(op)
    if now is None:
        print(f"bench gate: {op} missing from BENCH_par.json")
        failed = True
        continue
    ratio = now / base if base > 0 else float("inf")
    status = "FAIL" if ratio > 2.0 else "ok"
    print(f"bench gate: {op:<14} {now:>12.0f} ns vs baseline {base:>12.0f} ns "
          f"({ratio:.2f}x) {status}")
    failed |= ratio > 2.0
sys.exit(1 if failed else 0)
EOF

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI gate passed."
